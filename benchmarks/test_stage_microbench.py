"""Micro-benchmarks of the individual CAD stages.

Not a paper artefact — these time the building blocks (technology
mapper, placer, router, merge) on fixed small instances so performance
regressions in the stack show up independently of the figure-level
benchmarks.
"""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.bench.mcnc import McncProfile, generate_mcnc_circuit, mcnc_network
from repro.core.merge import merge_by_index
from repro.place.annealing import AnnealingSchedule
from repro.place.placer import place_circuit
from repro.route.router import PathFinderRouter
from repro.route.troute import (
    lut_circuit_connections,
    requests_from_connections,
)
from repro.synth.optimize import optimize_network
from repro.synth.techmap import tech_map

PROFILE = McncProfile("bench_small", 10, 8, 120, 0.08, 40, 77)


@pytest.fixture(scope="module")
def small_circuit():
    return generate_mcnc_circuit(PROFILE)


@pytest.fixture(scope="module")
def fabric(small_circuit):
    side = 12
    arch = FpgaArchitecture(
        nx=side, ny=side, channel_width=10, fc_in=0.5, fc_out=0.5
    )
    return arch, build_rrg(arch)


def test_bench_techmap(benchmark):
    network = optimize_network(mcnc_network(PROFILE))
    circuit = benchmark(tech_map, network, 4)
    assert circuit.n_luts() > 0


def test_bench_placer(benchmark, small_circuit, fabric):
    arch, _rrg = fabric
    placement = benchmark.pedantic(
        place_circuit,
        args=(small_circuit, arch),
        kwargs={"seed": 3, "schedule": AnnealingSchedule(
            inner_num=0.1)},
        rounds=1, iterations=1,
    )
    assert placement.cost > 0


def test_bench_router(benchmark, small_circuit, fabric):
    arch, rrg = fabric
    placement = place_circuit(
        small_circuit, arch, seed=3,
        schedule=AnnealingSchedule(inner_num=0.1),
    )
    requests = requests_from_connections(
        rrg, lut_circuit_connections(small_circuit, placement)
    )

    def route_once():
        return PathFinderRouter(rrg).route(requests)

    result = benchmark.pedantic(route_once, rounds=1, iterations=1)
    assert result.iterations >= 1


def test_bench_rrg_build(benchmark):
    arch = FpgaArchitecture(
        nx=12, ny=12, channel_width=10, fc_in=0.5, fc_out=0.5
    )
    rrg = benchmark(build_rrg, arch)
    assert rrg.n_bits > 0


def test_bench_merge_by_index(benchmark, small_circuit):
    other = generate_mcnc_circuit(
        McncProfile("bench_small_b", 10, 8, 120, 0.08, 40, 78)
    )
    # Align IO names so pads merge.
    rename = dict(zip(other.inputs, small_circuit.inputs))
    rename.update(zip(other.outputs, small_circuit.outputs))
    other = other.renamed(rename)
    tunable = benchmark(
        merge_by_index, "bench_merge", [small_circuit, other]
    )
    assert tunable.n_tunable_connections() > 0
