"""Extension benchmark: frame-level reconfiguration (paper's outlook).

The paper's Section IV-C.1 projects frame-granularity results:
"By reconfiguring only these frames we can further reduce
reconfiguration time.  Given the analysis above we expect the speed up
of routing reconfiguration time to be roughly between 4x and 20x."

This benchmark applies the frame model (``repro.arch.frames``) to the
routed RegExp pair:

* MDR rewrites every frame of the region;
* DCS as-routed touches only frames containing parameterised bits;
* the paper's proposed allocator packs the parameterised bits into
  fewer frames (column-constrained and ideal bounds).
"""

import pytest

from repro.arch.frames import (
    FrameAllocator,
    build_frame_layout,
    dcs_frame_cost,
    mdr_frame_cost,
)
from repro.arch.rrg import build_rrg
from repro.core.merge import MergeStrategy
from repro.core.reconfig import varying_bits


@pytest.fixture(scope="module")
def frame_data(experiment):
    outcome = experiment["RegExp"][0]
    result = outcome.result
    dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
    rrg = build_rrg(result.arch)
    layout = build_frame_layout(result.arch, rrg, frame_size=256)
    param_bits = varying_bits(
        [dcs.routing.bits_on(m) for m in range(2)]
    )
    return result.arch, rrg, layout, param_bits


def test_frame_rows(frame_data):
    arch, rrg, layout, param_bits = frame_data
    mdr = mdr_frame_cost(layout)
    dcs = dcs_frame_cost(layout, param_bits)
    allocator = FrameAllocator(layout, rrg)
    report = allocator.report(param_bits)

    print()
    print("Frame-level reconfiguration (extension of Fig. 6):")
    print(f"  frames in region: {layout.n_frames} "
          f"({layout.n_routing_frames} routing, "
          f"{layout.n_lut_frames} LUT)")
    print(f"  MDR rewrites:       {mdr.total} frames")
    print(f"  DCS as-routed:      {dcs.total} frames "
          f"({dcs.routing_frames} routing)")
    print("  DCS column-packed:  "
          f"{layout.n_lut_frames + report['column_packed']} frames")
    print("  DCS ideal packing:  "
          f"{layout.n_lut_frames + report['ideal']} frames")
    routing_speedup = (
        layout.n_routing_frames / max(1, report["column_packed"])
    )
    print("  routing-frame speed-up after packing: "
          f"{routing_speedup:.1f}x (paper projects 4x-20x)")

    assert dcs.total <= mdr.total
    assert (
        report["ideal"]
        <= report["column_packed"]
        <= report["as_routed"]
    )
    # The paper's projected band is wide; require at least the lower
    # end after column packing.
    assert routing_speedup >= 2.0


def test_bench_frame_layout(benchmark, frame_data):
    arch, rrg, _layout, _bits = frame_data
    layout = benchmark(build_frame_layout, arch, rrg, 256)
    assert layout.n_routing_frames > 0


def test_lut_diff_extension(experiment):
    """Paper: counting only differing LUT bits improves DCS further."""
    from repro.core.reconfig import dcs_cost_lut_diff

    outcome = experiment["RegExp"][0]
    result = outcome.result
    dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
    bit_sets = [dcs.routing.bits_on(m) for m in range(2)]
    diffed = dcs_cost_lut_diff(dcs.tunable, bit_sets)
    # Same routing bits, fewer (or equal) LUT bits than "rewrite all".
    assert diffed.routing_bits == dcs.cost.routing_bits
    assert diffed.lut_bits <= dcs.cost.lut_bits
    improved = result.mdr.cost.total / diffed.total
    baseline = result.speedup(MergeStrategy.WIRE_LENGTH)
    print(f"\nspeed-up with LUT-bit diffing: {improved:.2f}x "
          f"(vs {baseline:.2f}x rewriting all LUT bits)")
    assert improved >= baseline
