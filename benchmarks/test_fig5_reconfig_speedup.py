"""Benchmark for Fig. 5: reconfiguration speed-up of DCS over MDR.

The paper reports 4.6x-5.1x fewer configuration bits rewritten on a
mode switch for typical multi-mode applications (RegExp, FIR), with
the two merge strategies (edge matching / wire length) achieving
approximately the same speed-up.

Shape assertions (absolute factors depend on the channel-width sizing;
EXPERIMENTS.md records measured values per effort profile):

* every DCS variant beats MDR (speed-up > 1) on every suite;
* the typical multi-mode suites reach a substantial speed-up (>= 2x);
* the two strategies land within a small factor of each other.

The timed section is the bit accounting + aggregation over the cached
flow results; one full DCS flow run is timed separately on the
smallest pair.
"""



def test_fig5_rows(harness, experiment):
    rows = harness.figure5(experiment)
    print()
    print(harness.print_figure5(rows))
    for row in rows:
        assert row["min"] > 1.0, row
        assert row["min"] <= row["mean"] <= row["max"]
    typical = [
        r for r in rows if r["suite"] in ("RegExp", "FIR")
    ]
    for row in typical:
        assert row["mean"] >= 2.0, row
    # Paper: both strategies achieve approximately the same speed-up.
    by_key = {(r["suite"], r["variant"]): r["mean"] for r in rows}
    for suite in ("RegExp", "FIR", "MCNC"):
        em = by_key[(suite, "DCS-Edge matching")]
        wl = by_key[(suite, "DCS-Wire length")]
        assert 0.3 <= em / wl <= 3.0, (suite, em, wl)


def test_bench_fig5_aggregation(benchmark, harness, experiment):
    rows = benchmark(harness.figure5, experiment)
    assert len(rows) == 6


def test_speedup_arithmetic(experiment):
    """Speed-up must equal MDR bits / DCS bits exactly."""
    for outcomes in experiment.values():
        for outcome in outcomes:
            result = outcome.result
            for strategy in result.dcs:
                expected = (
                    result.mdr.cost.total
                    / result.dcs[strategy].cost.total
                )
                assert abs(
                    result.speedup(strategy) - expected
                ) < 1e-12


def test_dcs_lut_bits_match_mdr(experiment):
    """Fig. 6 premise: both flows rewrite every LUT bit."""
    for outcomes in experiment.values():
        for outcome in outcomes:
            result = outcome.result
            for dcs in result.dcs.values():
                assert (
                    dcs.cost.lut_bits == result.mdr.cost.lut_bits
                )
