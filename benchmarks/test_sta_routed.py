"""Extension benchmark: routed STA check of the performance claim.

The placement-level companion (`test_performance_penalty.py`) bounds
the penalty with Manhattan estimates; here the *actual routed paths*
are analysed, so the router's congestion detours and cross-mode wire
sharing are priced in.  This is the strongest form of the abstract's
"without significant performance penalties" claim this reproduction
can check.
"""

import pytest

from repro.core.merge import MergeStrategy
from repro.timing import (
    dcs_arc_delays,
    mdr_arc_delays,
    routed_critical_path,
    timing_comparison,
)


@pytest.fixture(scope="module")
def sta_rows(harness, experiment):
    rows = []
    for suite, outcomes in experiment.items():
        for outcome in outcomes:
            result = outcome.result
            pair = dict(harness.suite_pairs(suite))[outcome.name]
            mdr_reports = []
            for circuit, impl in zip(
                pair, result.mdr.implementations
            ):
                arcs = mdr_arc_delays(
                    circuit, impl.placement, impl.routing
                )
                mdr_reports.append(
                    routed_critical_path(circuit, arcs)
                )
            for strategy, dcs in result.dcs.items():
                dcs_reports = []
                for mode in range(len(pair)):
                    arcs = dcs_arc_delays(
                        dcs.tunable, dcs.routing, mode
                    )
                    dcs_reports.append(
                        routed_critical_path(
                            dcs.tunable.specialize(mode), arcs
                        )
                    )
                comp = timing_comparison(mdr_reports, dcs_reports)
                rows.append({
                    "suite": suite,
                    "name": outcome.name,
                    "strategy": strategy,
                    "mean": comp.mean_ratio,
                    "worst": comp.worst_ratio,
                })
    return rows


def test_routed_sta_penalty_rows(sta_rows):
    print()
    print("Routed critical-path penalty of DCS vs MDR (1.0 = none):")
    for row in sta_rows:
        print(
            f"  {row['suite']:8s} {row['name']:12s} "
            f"{row['strategy'].value:15s} "
            f"mean {row['mean']:.3f}x worst {row['worst']:.3f}x"
        )
    for row in sta_rows:
        # Routed paths include congestion detours, so the bound is a
        # little looser than the placement-level 1.6x.
        assert row["mean"] <= 1.8, row
        assert row["mean"] >= 0.5, row


def test_routed_wirelength_strategy_modest(sta_rows):
    wl = [
        r for r in sta_rows
        if r["strategy"] is MergeStrategy.WIRE_LENGTH
    ]
    mean = sum(r["mean"] for r in wl) / len(wl)
    print(f"\nmean routed wire-length-strategy penalty: {mean:.3f}x")
    assert mean <= 1.7


def test_bench_routed_sta(benchmark, experiment):
    outcome = experiment["RegExp"][0]
    dcs = outcome.result.dcs[MergeStrategy.WIRE_LENGTH]

    def run():
        arcs = dcs_arc_delays(dcs.tunable, dcs.routing, 0)
        return routed_critical_path(
            dcs.tunable.specialize(0), arcs
        )

    report = benchmark(run)
    assert report.critical_delay > 0
    assert report.critical_path
