"""Benchmark for Table I: size of the LUT circuits per suite.

Regenerates the min/average/maximum 4-LUT counts of the three
application suites and checks they land in the paper's windows:

    RegExp  224 / 243 / 261
    FIR     235 / 302 / 371
    MCNC    264 / 310 / 404

The benchmark times the full front-end (generator -> synthesis ->
technology mapping) for one representative circuit of each suite.
"""

from repro.bench.fir import generate_fir_circuit
from repro.bench.mcnc import DEFAULT_PROFILES, generate_mcnc_circuit
from repro.bench.regex import DEFAULT_PATTERNS, compile_regex_circuit

PAPER_WINDOWS = {
    # suite: (paper min, paper max), widened 15% for generator noise
    "RegExp": (190, 300),
    "FIR": (200, 430),
    "MCNC": (225, 465),
}


def test_table1_rows(harness):
    rows = harness.table1()
    print()
    print(harness.print_table1(rows))
    by_suite = {r["suite"]: r for r in rows}
    for suite, (low, high) in PAPER_WINDOWS.items():
        row = by_suite[suite]
        assert low <= row["minimum"] <= row["maximum"] <= high, row
        assert row["minimum"] <= row["average"] <= row["maximum"]


def test_bench_regexp_frontend(benchmark):
    circuit = benchmark(
        compile_regex_circuit, DEFAULT_PATTERNS[0], "t1_regexp"
    )
    assert circuit.n_luts() > 0


def test_bench_fir_frontend(benchmark):
    circuit = benchmark(
        generate_fir_circuit, "lowpass", 0
    )
    assert circuit.n_luts() > 0


def test_bench_mcnc_frontend(benchmark):
    circuit = benchmark(
        generate_mcnc_circuit, DEFAULT_PROFILES[0]
    )
    assert circuit.n_luts() > 0
