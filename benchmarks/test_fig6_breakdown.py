"""Benchmark for Fig. 6: LUT vs routing contribution to reconfig time.

The paper decomposes the RegExp reconfiguration cost into LUT bits and
routing bits for three accountings:

* RegExp-MDR   — whole region (routing dominates);
* RegExp-Diff  — only routing bits that differ between the separately
  implemented modes (region-based writing overhead, factor ~5);
* RegExp-DCS   — only parameterised routing bits of the combined
  implementation (a further factor ~4; ~20x total).

Shape assertions: routing dominates the MDR bar; the routing component
shrinks strictly MDR > Diff > ... and DCS achieves a large total
routing reduction; LUT bits are identical across all three bars.
"""


def test_fig6_rows(harness, experiment):
    rows = harness.figure6(experiment["RegExp"])
    print()
    print(harness.print_figure6(rows))
    mdr, diff, dcs = rows
    # LUT contribution identical across the three accountings.
    assert mdr["lut_bits"] == diff["lut_bits"] == dcs["lut_bits"]
    # Routing dominates the full-region rewrite.
    assert mdr["routing_bits"] > mdr["lut_bits"]
    # Region effect: counting only differing bits is a big win.
    assert diff["routing_bits"] < 0.5 * mdr["routing_bits"]
    # The combined implementation wins again on top of that.
    assert dcs["routing_bits"] <= diff["routing_bits"]
    # Overall routing reduction is substantial (paper: ~20x).
    assert mdr["routing_bits"] / dcs["routing_bits"] >= 4.0


def test_bench_fig6_aggregation(benchmark, harness, experiment):
    rows = benchmark(harness.figure6, experiment["RegExp"])
    assert len(rows) == 3


def test_percentages_normalised_to_mdr(harness, experiment):
    rows = harness.figure6(experiment["RegExp"])
    mdr = rows[0]
    assert abs(
        mdr["lut_pct_of_mdr"] + mdr["routing_pct_of_mdr"] - 100.0
    ) < 1e-9
    for row in rows[1:]:
        assert row["lut_pct_of_mdr"] == mdr["lut_pct_of_mdr"]
        assert (
            row["routing_pct_of_mdr"] <= mdr["routing_pct_of_mdr"]
        )
