"""Ablation: decomposing TRoute's cross-mode sharing mechanisms.

The Fig. 6 merge effect (Diff routing bits / DCS parameterised bits)
comes from three router mechanisms layered on plain per-mode
PathFinder:

1. **net affinity** — a net's connections prefer wires the same net
   already drives in other modes;
2. **bit affinity** — connections prefer switches whose bit is already
   on in all other modes (different nets may share a switch across
   modes: the bit goes static);
3. **sharing passes** — post-convergence sweeps that reroute every net
   with the discounts active, keeping the best legal result.

This bench routes one merged RegExp pair with the mechanisms toggled
and checks each layer pays its way.
"""

import pytest

from repro.arch.rrg import build_rrg
from repro.bench.regex import compile_regex_circuit
from repro.core.combined_placement import (
    merge_with_combined_placement,
)
from repro.core.flow import estimate_channel_width
from repro.core.merge import MergeStrategy
from repro.arch.architecture import FpgaArchitecture, size_for_circuits
from repro.route.troute import (
    parameterized_routing_bits,
    route_tunable_circuit,
)

CONFIGS = {
    "plain": dict(net_affinity=1.0, bit_affinity=1.0,
                  sharing_passes=0),
    "net": dict(net_affinity=0.5, bit_affinity=1.0,
                sharing_passes=0),
    "net+bit": dict(net_affinity=0.5, bit_affinity=0.3,
                    sharing_passes=0),
    "net+bit+sweeps": dict(net_affinity=0.5, bit_affinity=0.3,
                           sharing_passes=3),
}


@pytest.fixture(scope="module")
def merged():
    modes = [
        compile_regex_circuit("ab+c(de)*", name="rx0", k=4),
        compile_regex_circuit("a(bc|de)+f", name="rx1", k=4),
    ]
    n_blocks = max(c.n_luts() for c in modes)
    ios = set()
    for c in modes:
        ios.update(c.inputs)
        ios.update(c.outputs)
    arch = size_for_circuits(n_blocks, len(ios), k=4)
    arch = FpgaArchitecture(
        nx=arch.nx, ny=arch.ny, k=4,
        channel_width=estimate_channel_width(modes, arch),
        io_rat=arch.io_rat,
    )
    tunable, _ = merge_with_combined_placement(
        "ablate", modes, arch,
        strategy=MergeStrategy.WIRE_LENGTH, seed=0,
    )
    return arch, tunable


@pytest.fixture(scope="module")
def ablation(merged):
    arch, tunable = merged
    rrg = build_rrg(arch)
    results = {}
    for label, knobs in CONFIGS.items():
        routing = route_tunable_circuit(
            rrg, tunable.site_connections(), 2, **knobs
        )
        results[label] = len(parameterized_routing_bits(routing))
    return results


def test_ablation_rows(ablation):
    print()
    print("Parameterised routing bits by sharing mechanism:")
    for label, bits in ablation.items():
        print(f"  {label:16s} {bits:5d}")


def test_each_layer_helps(ablation):
    """Every mechanism must reduce (or at worst not increase much)
    the parameterised-bit count; the full stack must clearly beat
    plain PathFinder."""
    assert ablation["net"] <= ablation["plain"] * 1.05
    assert ablation["net+bit"] <= ablation["net"] * 1.05
    assert ablation["net+bit+sweeps"] <= ablation["net+bit"]
    assert ablation["net+bit+sweeps"] < ablation["plain"] * 0.85


def test_bench_full_sharing_route(benchmark, merged):
    arch, tunable = merged
    rrg = build_rrg(arch)

    def run():
        return route_tunable_circuit(
            rrg, tunable.site_connections(), 2,
            **CONFIGS["net+bit+sweeps"],
        )

    routing = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not routing.rrg is None
