"""Benchmark for Fig. 7: per-mode wire usage relative to MDR.

The paper compares the set of wires each mode uses when active under
DCS against its separate MDR implementation: wire-length optimisation
keeps the average increase around +24% (11-35% for RegExp/FIR), while
the prior-art circuit edge matching sometimes blows past +100%; the
dissimilar MCNC circuits spread wider.

Shape assertions: DCS uses at least as many wires as MDR on average
(the combined implementation constrains both modes at once); the
wire-length strategy never does *worse* than edge matching by a large
factor; the penalty of the wire-length strategy stays moderate.
"""



def test_fig7_rows(harness, experiment):
    rows = harness.figure7(experiment)
    print()
    print(harness.print_figure7(rows))
    by_key = {(r["suite"], r["variant"]): r for r in rows}
    for suite in ("RegExp", "FIR", "MCNC"):
        em = by_key[(suite, "DCS-Edge matching")]
        wl = by_key[(suite, "DCS-Wire length")]
        # Some penalty vs MDR is expected; a collapse below 60% would
        # indicate the metric is broken.
        assert wl["mean"] >= 60.0, wl
        # The novel strategy must not lose badly to the prior art.
        assert wl["mean"] <= em["mean"] * 1.35, (suite, em, wl)
        # Wire-length optimisation keeps the penalty moderate.
        assert wl["mean"] <= 220.0, wl


def test_bench_fig7_aggregation(benchmark, harness, experiment):
    rows = benchmark(harness.figure7, experiment)
    assert len(rows) == 6


def test_wirelength_ratio_definition(experiment):
    """Ratio must equal mean per-mode DCS wires / mean MDR wires."""
    for outcomes in experiment.values():
        for outcome in outcomes:
            result = outcome.result
            for strategy, dcs in result.dcs.items():
                expected = (
                    dcs.mean_wirelength()
                    / result.mdr.mean_wirelength()
                )
                assert abs(
                    result.wirelength_ratio(strategy) - expected
                ) < 1e-12
                # Per-mode wire sets are non-empty.
                assert all(
                    w > 0 for w in dcs.per_mode_wirelength()
                )
