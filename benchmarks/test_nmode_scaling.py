"""Extension benchmark: scaling beyond two modes.

The paper's formulation covers any mode count (Section III numbers the
modes in binary) but the evaluation uses pairs.  This bench sweeps the
mode count on small regex engines and checks the qualitative
expectations:

* the DCS speed-up stays well above 1 for every mode count (the
  region effect does not depend on the pair-ness of the workload);
* parameterised LUT bits grow with the mode count (more members per
  Tunable LUT means more rows that differ somewhere);
* the region (area) stays at the maximum mode size, not the sum.
"""

import pytest

from repro.bench.regex import compile_regex_circuit
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy

PATTERNS = ["ab+c", "(ab|cd)e", "a(bc)*d", "abc|de+f"]


@pytest.fixture(scope="module")
def mode_circuits():
    return [
        compile_regex_circuit(p, name=f"rx{i}", k=4)
        for i, p in enumerate(PATTERNS)
    ]


@pytest.fixture(scope="module")
def sweep(mode_circuits):
    options = FlowOptions(seed=0, inner_num=0.2)
    results = {}
    for n in (2, 3, 4):
        results[n] = implement_multi_mode(
            f"nmode{n}", mode_circuits[:n], options,
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )
    return results


def test_nmode_speedup_rows(sweep):
    print()
    print("DCS speed-up vs mode count (small regex engines):")
    for n, result in sweep.items():
        s = result.speedup(MergeStrategy.WIRE_LENGTH)
        print(f"  {n} modes: {s:.2f}x "
              f"(region {result.arch.nx}x{result.arch.ny})")
        assert s > 1.5, (n, s)


def test_parameterized_lut_bits_grow_with_modes(sweep):
    counts = {
        n: result.dcs[
            MergeStrategy.WIRE_LENGTH
        ].tunable.n_parameterized_lut_bits()
        for n, result in sweep.items()
    }
    print(f"\nparameterised LUT bits by mode count: {counts}")
    assert counts[2] < counts[3] <= counts[4] * 1.5


def test_area_is_max_not_sum(sweep, mode_circuits):
    for n, result in sweep.items():
        biggest = max(c.n_luts() for c in mode_circuits[:n])
        total = sum(c.n_luts() for c in mode_circuits[:n])
        clbs = result.arch.n_clbs
        assert clbs >= biggest
        if n >= 3:
            # The region must be far below the sum of the modes.
            assert clbs < total, (n, clbs, total)


def test_every_mode_specializes(sweep, mode_circuits):
    from repro.netlist.simulate import equivalent

    for n, result in sweep.items():
        tunable = result.dcs[MergeStrategy.WIRE_LENGTH].tunable
        for mode in range(n):
            assert equivalent(
                mode_circuits[mode], tunable.specialize(mode)
            ), (n, mode)


def test_bench_three_mode_flow(benchmark, mode_circuits):
    options = FlowOptions(seed=1, inner_num=0.1)

    def run():
        return implement_multi_mode(
            "bench3", mode_circuits[:3], options,
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.speedup(MergeStrategy.WIRE_LENGTH) > 1.0
