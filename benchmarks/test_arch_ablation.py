"""Ablation benchmarks over architecture and effort parameters.

Paper Section IV-B: "the techniques and tools we use in this paper are
independent of the architecture used.  The number of inputs of the
LUTs is simply an input parameter of the tool flow."  These benches
substantiate that claim by sweeping

* the LUT size K (3..6),
* the channel-width slack over the estimated minimum,
* the annealing effort (VPR's ``inner_num``),

on one small multi-mode pair, asserting the flow completes and the
paper's qualitative relationships hold at every point.
"""

import pytest

from repro.bench.regex import compile_regex_circuit
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy

PATTERNS = ("ab+c(de)*", "a(bc|de)+f")


def _modes(k: int):
    return [
        compile_regex_circuit(p, name=f"rx{i}_k{k}", k=k)
        for i, p in enumerate(PATTERNS)
    ]


class TestLutSizeSweep:
    @pytest.fixture(scope="class")
    def k_sweep(self):
        results = {}
        for k in (3, 4, 5, 6):
            modes = _modes(k)
            results[k] = (
                modes,
                implement_multi_mode(
                    f"k{k}",
                    modes,
                    FlowOptions(seed=0, k=k, inner_num=0.2),
                    strategies=(MergeStrategy.WIRE_LENGTH,),
                ),
            )
        return results

    def test_flow_completes_for_every_k(self, k_sweep):
        print()
        print("LUT-size sweep (one RegExp pair):")
        for k, (modes, result) in k_sweep.items():
            s = result.speedup(MergeStrategy.WIRE_LENGTH)
            luts = max(c.n_luts() for c in modes)
            print(f"  K={k}: {luts:3d} LUTs, speed-up {s:.2f}x, "
                  f"region {result.arch.nx}x{result.arch.ny}")
            assert s > 1.5, (k, s)

    def test_bigger_luts_mean_fewer_blocks(self, k_sweep):
        sizes = {
            k: max(c.n_luts() for c in modes)
            for k, (modes, _r) in k_sweep.items()
        }
        assert sizes[6] < sizes[3]
        # Monotone within noise: each step down by K never grows the
        # count by more than a small factor.
        for k in (4, 5, 6):
            assert sizes[k] <= sizes[k - 1] * 1.1, sizes

    def test_lut_bits_per_block_scale(self, k_sweep):
        for k, (_modes, result) in k_sweep.items():
            assert result.arch.lut_bits_per_clb() == (1 << k) + 1


class TestChannelWidthSensitivity:
    @pytest.fixture(scope="class")
    def width_sweep(self):
        modes = _modes(4)
        base = None
        results = {}
        for slack_label, extra in (("tight", 0), ("paper", 2),
                                   ("wide", 6)):
            options = FlowOptions(seed=0, inner_num=0.2)
            if base is None:
                probe = implement_multi_mode(
                    "probe", modes, options,
                    strategies=(MergeStrategy.WIRE_LENGTH,),
                )
                base = probe.arch.channel_width
                results[slack_label] = probe
                continue
            options.channel_width = base + extra
            results[slack_label] = implement_multi_mode(
                f"w{extra}", modes, options,
                strategies=(MergeStrategy.WIRE_LENGTH,),
            )
        return results

    def test_all_widths_route(self, width_sweep):
        print()
        print("Channel-width sensitivity:")
        for label, result in width_sweep.items():
            s = result.speedup(MergeStrategy.WIRE_LENGTH)
            print(
                f"  {label:6s} W={result.arch.channel_width:2d} "
                f"speed-up {s:.2f}x "
                f"MDR bits {result.mdr.cost.total}"
            )
            assert s > 1.5

    def test_wider_channels_grow_mdr_cost(self, width_sweep):
        """More tracks = more switches = more bits MDR rewrites."""
        tight = width_sweep["tight"]
        wide = width_sweep["wide"]
        assert (
            wide.mdr.cost.routing_bits
            > tight.mdr.cost.routing_bits
        )

    def test_dcs_parameterized_bits_stay_put(self, width_sweep):
        """Parameterised bits track circuit differences, not region
        size: widening the channel must not inflate them in step with
        the region (this is the core of the paper's region-effect
        argument)."""
        tight = width_sweep["tight"]
        wide = width_sweep["wide"]
        region_growth = (
            wide.mdr.cost.routing_bits / tight.mdr.cost.routing_bits
        )
        dcs_growth = (
            wide.dcs[MergeStrategy.WIRE_LENGTH].cost.routing_bits
            / max(
                1,
                tight.dcs[
                    MergeStrategy.WIRE_LENGTH
                ].cost.routing_bits,
            )
        )
        print(f"\nregion growth {region_growth:.2f}x vs "
              f"parameterised-bit growth {dcs_growth:.2f}x")
        assert dcs_growth < region_growth


class TestAnnealingEffort:
    @pytest.fixture(scope="class")
    def effort_sweep(self):
        modes = _modes(4)
        results = {}
        for inner_num in (0.05, 0.5):
            results[inner_num] = implement_multi_mode(
                f"e{inner_num}",
                modes,
                FlowOptions(seed=0, inner_num=inner_num),
                strategies=(MergeStrategy.WIRE_LENGTH,),
            )
        return results

    def test_both_efforts_complete(self, effort_sweep):
        print()
        print("Annealing-effort sweep:")
        for inner_num, result in effort_sweep.items():
            wl = result.wirelength_ratio(MergeStrategy.WIRE_LENGTH)
            print(f"  inner_num={inner_num}: "
                  "speed-up "
                  f"{result.speedup(MergeStrategy.WIRE_LENGTH):.2f}x "
                  f"wires {100 * wl:.0f}% of MDR")
            assert result.speedup(MergeStrategy.WIRE_LENGTH) > 1.5

    def test_more_effort_no_worse_absolute_wires(self, effort_sweep):
        """Higher effort shortens the merged circuit's absolute wire
        usage (allowing a little annealing noise)."""
        lo = effort_sweep[0.05].dcs[MergeStrategy.WIRE_LENGTH]
        hi = effort_sweep[0.5].dcs[MergeStrategy.WIRE_LENGTH]
        assert hi.mean_wirelength() <= lo.mean_wirelength() * 1.15


def test_bench_k6_flow(benchmark):
    modes = _modes(6)
    options = FlowOptions(seed=0, k=6, inner_num=0.1)

    def run():
        return implement_multi_mode(
            "bench_k6", modes, options,
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.speedup(MergeStrategy.WIRE_LENGTH) > 1.0
