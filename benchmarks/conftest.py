"""Shared fixtures for the benchmark suite.

The heavy part of every figure benchmark is the flow itself (placement
+ routing of multi-mode circuits).  It runs once per pytest session in
the ``experiment`` fixture — one pair per suite through the *identical*
code path the paper's full sweep uses — and the individual benchmarks
time the artefact regeneration on top while asserting the paper's
qualitative shape.

``examples/run_paper_experiments.py --effort paper`` runs the full
sweep (all 10 pairs per suite).
"""

import pytest

from repro.bench.harness import (
    EFFORT_PROFILES,
    EffortProfile,
    ExperimentHarness,
)

# A one-pair-per-suite profile so the benchmark session stays in the
# minutes range while exercising the full pipeline (quick-scale
# workloads from the registry, trimmed to the first pair).
EFFORT_PROFILES.setdefault(
    "bench", EffortProfile("bench", 1, 0.1, scale="quick")
)


@pytest.fixture(scope="session")
def harness():
    return ExperimentHarness(effort="bench", seed=0)


@pytest.fixture(scope="session")
def experiment(harness):
    """All suites implemented once; shared by the figure benchmarks."""
    return {
        suite: harness.run_suite(suite)
        for suite in ("RegExp", "FIR", "MCNC")
    }
