"""Benchmark for the Section IV-C area results.

The paper: "For the regular expression matching application and the
MCNC benchmarks, only an area of around 50% is required compared to
the static implementation of the 2 modes.  The adaptive filtering
application requires an area which turned out to be only 33% of the
generic FIR filter."

Both flows (MDR and DCS) share this area gain — the region only needs
to hold the biggest mode.
"""

from repro.bench.fir import fir_network, fir_coefficients
from repro.synth.optimize import optimize_network
from repro.synth.techmap import tech_map


def test_area_rows(harness):
    rows = harness.area_table()
    print()
    print(harness.print_area_table(rows))
    by_suite = {r["suite"]: r for r in rows}
    # ~50% vs static-both for the pairwise suites.
    for suite in ("RegExp", "MCNC"):
        row = by_suite[suite]
        assert 45.0 <= row["area_pct"] <= 65.0, row
    # Around a third of the generic filter (paper: 33%).
    fir = by_suite["FIR"]
    assert 20.0 <= fir["area_pct"] <= 50.0, fir


def test_specialised_fir_is_about_3x_smaller(benchmark):
    """The constant-propagation claim behind the 33% figure."""
    spec = fir_coefficients("lowpass", seed=0)

    def build_both():
        specialised = tech_map(
            optimize_network(fir_network(spec))
        )
        generic = tech_map(
            optimize_network(fir_network(spec, generic=True))
        )
        return specialised, generic

    specialised, generic = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    ratio = generic.n_luts() / specialised.n_luts()
    print(f"\ngeneric/specialised LUT ratio: {ratio:.2f}x")
    assert ratio >= 2.0


def test_bench_area_aggregation(benchmark, harness):
    rows = benchmark(harness.area_table)
    assert len(rows) == 3
