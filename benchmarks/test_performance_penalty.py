"""Extension benchmark: the abstract's "no significant performance
penalty" claim.

The paper argues via wire length (Fig. 7) that the combined
implementation costs little performance.  With the placement-level
timing model (`repro.place.timing`) the claim is checked directly: the
per-mode critical-path delay of the merged circuit is compared to the
separate MDR implementation of the same mode.
"""

import pytest

from repro.core.merge import MergeStrategy
from repro.place.timing import dcs_timing, mdr_timing, timing_penalty


@pytest.fixture(scope="module")
def timing_data(harness, experiment):
    rows = []
    for suite, outcomes in experiment.items():
        for outcome in outcomes:
            result = outcome.result
            pair = dict(harness.suite_pairs(suite))[outcome.name]
            mdr_reports = [
                mdr_timing(circuit, impl.placement)
                for circuit, impl in zip(
                    pair, result.mdr.implementations
                )
            ]
            for strategy, dcs in result.dcs.items():
                dcs_reports = [
                    dcs_timing(dcs.tunable, mode)
                    for mode in range(len(pair))
                ]
                rows.append({
                    "suite": suite,
                    "name": outcome.name,
                    "strategy": strategy,
                    "penalty": timing_penalty(
                        mdr_reports, dcs_reports
                    ),
                })
    return rows


def test_performance_penalty_rows(timing_data):
    print()
    print("Critical-path delay penalty of DCS vs MDR (1.0 = none):")
    for row in timing_data:
        print(
            f"  {row['suite']:8s} {row['name']:12s} "
            f"{row['strategy'].value:15s} "
            f"{row['penalty']:.3f}x"
        )
    for row in timing_data:
        # "Without significant performance penalties": the per-mode
        # critical path should stay within ~1.6x of the separate
        # implementation even at benchmark annealing effort.
        assert row["penalty"] <= 1.6, row
        # And it can never beat MDR by a large margin either (both
        # use the same estimator; a collapse indicates a model bug).
        assert row["penalty"] >= 0.5, row


def test_wirelength_strategy_at_most_modest_penalty(timing_data):
    wl_rows = [
        r for r in timing_data
        if r["strategy"] is MergeStrategy.WIRE_LENGTH
    ]
    mean_penalty = sum(r["penalty"] for r in wl_rows) / len(wl_rows)
    print(f"\nmean wire-length-strategy penalty: {mean_penalty:.3f}x")
    assert mean_penalty <= 1.5


def test_bench_timing_model(benchmark, harness, experiment):
    outcome = experiment["RegExp"][0]
    result = outcome.result
    dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
    report = benchmark(dcs_timing, dcs.tunable, 0)
    assert report.critical_delay > 0
