"""Ablation: merge-strategy comparison on one RegExp pair.

The paper compares two merge strategies (edge matching vs wire
length).  This ablation adds the naive Fig. 3 baseline — merging LUTs
*by index* with no placement awareness — and measures the three side
by side on parameterised routing bits, matched connections and wire
usage, isolating how much of the win comes from the combined
placement itself.

Also benches the two combined-placement cost functions in isolation
(same circuits, same annealing effort), which is the direct cost of
the paper's novel step.
"""

import pytest

from repro.core.combined_placement import combined_place
from repro.core.flow import DcsFlow, FlowOptions
from repro.core.merge import MergeStrategy
from repro.core.reconfig import varying_bits


@pytest.fixture(scope="module")
def regexp_pair(harness):
    pairs = harness.suite_pairs("RegExp")
    return pairs[0][1]


@pytest.fixture(scope="module")
def shared_arch(experiment):
    return experiment["RegExp"][0].result.arch


@pytest.fixture(scope="module")
def ablation(regexp_pair, shared_arch):
    """Run all three strategies on the same pair & architecture."""
    from repro.arch.rrg import build_rrg

    options = FlowOptions(inner_num=0.1)
    rrg = build_rrg(shared_arch)
    results = {}
    for strategy in (
        MergeStrategy.BY_INDEX,
        MergeStrategy.EDGE_MATCHING,
        MergeStrategy.WIRE_LENGTH,
    ):
        results[strategy] = DcsFlow(options).run(
            "ablation", regexp_pair, shared_arch, strategy, rrg
        )
    return results


def test_ablation_rows(ablation):
    print()
    print("Merge-strategy ablation (one RegExp pair):")
    print(f"{'strategy':15s} {'param bits':>11s} "
          f"{'merged conns':>13s} {'mean wires':>11s}")
    for strategy, dcs in ablation.items():
        merged = dcs.tunable.n_shared_connections()
        print(
            f"{strategy.value:15s} {dcs.cost.routing_bits:11d} "
            f"{merged:13d} {dcs.mean_wirelength():11.0f}"
        )


def test_placement_aware_strategies_beat_by_index(ablation):
    """The paper's whole point: grouping must exploit similarity."""
    naive = ablation[MergeStrategy.BY_INDEX]
    for strategy in (
        MergeStrategy.EDGE_MATCHING, MergeStrategy.WIRE_LENGTH,
    ):
        smart = ablation[strategy]
        assert (
            smart.cost.routing_bits <= naive.cost.routing_bits
        ), strategy

    # Edge matching merges at least as many connections as the naive
    # grouping (it optimises exactly that).
    assert (
        ablation[MergeStrategy.EDGE_MATCHING]
        .tunable.n_shared_connections()
        >= naive.tunable.n_shared_connections()
    )


def test_param_bits_equal_varying_bits(ablation):
    """DCS cost must equal the per-mode on-set variation."""
    for dcs in ablation.values():
        bit_sets = [
            dcs.routing.bits_on(m) for m in range(2)
        ]
        assert dcs.cost.routing_bits == len(varying_bits(bit_sets))


def test_bench_combined_placement_wirelength(
    benchmark, regexp_pair, shared_arch
):
    from repro.place.annealing import AnnealingSchedule

    result = benchmark.pedantic(
        combined_place,
        args=(regexp_pair, shared_arch, MergeStrategy.WIRE_LENGTH),
        kwargs={"seed": 1, "schedule": AnnealingSchedule(
            inner_num=0.1)},
        rounds=1, iterations=1,
    )
    assert result.stats.final_cost <= result.stats.initial_cost


def test_bench_combined_placement_edge_matching(
    benchmark, regexp_pair, shared_arch
):
    from repro.place.annealing import AnnealingSchedule

    result = benchmark.pedantic(
        combined_place,
        args=(regexp_pair, shared_arch, MergeStrategy.EDGE_MATCHING),
        kwargs={"seed": 1, "schedule": AnnealingSchedule(
            inner_num=0.1)},
        rounds=1, iterations=1,
    )
    assert result.n_tunable_connections > 0
