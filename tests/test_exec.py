"""Tests of the ``repro.exec`` subsystem.

Covers the four modules (fingerprint, cache, scheduler, progress) plus
the two system-level guarantees the flow depends on:

* **cache correctness** — a warm-cache ``implement_multi_mode`` run
  produces bit-for-bit identical results to a cold run;
* **parallel determinism** — results are identical for every worker
  count.
"""

import os
import pickle
import time

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.core.flow import (
    FlowOptions,
    implement_multi_mode,
    pack_result,
    unpack_result,
)
from repro.core.merge import MergeStrategy
from repro.exec.cache import (
    CacheStats,
    StageCache,
    atomic_append_text,
    atomic_write_text,
)
from repro.exec.fingerprint import Unfingerprintable, fingerprint
from repro.exec.progress import ProgressLog, StageRecord, timed_call
from repro.exec.scheduler import Scheduler, Task, default_workers
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable


def tiny_circuit(name: str, flip: bool = False) -> LutCircuit:
    c = LutCircuit(name, 4)
    for i in range(4):
        c.add_input(f"in{i}")
    t_and = TruthTable.from_function(2, lambda a, b: a and b)
    t_or = TruthTable.from_function(2, lambda a, b: a or b)
    t_xor = TruthTable.from_function(2, lambda a, b: a != b)
    c.add_block("g0", ("in0", "in1"), t_or if flip else t_and)
    c.add_block("g1", ("in2", "in3"), t_xor)
    c.add_block("g2", ("g0", "g1"), t_and if flip else t_or)
    c.add_block("g3", ("g2", "in0"), t_xor, registered=True)
    c.add_output("g2")
    c.add_output("g3")
    return c


def result_signature(result):
    """Everything observable about a MultiModeResult, hashable-ish."""
    return (
        result.name,
        result.arch,
        [
            (
                impl.mode,
                sorted(
                    (cell, s.kind, s.x, s.y, s.slot)
                    for cell, s in impl.placement.sites.items()
                ),
                sorted(impl.routing.bits_on(0)),
                impl.routing.total_wirelength(0),
            )
            for impl in result.mdr.implementations
        ],
        (result.mdr.cost.total, result.mdr.diff.total),
        {
            strategy.value: (
                sorted(dcs.routing.bits_on(0)),
                sorted(dcs.routing.bits_on(1)),
                dcs.cost.total,
                dcs.cost.routing_bits,
            )
            for strategy, dcs in result.dcs.items()
        },
    )


# ---------------------------------------------------------------------------
# fingerprint
# ---------------------------------------------------------------------------


class TestFingerprint:
    @pytest.mark.smoke
    def test_stable_and_discriminating(self):
        assert fingerprint(1, "a", (2.5,)) == fingerprint(
            1, "a", (2.5,)
        )
        assert fingerprint(1) != fingerprint(2)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint([1]) != fingerprint((1,))
        assert fingerprint(1.0) != fingerprint(1)
        assert fingerprint(True) != fingerprint(1)

    def test_set_and_dict_order_independent(self):
        a = {"x": 1, "y": 2, "z": 3}
        b = dict(reversed(list(a.items())))
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint({"p", "q", "r"}) == fingerprint(
            {"r", "p", "q"}
        )
        assert fingerprint(frozenset((1, 2))) == fingerprint(
            frozenset((2, 1))
        )

    def test_dataclass_and_enum(self):
        a1 = FpgaArchitecture(nx=3, ny=3, channel_width=8)
        a2 = FpgaArchitecture(nx=3, ny=3, channel_width=8)
        a3 = FpgaArchitecture(nx=3, ny=3, channel_width=9)
        assert fingerprint(a1) == fingerprint(a2)
        assert fingerprint(a1) != fingerprint(a3)
        assert fingerprint(MergeStrategy.WIRE_LENGTH) != fingerprint(
            MergeStrategy.EDGE_MATCHING
        )

    def test_circuit_content_addressing(self):
        a = tiny_circuit("t")
        b = tiny_circuit("t")
        assert fingerprint(a) == fingerprint(b)
        flipped = tiny_circuit("t", flip=True)
        assert fingerprint(a) != fingerprint(flipped)
        renamed = tiny_circuit("other")
        assert fingerprint(a) != fingerprint(renamed)

    def test_unfingerprintable(self):
        with pytest.raises(Unfingerprintable):
            fingerprint(object())


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


class TestStageCache:
    @pytest.mark.smoke
    def test_roundtrip(self, tmp_path):
        cache = StageCache(tmp_path)
        key = cache.key("stage", "input", 7)
        hit, _ = cache.get("stage", key)
        assert not hit
        cache.put("stage", key, {"value": 42})
        hit, value = cache.get("stage", key)
        assert hit and value == {"value": 42}
        assert cache.n_entries() == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = StageCache(tmp_path)
        key = cache.key("stage", "x")
        cache.put("stage", key, [1, 2, 3])
        path = cache.path("stage", key)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get("stage", key)
        assert not hit
        assert not path.exists()
        assert cache.stats.errors == 1
        assert cache.stats.corrupt == 1

    @pytest.mark.parametrize(
        "payload",
        [
            # Truncated mid-stream by a killed worker (EOFError /
            # UnpicklingError).
            pickle.dumps({"value": list(range(100))})[:-7],
            # Flipped protocol byte (ValueError).
            b"\x80\x08garbage",
            # Bit rot inside a string opcode (UnicodeDecodeError).
            b"\x80\x04\x95\x08\x00\x00\x00\x00\x00\x00\x00"
            b"\x8c\x04\xff\xfe\xfd\xfc\x94.",
            # Corrupt frame length (OverflowError).
            b"\x80\x04\x95\xff\xff\xff\xff\xff\xff\xff\xff.",
        ],
    )
    def test_every_corruption_shape_is_a_miss(self, tmp_path,
                                              payload):
        """pickle surfaces corruption as many exception types; none
        may crash the flow (regression: ValueError and friends
        escaped the old catch and took the whole run down)."""
        cache = StageCache(tmp_path)
        key = cache.key("stage", "y")
        cache.put("stage", key, {"ok": True})
        path = cache.path("stage", key)
        path.write_bytes(payload)
        hit, value = cache.get("stage", key)
        assert not hit and value is None
        assert not path.exists()
        assert cache.stats.corrupt == 1
        # The slot is reusable: a fresh put/get round-trips.
        cache.put("stage", key, {"ok": True})
        hit, value = cache.get("stage", key)
        assert hit and value == {"ok": True}

    def test_corrupt_entry_recomputes_through_memoize(self, tmp_path):
        cache = StageCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return [1, 2, 3]

        value, hit = cache.memoize("st", ("in",), compute)
        assert not hit and len(calls) == 1
        key = cache.key("st", "in")
        cache.path("st", key).write_bytes(b"\x80\x08junk")
        value, hit = cache.memoize("st", ("in",), compute)
        assert value == [1, 2, 3]
        assert not hit and len(calls) == 2
        # Entry was rewritten: next call hits again.
        _value, hit = cache.memoize("st", ("in",), compute)
        assert hit and len(calls) == 2

    def test_disabled_cache_is_transparent(self, tmp_path):
        cache = StageCache(tmp_path, enabled=False)
        key = cache.key("stage", 1)
        cache.put("stage", key, "value")
        hit, _ = cache.get("stage", key)
        assert not hit
        assert cache.n_entries() == 0

    def test_env_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        cache = StageCache(tmp_path)
        assert not cache.enabled

    def test_memoize_and_clear(self, tmp_path):
        cache = StageCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return sum(range(10))

        value, hit = cache.memoize("sum", ("inputs",), compute)
        assert (value, hit) == (45, False)
        value, hit = cache.memoize("sum", ("inputs",), compute)
        assert (value, hit) == (45, True)
        assert len(calls) == 1
        assert cache.clear() == 1
        _value, hit = cache.memoize("sum", ("inputs",), compute)
        assert not hit and len(calls) == 2

    def test_stats_merge(self):
        a = CacheStats(hits=1, misses=2)
        a.merge(CacheStats(hits=3, stores=4))
        assert (a.hits, a.misses, a.stores) == (4, 2, 4)


class TestAtomicHelpers:
    def test_write_and_append_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "file.jsonl"
        atomic_write_text(path, "one\n")
        atomic_append_text(path, "two\n")
        atomic_append_text(path, "three\n")
        assert path.read_text() == "one\ntwo\nthree\n"
        # No stray tmp files left behind.
        assert [p.name for p in path.parent.iterdir()] == [
            "file.jsonl"
        ]

    def test_append_creates_missing_file(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        atomic_append_text(path, "line\n")
        assert path.read_text() == "line\n"

    def test_write_replaces_whole_content(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "long old content\n")
        atomic_write_text(path, "new\n")
        assert path.read_text() == "new\n"


class TestPrune:
    def _fill(self, cache, n, size=1000):
        for i in range(n):
            cache.put("stage", f"{i:02d}" * 32, b"x" * size)
            # Distinct mtimes even on coarse filesystem clocks.
            path = cache.path("stage", f"{i:02d}" * 32)
            os.utime(path, (1_000_000 + i, 1_000_000 + i))

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = StageCache(tmp_path)
        self._fill(cache, 5)
        sizes = cache.total_bytes()
        per_entry = sizes // 5
        removed, removed_bytes = cache.prune(per_entry * 2)
        assert removed == 3
        assert removed_bytes == per_entry * 3
        # The two newest entries survive.
        survivors = {
            p.stem for p in cache.root.rglob("*.pkl")
        }
        assert survivors == {"03" * 32, "04" * 32}

    def test_prune_noop_when_under_budget(self, tmp_path):
        cache = StageCache(tmp_path)
        self._fill(cache, 3)
        assert cache.prune(cache.total_bytes()) == (0, 0)
        assert cache.n_entries() == 3

    def test_prune_zero_budget_clears(self, tmp_path):
        cache = StageCache(tmp_path)
        self._fill(cache, 3)
        removed, _bytes = cache.prune(0)
        assert removed == 3
        assert cache.n_entries() == 0

    def test_prune_empty_and_missing_root(self, tmp_path):
        assert StageCache(tmp_path / "nowhere").prune(10) == (0, 0)

    def test_hit_refreshes_recency(self, tmp_path):
        """A recently *read* entry outlives an unread newer one."""
        cache = StageCache(tmp_path)
        self._fill(cache, 3)
        key = "00" * 32
        hit, value = cache.get("stage", key)
        assert hit
        per_entry = cache.total_bytes() // 3
        cache.prune(per_entry)
        survivors = {p.stem for p in cache.root.rglob("*.pkl")}
        assert survivors == {key}


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


def _echo_task(value, delay=0.0):
    if delay:
        time.sleep(delay)
    return (value, os.getpid())


def _failing_task(value):
    raise ValueError(f"boom {value}")


class TestScheduler:
    @pytest.mark.smoke
    def test_serial_inline(self):
        scheduler = Scheduler(workers=1)
        results = scheduler.run(
            [Task(_echo_task, (i,)) for i in range(5)]
        )
        assert [value for value, _pid in results] == list(range(5))
        assert all(pid == os.getpid() for _v, pid in results)

    def test_parallel_submission_order(self):
        scheduler = Scheduler(workers=2)
        # Reverse-sorted delays: the first-submitted task finishes
        # last, yet results must come back in submission order.
        tasks = [
            Task(_echo_task, (i, 0.2 - 0.05 * i)) for i in range(4)
        ]
        results = scheduler.run(tasks)
        assert [value for value, _pid in results] == list(range(4))
        if (os.cpu_count() or 1) > 1:
            # With one core the scheduler legitimately runs inline.
            assert any(pid != os.getpid() for _v, pid in results)

    def test_parallel_error_propagates(self):
        scheduler = Scheduler(workers=2)
        tasks = [
            Task(_echo_task, (0,)),
            Task(_failing_task, (1,)),
            Task(_echo_task, (2,)),
        ]
        with pytest.raises(ValueError, match="boom 1"):
            scheduler.run(tasks)

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert default_workers() == 6
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert default_workers() == 1

    def test_empty_and_map(self):
        scheduler = Scheduler(workers=1)
        assert scheduler.run([]) == []
        results = scheduler.map(_echo_task, [(1,), (2,)])
        assert [v for v, _ in results] == [1, 2]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_on_result_fires_in_submission_order(self, workers):
        scheduler = Scheduler(workers=workers)
        seen = []
        tasks = [
            Task(_echo_task, (i, 0.1 - 0.03 * i)) for i in range(3)
        ]
        results = scheduler.run(
            tasks,
            on_result=lambda idx, res: seen.append((idx, res[0])),
        )
        assert seen == [(0, 0), (1, 1), (2, 2)]
        assert [v for v, _pid in results] == [0, 1, 2]

    def test_on_result_stops_at_first_failure(self):
        """The callback never sees results past a failed task: a
        checkpointer must not record completions the caller will
        never observe (run() raises)."""
        scheduler = Scheduler(workers=2)
        seen = []
        tasks = [
            Task(_echo_task, (0,)),
            Task(_failing_task, (1,)),
            Task(_echo_task, (2,)),
        ]
        with pytest.raises(ValueError, match="boom 1"):
            scheduler.run(
                tasks,
                on_result=lambda idx, _res: seen.append(idx),
            )
        assert seen == [0]

    def test_thread_mode_runs_unpicklable_tasks(self):
        """``use_threads=True`` exists for closures over live state
        (the batched router's negotiation tasks), which the process
        pool cannot pickle; submission order must still hold."""
        scheduler = Scheduler(workers=3, use_threads=True)
        state = {"hits": 0}

        def task(i):
            state["hits"] += 1
            return i * i

        results = scheduler.run(
            [Task(lambda i=i: task(i)) for i in range(6)]
        )
        assert results == [i * i for i in range(6)]
        assert state["hits"] == 6

    def test_thread_mode_not_capped_by_cpu_count(self):
        """Thread pools must exercise real concurrency even on
        single-core CI boxes (the worker-count-independence tests
        rely on it); process pools stay hardware-capped."""
        threads = Scheduler(workers=4, use_threads=True)
        assert threads.effective_workers(8) == 4
        procs = Scheduler(workers=4)
        assert procs.effective_workers(8) <= max(
            1, os.cpu_count() or 1
        )

    def test_thread_mode_error_propagates(self):
        scheduler = Scheduler(workers=2, use_threads=True)
        tasks = [
            Task(lambda: 1),
            Task(_failing_task, (7,)),
            Task(lambda: 3),
        ]
        with pytest.raises(ValueError, match="boom 7"):
            scheduler.run(tasks)


# ---------------------------------------------------------------------------
# progress
# ---------------------------------------------------------------------------


class TestProgress:
    @pytest.mark.smoke
    def test_breakdown(self):
        log = ProgressLog()
        log.add(StageRecord("place", "a", 1.0))
        log.add(StageRecord("place", "b", 2.0, cache_hit=True))
        log.add(StageRecord("route", "a", 0.5))
        breakdown = log.breakdown()
        assert breakdown["place"]["count"] == 2
        assert breakdown["place"]["cache_hits"] == 1
        assert breakdown["place"]["seconds"] == pytest.approx(3.0)
        assert log.total_seconds() == pytest.approx(3.5)

    def test_timed_and_timed_call(self):
        log = ProgressLog()
        with log.timed("stage", "item"):
            pass
        assert log.records[0].stage == "stage"
        value, record = timed_call("s", "n", lambda: 41)
        assert value == 41 and record.stage == "s"


# ---------------------------------------------------------------------------
# system-level: cache correctness and parallel determinism
# ---------------------------------------------------------------------------


def _run_tiny(workers=None, cache=None, progress=None):
    modes = [tiny_circuit("a"), tiny_circuit("b", flip=True)]
    return implement_multi_mode(
        "tiny",
        modes,
        FlowOptions(inner_num=0.2),
        workers=workers,
        cache=cache,
        progress=progress,
    )


class TestFlowExecution:
    def test_warm_cache_bit_identical(self, tmp_path):
        """A warm-cache rerun must reproduce the cold run exactly."""
        cold_cache = StageCache(tmp_path)
        cold_progress = ProgressLog()
        cold = _run_tiny(cache=cold_cache, progress=cold_progress)
        assert cold_cache.stats.stores > 0
        # Fresh cache object, same directory: only disk state is shared.
        warm_cache = StageCache(tmp_path)
        warm_progress = ProgressLog()
        warm = _run_tiny(cache=warm_cache, progress=warm_progress)
        assert result_signature(cold) == result_signature(warm)
        assert warm_cache.stats.hits == 1  # one multimode entry
        hits = [r for r in warm_progress.records if r.cache_hit]
        assert hits and hits[0].stage == "multimode"

    def test_no_cache_matches_cached(self, tmp_path):
        plain = _run_tiny()
        cached = _run_tiny(cache=StageCache(tmp_path))
        assert result_signature(plain) == result_signature(cached)

    @pytest.mark.smoke
    def test_worker_count_determinism(self):
        """Identical results for every worker count."""
        serial = _run_tiny(workers=1)
        two = _run_tiny(workers=2)
        four = _run_tiny(workers=4)
        assert result_signature(serial) == result_signature(two)
        assert result_signature(serial) == result_signature(four)

    def test_stage_cache_partial_reuse(self, tmp_path):
        """Placement entries survive router-option changes."""
        cache = StageCache(tmp_path)
        _run_tiny(cache=cache)
        # A different router iteration cap invalidates multimode and
        # routing entries but must reuse the cached placements.
        modes = [tiny_circuit("a"), tiny_circuit("b", flip=True)]
        progress = ProgressLog()
        implement_multi_mode(
            "tiny",
            modes,
            FlowOptions(inner_num=0.2, router_max_iterations=39),
            cache=StageCache(tmp_path),
            progress=progress,
        )
        place_records = [
            r for r in progress.records if r.stage == "place"
        ]
        assert place_records and all(
            r.cache_hit for r in place_records
        )

    def test_pack_unpack_roundtrip(self):
        result = _run_tiny()
        packed = pack_result(result)
        data = pickle.dumps(packed)
        restored = unpack_result(pickle.loads(data))
        assert result_signature(result) == result_signature(restored)


class TestCliExec:
    def test_cache_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:    0" in out
        cache = StageCache(tmp_path)
        cache.put("s", cache.key("s", 1), "v")
        assert main(
            ["cache", "--cache-dir", str(tmp_path), "--clear"]
        ) == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_cache_prune_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        cache = StageCache(tmp_path)
        for i in range(3):
            key = cache.key("s", i)
            cache.put("s", key, "v" * 100)
            os.utime(
                cache.path("s", key), (1_000_000 + i,) * 2
            )
        per_entry = cache.total_bytes() // 3
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-size", str(per_entry),
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 entries" in out
        assert cache.n_entries() == 1
        # prune without a budget is a usage error.
        assert main(
            ["cache", "prune", "--cache-dir", str(tmp_path)]
        ) == 2
        assert "--max-size" in capsys.readouterr().err

    def test_implement_accepts_exec_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["implement", "a.blif", "b.blif", "--workers", "2",
             "--no-cache"]
        )
        assert args.workers == 2 and args.no_cache


class TestExecBench:
    def test_bench_tiny_workload(self, tmp_path):
        from repro.bench.exec_bench import (
            run_exec_bench,
            write_bench_json,
        )

        pairs = [
            ("p0", (tiny_circuit("a"), tiny_circuit("b", True))),
            ("p1", (tiny_circuit("c"), tiny_circuit("d", True))),
        ]
        report = run_exec_bench(
            workers=2,
            inner_num=0.2,
            cache_dir=str(tmp_path / "cache"),
            pairs=pairs,
            router_scale="tiny",
        )
        assert report["results_identical"]
        assert report["workload"]["n_pairs"] == 2
        assert report["parallel_warm"]["seconds"] > 0
        assert "multimode" in report["parallel_warm"]["stages"]
        out = tmp_path / "BENCH_exec.json"
        write_bench_json(report, str(out))
        import json

        loaded = json.loads(out.read_text())
        assert loaded["schema_version"] == 5
        timed = loaded["timing_driven_cold"]
        assert timed["seconds"] > 0
        assert timed["mdr_mean_critical_delay"] > 0
        router = loaded["router_vectorized"]
        assert router["results_identical"]
        assert router["workload"]["scale"] == "tiny"
        assert router["scalar_seconds"] > 0
        assert router["vectorized_seconds"] > 0
        assert router["speedup"] > 0
        batched = loaded["router_batched"]
        assert batched["seconds"] > 0
        assert batched["deterministic_across_rounds"]
        assert batched["wirelength_ratio_vs_vectorized"] > 0
        assert batched["stats"]["drains"] > 0
        assert batched["stats"]["searches"] > 0

    def test_router_bench_is_bit_identical(self):
        from repro.bench.exec_bench import run_router_bench

        phase = run_router_bench(scale="tiny", rounds=1)
        assert phase["results_identical"]
        assert phase["workload"]["n_pairs"] == 4
        assert phase["workload"]["n_tunable_connections"] > 0
        assert phase["batched"]["stats"]["pops"] > 0
