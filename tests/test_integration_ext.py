"""End-to-end integration of the extension modules.

One small multi-mode pair flows through merge + TRoute, and then
through every extension surface: VPR export/import, routed STA,
visualisation, reporting, and the minimum-width sizing — checking the
pieces agree with each other, not just work in isolation.
"""

import xml.etree.ElementTree as ET

import pytest

from repro.arch.rrg import WIRE
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.interop import (
    parse_place_file,
    parse_route_file,
    write_place_file,
    write_route_file,
)
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.timing import (
    dcs_arc_delays,
    mdr_arc_delays,
    routed_critical_path,
    timing_comparison,
)
from repro.viz import implementation_report, routing_svg


def _mode(name, n_blocks, twist):
    c = LutCircuit(name, 4)
    c.add_input("a")
    c.add_input("b")
    c.add_input("c")
    prev = ("a", "b")
    t = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
    for i in range(n_blocks):
        c.add_block(f"{name}n{i}", prev, t,
                    registered=(i % 4 == twist))
        prev = (f"{name}n{i}", ("a", "b", "c")[i % 3])
    c.add_output(f"{name}n{n_blocks - 1}")
    return c


@pytest.fixture(scope="module")
def flow_result():
    modes = [_mode("p", 10, 1), _mode("q", 13, 2)]
    return modes, implement_multi_mode(
        "integration", modes,
        FlowOptions(seed=0, inner_num=0.2),
        strategies=(MergeStrategy.WIRE_LENGTH,),
    )


class TestVprRoundtripAgreesWithMetrics:
    def test_route_file_wire_counts_match(self, flow_result):
        _modes, result = flow_result
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        rrg = dcs.routing.rrg
        parsed = parse_route_file(
            write_route_file(dcs.routing), rrg
        )
        for mode in range(2):
            wires = {
                n
                for nets in parsed[mode].values()
                for n in nets
                if rrg.node_kind[n] == WIRE
            }
            assert wires == dcs.routing.wires_used(mode)
            assert len(wires) == dcs.per_mode_wirelength()[mode]

    def test_mdr_place_files_roundtrip(self, flow_result):
        _modes, result = flow_result
        for impl in result.mdr.implementations:
            text = write_place_file(impl.placement)
            parsed = parse_place_file(text, result.arch)
            assert parsed.sites == impl.placement.sites


class TestRoutedStaCoherence:
    def test_dcs_penalty_is_finite_and_reported(self, flow_result):
        modes, result = flow_result
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        mdr_reports = [
            routed_critical_path(
                circuit,
                mdr_arc_delays(
                    circuit, impl.placement, impl.routing
                ),
            )
            for circuit, impl in zip(
                modes, result.mdr.implementations
            )
        ]
        dcs_reports = [
            routed_critical_path(
                dcs.tunable.specialize(mode),
                dcs_arc_delays(dcs.tunable, dcs.routing, mode),
            )
            for mode in range(2)
        ]
        comp = timing_comparison(mdr_reports, dcs_reports)
        assert 0.3 < comp.mean_ratio < 3.0
        for report in mdr_reports + dcs_reports:
            assert report.critical_delay > 0
            assert report.critical_path

    def test_sta_arcs_cover_specialized_connections(self,
                                                    flow_result):
        _modes, result = flow_result
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        for mode in range(2):
            specialized = dcs.tunable.specialize(mode)
            arcs = dcs_arc_delays(dcs.tunable, dcs.routing, mode)
            for block in specialized.blocks.values():
                for src in block.inputs:
                    assert (src, block.name) in arcs, (
                        mode, src, block.name,
                    )


class TestRenderings:
    def test_svg_wire_count_matches_routing(self, flow_result):
        _modes, result = flow_result
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        svg = routing_svg(dcs.routing)
        ET.fromstring(svg)  # well-formed
        all_wires = dcs.routing.wires_used(0) | dcs.routing.wires_used(
            1
        )
        assert svg.count("<line") == len(all_wires)

    def test_report_matches_result_numbers(self, flow_result):
        _modes, result = flow_result
        text = implementation_report(result)
        assert str(result.mdr.cost.total) in text
        assert (
            f"{result.speedup(MergeStrategy.WIRE_LENGTH):.2f}x"
            in text
        )
