"""Tests for the generic utilities (union-find, seeded RNG)."""

from hypothesis import given, strategies as st

from repro.utils.disjoint_set import DisjointSet
from repro.utils.rng import make_rng


class TestDisjointSet:
    def test_lazy_singletons(self):
        ds = DisjointSet()
        assert ds.find("a") == "a"
        assert "a" in ds
        assert len(ds) == 1

    def test_union_connects(self):
        ds = DisjointSet()
        ds.union("a", "b")
        ds.union("b", "c")
        assert ds.connected("a", "c")
        assert not ds.connected("a", "d")

    def test_union_idempotent(self):
        ds = DisjointSet(["a", "b"])
        r1 = ds.union("a", "b")
        r2 = ds.union("a", "b")
        assert r1 == r2

    def test_groups_partition(self):
        ds = DisjointSet(["a", "b", "c", "d"])
        ds.union("a", "b")
        ds.union("c", "d")
        groups = {frozenset(g) for g in ds.groups()}
        assert groups == {
            frozenset({"a", "b"}), frozenset({"c", "d"}),
        }

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            max_size=40,
        )
    )
    def test_transitivity_property(self, unions):
        """connected() must be the transitive closure of union()."""
        ds = DisjointSet()
        adjacency = {}
        for a, b in unions:
            ds.union(a, b)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        # Reference: BFS closure.
        for start in adjacency:
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            for other in adjacency:
                assert ds.connected(start, other) == (
                    other in seen
                )


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7)
        b = make_rng(7)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_salt_decorrelates(self):
        a = make_rng(7, "place")
        b = make_rng(7, "route")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_same_salt_reproduces(self):
        a = make_rng(7, "place")
        b = make_rng(7, "place")
        assert a.random() == b.random()
