"""Tests for the campaign runner and the CI QoR gate.

The end-to-end path runs a one-pair tiny campaign (seconds) and
asserts the JSONL schema plus warm/cold and worker-count bit-identity
— the properties the CI qor-gate and the nightly trajectory rely on.
The gate itself is exercised on real summaries: it must pass against
its own baseline and fail once a 10% wirelength regression is
injected.
"""

import copy
import json

import pytest

from repro.bench.campaign import (
    DEFAULT_TOLERANCES,
    PRESETS,
    RECORD_SCHEMA_VERSION,
    CampaignSpec,
    CampaignVariant,
    baseline_from_summary,
    campaign_runs,
    compare_to_baseline,
    load_baseline,
    load_checkpoint,
    qor_metrics,
    record_key,
    records_jsonl,
    run_campaign,
    write_baseline,
    write_jsonl,
)
from repro.exec.cache import StageCache
from repro.gen.suites import registered_suites

TINY = CampaignSpec(
    name="tiny-test",
    description="one tiny klut pair, wirelength-driven",
    suites=("klut",),
    scale="tiny",
    pairs_per_suite=1,
    inner_num=0.05,
    variants=(CampaignVariant("wirelength"),),
)

RECORD_KEYS = {
    "schema", "campaign", "suite", "pair", "variant", "seed", "key",
    "modes", "arch", "options", "mdr", "dcs",
}


@pytest.fixture(scope="module")
def tiny_outcome(tmp_path_factory):
    """One cold campaign run with a persistent cache (shared by the
    read-only assertions below)."""
    cache_dir = tmp_path_factory.mktemp("campaign-cache")
    result = run_campaign(TINY, workers=1, cache=StageCache(cache_dir))
    return cache_dir, result


class TestCampaignEndToEnd:
    @pytest.mark.smoke
    def test_jsonl_schema_and_determinism(self, tmp_path):
        """The acceptance property: bit-identical JSONL across
        warm/cold caches and worker counts, with a stable schema."""
        cache = StageCache(tmp_path / "cache")
        cold = run_campaign(TINY, workers=1, cache=cache)
        warm = run_campaign(
            TINY, workers=1, cache=StageCache(tmp_path / "cache")
        )
        parallel = run_campaign(
            TINY, workers=2,
            cache=StageCache(tmp_path / "cache2"),
        )

        text = records_jsonl(cold.records)
        assert text == records_jsonl(warm.records)
        assert text == records_jsonl(parallel.records)

        # Warm reruns replay every record from the campaign cache.
        assert warm.summary["cache"]["record_hits"] == len(
            warm.records
        )
        assert cold.summary["cache"]["record_hits"] == 0

        # Schema: every line parses back to a full record.
        lines = text.strip().splitlines()
        assert len(lines) == len(cold.records) == 1
        for line in lines:
            record = json.loads(line)
            assert set(record) == RECORD_KEYS
            assert record["campaign"] == "tiny-test"
            assert record["suite"] == "klut"
            assert record["mdr"]["wirelength"]
            assert record["mdr"]["fmax"]
            for row in record["dcs"].values():
                assert row["speedup"] > 0
                assert len(row["frequency_ratios"]) == len(
                    record["modes"]
                )

    def test_jsonl_file_round_trip(self, tiny_outcome, tmp_path):
        _cache, result = tiny_outcome
        path = tmp_path / "records.jsonl"
        write_jsonl(result.records, str(path))
        parsed = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert parsed == json.loads(
            json.dumps(result.records)
        )

    def test_summary_shape(self, tiny_outcome):
        _cache, result = tiny_outcome
        summary = result.summary
        assert summary["schema_version"] == 1
        assert summary["campaign"] == "tiny-test"
        assert summary["n_runs"] == 1
        assert summary["seconds"] > 0
        assert "campaign" in summary["stages"]
        assert "klut/wirelength" in summary["qor"]
        row = summary["qor"]["klut/wirelength"]
        assert row["mdr_wirelength"] > 0
        assert row["mean_mdr_fmax"] > 0

    def test_run_grid_order_is_deterministic(self):
        runs_a = campaign_runs(PRESETS["ci-smoke"])
        runs_b = campaign_runs(PRESETS["ci-smoke"])
        assert runs_a == runs_b
        labels = [
            (suite, pair, variant.label, seed)
            for suite, pair, _specs, variant, seed in runs_a
        ]
        assert len(set(labels)) == len(labels)

    def test_presets_are_well_formed(self):
        suites = set(registered_suites())
        for name, preset in PRESETS.items():
            assert preset.name == name
            assert set(preset.suites) <= suites
            assert preset.variants
            assert campaign_runs(preset), name

    def test_ci_smoke_covers_all_generator_families(self):
        assert set(PRESETS["ci-smoke"].suites) == {
            "datapath", "fsm", "xbar", "klut"
        }
        labels = {v.label for v in PRESETS["ci-smoke"].variants}
        assert len(labels) == 2  # wirelength- and timing-driven


class TestSizingAxis:
    def test_sizing_search_variant_runs_and_is_recorded(self):
        """The --sizing search axis: the same pair implemented with
        the estimator and with the paper's minimum-width search must
        both complete, carry their policy in the record options, and
        stay internally consistent."""
        spec = CampaignSpec(
            name="sizing-test",
            description="sizing axis on one tiny xbar pair",
            suites=("xbar",),
            scale="tiny",
            pairs_per_suite=1,
            inner_num=0.05,
            variants=(
                CampaignVariant("estimate"),
                CampaignVariant("search", sizing="search"),
            ),
        )
        result = run_campaign(spec, workers=1)
        assert len(result.records) == 2
        by_variant = {r["variant"]: r for r in result.records}
        assert by_variant["estimate"]["options"]["sizing"] == (
            "estimate"
        )
        assert by_variant["search"]["options"]["sizing"] == "search"
        for record in result.records:
            assert record["arch"]["channel_width"] >= 1
            assert record["mdr"]["total_bits"] > 0

    def test_sizing_search_preset_exists(self):
        preset = PRESETS["sizing-search"]
        sizings = {v.sizing for v in preset.variants}
        assert sizings == {"estimate", "search"}


TWO_RUN = CampaignSpec(
    name="resume-test",
    description="two tiny klut pairs, wirelength-driven",
    suites=("klut",),
    scale="tiny",
    pairs_per_suite=2,
    inner_num=0.05,
    variants=(CampaignVariant("wirelength"),),
)


class TestCheckpointResume:
    """The tentpole contract: the JSONL is the checkpoint.

    A campaign killed after k of n runs (including a torn final
    line) and resumed with ``resume=True`` must produce a JSONL
    byte-identical to an uninterrupted run, executing only the
    missing runs.
    """

    @pytest.fixture(scope="class")
    def uninterrupted(self, tmp_path_factory):
        """One full checkpointed run; its JSONL text is the byte
        reference, its cache dir is shared so reruns are fast."""
        root = tmp_path_factory.mktemp("resume")
        checkpoint = root / "full.jsonl"
        result = run_campaign(
            TWO_RUN, workers=1,
            cache=StageCache(root / "cache"),
            checkpoint=str(checkpoint),
        )
        return root, checkpoint.read_text(), result

    def test_checkpoint_equals_records_and_carries_keys(
        self, uninterrupted
    ):
        _root, text, result = uninterrupted
        assert text == records_jsonl(result.records)
        runs = campaign_runs(TWO_RUN)
        assert [r["key"] for r in result.records] == [
            record_key(TWO_RUN, suite, pair, specs, variant, seed)
            for suite, pair, specs, variant, seed in runs
        ]

    @pytest.mark.parametrize("kept", [0, 1])
    def test_resume_after_torn_truncation_is_byte_identical(
        self, uninterrupted, tmp_path, kept
    ):
        """Kill simulation: keep `kept` complete records plus half of
        the next line, resume, compare bytes."""
        root, text, _result = uninterrupted
        lines = text.splitlines(keepends=True)
        torn = "".join(lines[:kept]) + lines[kept][: len(lines[kept]) // 2]
        checkpoint = tmp_path / "torn.jsonl"
        checkpoint.write_text(torn)
        resumed = run_campaign(
            TWO_RUN, workers=1,
            cache=StageCache(root / "cache"),
            checkpoint=str(checkpoint), resume=True,
        )
        assert checkpoint.read_text() == text
        assert records_jsonl(resumed.records) == text
        assert resumed.summary["cache"]["resumed_records"] == kept

    def test_resume_skips_nothing_on_key_mismatch(
        self, uninterrupted, tmp_path
    ):
        """A record whose key no longer matches (stale code, edited
        options, hand-tampering) is recomputed, not trusted."""
        root, text, _result = uninterrupted
        lines = text.splitlines()
        tampered = json.loads(lines[0])
        tampered["key"] = "0" * 64
        checkpoint = tmp_path / "stale.jsonl"
        checkpoint.write_text(
            json.dumps(tampered, sort_keys=True,
                       separators=(",", ":"))
            + "\n" + lines[1] + "\n"
        )
        resumed = run_campaign(
            TWO_RUN, workers=1,
            cache=StageCache(root / "cache"),
            checkpoint=str(checkpoint), resume=True,
        )
        assert resumed.summary["cache"]["resumed_records"] == 1
        assert checkpoint.read_text() == text

    def test_without_resume_flag_checkpoint_is_overwritten(
        self, uninterrupted, tmp_path
    ):
        root, text, _result = uninterrupted
        checkpoint = tmp_path / "old.jsonl"
        checkpoint.write_text(text)
        fresh = run_campaign(
            TWO_RUN, workers=1,
            cache=StageCache(root / "cache"),
            checkpoint=str(checkpoint), resume=False,
        )
        assert fresh.summary["cache"]["resumed_records"] == 0
        assert checkpoint.read_text() == text  # recomputed, same QoR

    def test_load_checkpoint_filters_garbage(
        self, uninterrupted, tmp_path
    ):
        _root, text, result = uninterrupted
        keys = [r["key"] for r in result.records]
        wrong_schema = dict(result.records[0])
        wrong_schema["schema"] = RECORD_SCHEMA_VERSION - 1
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps(["a", "list"]) + "\n"
            + json.dumps(wrong_schema) + "\n"
            + text.splitlines(keepends=True)[1]
            + '{"torn": tru'
        )
        harvested = load_checkpoint(str(path), keys)
        assert set(harvested) == {keys[1]}
        assert load_checkpoint(str(tmp_path / "missing"), keys) == {}

    def test_resumed_jsonl_reorders_to_grid_order(
        self, uninterrupted, tmp_path
    ):
        """Records harvested out of grid order (hand-merged files)
        still come out in grid order, byte-identical."""
        root, text, _result = uninterrupted
        lines = text.splitlines(keepends=True)
        checkpoint = tmp_path / "reversed.jsonl"
        checkpoint.write_text("".join(reversed(lines)))
        resumed = run_campaign(
            TWO_RUN, workers=1,
            cache=StageCache(root / "cache"),
            checkpoint=str(checkpoint), resume=True,
        )
        assert resumed.summary["cache"]["resumed_records"] == 2
        assert checkpoint.read_text() == text


class TestQorGate:
    def test_gate_passes_against_own_baseline(self, tiny_outcome):
        _cache, result = tiny_outcome
        baseline = baseline_from_summary(result.summary)
        assert compare_to_baseline(result.summary, baseline) == []

    def test_gate_fails_on_injected_wirelength_regression(
        self, tiny_outcome
    ):
        """The ISSUE's acceptance demo: +10% wirelength must trip the
        gate (tolerance is 5%)."""
        _cache, result = tiny_outcome
        baseline = baseline_from_summary(result.summary)
        worse = copy.deepcopy(result.summary)
        group = worse["qor"]["klut/wirelength"]
        group["mdr_wirelength"] = int(
            group["mdr_wirelength"] * 1.10
        ) + 1
        violations = compare_to_baseline(worse, baseline)
        assert violations
        assert any("mdr_wirelength" in v for v in violations)

    def test_gate_fails_on_fmax_and_speedup_drops(self, tiny_outcome):
        _cache, result = tiny_outcome
        baseline = baseline_from_summary(result.summary)
        worse = copy.deepcopy(result.summary)
        group = worse["qor"]["klut/wirelength"]
        group["mean_dcs_fmax"] *= 0.9
        group["mean_speedup"] *= 0.85
        violations = compare_to_baseline(worse, baseline)
        assert any("mean_dcs_fmax" in v for v in violations)
        assert any("mean_speedup" in v for v in violations)

    def test_gate_ignores_improvements_and_small_noise(
        self, tiny_outcome
    ):
        _cache, result = tiny_outcome
        baseline = baseline_from_summary(result.summary)
        better = copy.deepcopy(result.summary)
        group = better["qor"]["klut/wirelength"]
        group["mdr_wirelength"] = int(group["mdr_wirelength"] * 0.8)
        group["mean_dcs_fmax"] *= 1.2
        # +2% wirelength is inside the 5% tolerance.
        group["dcs_wirelength"] = int(
            group["dcs_wirelength"] * 1.02
        )
        assert compare_to_baseline(better, baseline) == []

    def test_gate_fails_on_missing_group_and_runtime(
        self, tiny_outcome
    ):
        _cache, result = tiny_outcome
        baseline = baseline_from_summary(result.summary)
        stripped = copy.deepcopy(result.summary)
        stripped["qor"] = {}
        assert any(
            "missing" in v
            for v in compare_to_baseline(stripped, baseline)
        )
        # Pin a realistic cold baseline wall-clock: below 1s the
        # runtime bound is deliberately skipped (a warm-rebaseline
        # guard), which the tiny one-pair run here can dip under.
        baseline["seconds"] = 10.0
        slow = copy.deepcopy(result.summary)
        slow["seconds"] = (
            baseline["seconds"]
            * DEFAULT_TOLERANCES["runtime_factor"] * 2
        )
        assert any(
            "runtime" in v
            for v in compare_to_baseline(slow, baseline)
        )
        # ... and a sub-second (warm-rebaselined) reference never
        # trips the runtime bound.
        baseline["seconds"] = 0.05
        slow["seconds"] = 100.0
        assert compare_to_baseline(slow, baseline) == []

    def test_gate_rejects_mismatched_campaign(self, tiny_outcome):
        _cache, result = tiny_outcome
        baseline = baseline_from_summary(result.summary)
        baseline["campaign"] = "other"
        violations = compare_to_baseline(result.summary, baseline)
        assert violations and "campaign" in violations[0]

    def test_baseline_file_round_trip(self, tiny_outcome, tmp_path):
        _cache, result = tiny_outcome
        path = tmp_path / "baseline.json"
        write_baseline(result.summary, str(path))
        loaded = load_baseline(str(path))
        assert loaded == baseline_from_summary(result.summary)
        assert compare_to_baseline(result.summary, loaded) == []

    def test_committed_baseline_matches_ci_smoke_groups(self):
        """The checked-in baseline must gate exactly the groups the
        ci-smoke preset produces (a drifted preset without a
        re-baseline would silently gate nothing)."""
        baseline = load_baseline("BENCH_qor_baseline.json")
        assert baseline["campaign"] == "ci-smoke"
        spec = PRESETS["ci-smoke"]
        expected = {
            f"{suite}/{variant.label}"
            for suite in spec.suites
            for variant in spec.variants
        }
        assert set(baseline["qor"]) == expected


class TestQorMetrics:
    def test_aggregates_over_records(self):
        def record(suite, variant, wl, fmax):
            return {
                "suite": suite, "variant": variant,
                "mdr": {"wirelength": [wl, wl], "fmax": [fmax]},
                "dcs": {
                    "wire_length": {
                        "wirelength": [wl], "fmax": [fmax],
                        "speedup": 4.0, "frequency_ratios": [1.0],
                    }
                },
            }

        metrics = qor_metrics([
            record("a", "wl", 100, 0.2),
            record("a", "wl", 200, 0.4),
            record("b", "wl", 50, 0.1),
        ])
        assert set(metrics) == {"a/wl", "b/wl"}
        assert metrics["a/wl"]["mdr_wirelength"] == 600
        assert metrics["a/wl"]["mean_mdr_fmax"] == pytest.approx(0.3)
        assert metrics["a/wl"]["n_runs"] == 2


class TestCampaignCli:
    def test_list_and_bad_preset(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--list"]) == 0
        out = capsys.readouterr().out
        assert "ci-smoke" in out and "klut" in out
        assert main(["campaign", "--preset", "warp"]) == 2

    def test_requires_preset_or_suites(self, capsys):
        from repro.cli import main

        assert main(["campaign"]) == 2
        assert "--suites" in capsys.readouterr().err

    def test_adhoc_campaign_with_gate_round_trip(
        self, tmp_path, capsys
    ):
        """Write a baseline, then gate a warm rerun against it."""
        from repro.cli import main

        args = [
            "campaign", "--suites", "klut", "--scale", "tiny",
            "--pairs-per-suite", "1", "--effort", "0.05",
            "--name", "clitest",
            "--cache-dir", str(tmp_path / "cache"),
            "--jsonl", str(tmp_path / "records.jsonl"),
            "--summary", str(tmp_path / "summary.json"),
        ]
        baseline = str(tmp_path / "baseline.json")
        assert main(args + ["--write-baseline", baseline]) == 0
        assert main(args + ["--gate", baseline]) == 0
        out = capsys.readouterr().out
        assert "qor-gate: OK" in out
        # Corrupt the baseline into a stricter world: gate must fail.
        with open(baseline) as handle:
            data = json.load(handle)
        for group in data["qor"].values():
            group["mdr_wirelength"] = int(
                group["mdr_wirelength"] * 0.5
            )
        with open(baseline, "w") as handle:
            json.dump(data, handle)
        assert main(args + ["--gate", baseline]) == 1
        assert "qor-gate: FAIL" in capsys.readouterr().err

    def test_cli_resume_round_trip(self, tmp_path, capsys):
        """`repro campaign --resume` finishes a truncated JSONL to
        the exact bytes of the uninterrupted file."""
        from repro.cli import main

        jsonl = tmp_path / "records.jsonl"
        args = [
            "campaign", "--suites", "klut", "--scale", "tiny",
            "--pairs-per-suite", "2", "--effort", "0.05",
            "--name", "cliresume",
            "--cache-dir", str(tmp_path / "cache"),
            "--jsonl", str(jsonl),
            "--summary", str(tmp_path / "summary.json"),
        ]
        assert main(args) == 0
        text = jsonl.read_text()
        assert len(text.splitlines()) == 2
        lines = text.splitlines(keepends=True)
        jsonl.write_text(lines[0] + lines[1][:10])
        assert main(args + ["--resume"]) == 0
        assert jsonl.read_text() == text
        assert "1 resumed records" in capsys.readouterr().out

    def test_timing_args_warn_without_timing_driven(
        self, tmp_path, capsys
    ):
        """_warn_unused_timing_args covers the campaign subcommand."""
        from repro.cli import main

        assert main([
            "campaign", "--suites", "klut", "--scale", "tiny",
            "--pairs-per-suite", "1", "--effort", "0.05",
            "--criticality-exponent", "2.0",
            "--no-cache",
            "--jsonl", str(tmp_path / "r.jsonl"),
            "--summary", str(tmp_path / "s.json"),
        ]) == 0
        assert "no effect without --timing-driven" in (
            capsys.readouterr().err
        )

    def test_preset_ignores_timing_args_with_warning(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        # --pairs-per-suite 0 empties the run grid, so the preset
        # branch (and its warning) is exercised without flow runs.
        assert main([
            "campaign", "--preset", "ci-smoke", "--timing-driven",
            "--pairs-per-suite", "0", "--no-cache",
            "--jsonl", str(tmp_path / "r.jsonl"),
            "--summary", str(tmp_path / "s.json"),
        ]) == 0
        err = capsys.readouterr().err
        assert "ignored with --preset" in err
