"""Integration tests with more than two modes.

The paper formulates the flow for N modes ("If there are for example 3
modes, we will need 2 bits m1m0") but evaluates pairs only.  The
machinery here is mode-count generic; these tests exercise a 3-mode
multi-mode circuit end to end.
"""

import pytest

from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy, merge_by_index
from repro.core.modes import ModeEncoding
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.simulate import equivalent
from repro.netlist.truthtable import TruthTable


def three_modes():
    """Three small mode circuits with shared IO names."""

    def base(name):
        c = LutCircuit(name, 4)
        c.add_input("i0")
        c.add_input("i1")
        return c

    m0 = base("and_mode")
    m0.add_block("t", ("i0", "i1"),
                 TruthTable.var(0, 2) & TruthTable.var(1, 2))
    m0.add_block("o", ("t",), TruthTable.var(0, 1))
    m0.add_output("o")

    m1 = base("xor_mode")
    m1.add_block("u", ("i0", "i1"),
                 TruthTable.var(0, 2) ^ TruthTable.var(1, 2))
    m1.add_block("o", ("u", "i0"),
                 TruthTable.var(0, 2) | TruthTable.var(1, 2))
    m1.add_output("o")

    m2 = base("seq_mode")
    m2.add_block(
        "s", ("s", "i0"),
        TruthTable.var(0, 2) ^ TruthTable.var(1, 2),
        registered=True,
    )
    m2.add_block("o", ("s", "i1"),
                 TruthTable.var(0, 2) & TruthTable.var(1, 2))
    m2.add_output("o")
    return [m0, m1, m2]


class TestThreeModeMerge:
    def test_mode_encoding_width(self):
        assert ModeEncoding(3).n_bits == 2

    def test_merge_by_index_specializes_all(self):
        modes = three_modes()
        tunable = merge_by_index("tri", modes)
        assert tunable.n_modes == 3
        for i, circuit in enumerate(modes):
            assert equivalent(tunable.specialize(i), circuit)

    def test_activation_expressions_use_two_bits(self):
        modes = three_modes()
        tunable = merge_by_index("tri", modes)
        expressions = {
            str(c.activation) for c in tunable.connections
        }
        # The shared input pads feed all three modes -> "1";
        # mode-specific connections must mention a mode bit.
        assert "1" in expressions
        assert any("m1" in e or "m0" in e for e in expressions)

    def test_bit_modes_cover_three_modes(self):
        modes = three_modes()
        tunable = merge_by_index("tri", modes)
        tlut = tunable.tluts["tl0"]
        assert set(tlut.members) == {0, 1, 2}


class TestThreeModeFlow:
    @pytest.fixture(scope="class")
    def result(self):
        return implement_multi_mode(
            "tri",
            three_modes(),
            FlowOptions(inner_num=0.3, channel_width=6),
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )

    def test_flow_completes(self, result):
        assert result.mdr.cost.total > 0
        assert MergeStrategy.WIRE_LENGTH in result.dcs

    def test_three_implementations(self, result):
        assert len(result.mdr.implementations) == 3
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        assert len(dcs.per_mode_wirelength()) == 3

    def test_specializations_equivalent(self, result):
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        for i, circuit in enumerate(three_modes()):
            assert equivalent(dcs.tunable.specialize(i), circuit)

    def test_speedup_above_one(self, result):
        assert result.speedup(MergeStrategy.WIRE_LENGTH) > 1.0

    def test_parameterized_bits_vary_across_three_modes(self, result):
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        bit_sets = [dcs.routing.bits_on(m) for m in range(3)]
        # At least one mode pair must differ (the circuits differ).
        assert any(
            bit_sets[a] != bit_sets[b]
            for a in range(3)
            for b in range(a + 1, 3)
        )

    def test_manager_replay_three_modes(self, result):
        from repro.core.manager import (
            ParameterizedConfiguration,
            ReconfigurationManager,
        )

        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        config = ParameterizedConfiguration.from_routing(
            dcs.routing, result.mdr.cost.routing_bits
        )
        manager = ReconfigurationManager(config)
        manager.load_initial(0)
        for mode in (1, 2, 0, 2, 1):
            manager.switch(mode)
            manager.verify()
