"""Tests for the word-level synthesis helpers."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.logic import LogicNetwork
from repro.netlist.simulate import simulate_logic
from repro.synth.synthesis import (
    WordBuilder,
    _csd_digits,
    int_to_inputs,
    word_to_int,
)


def eval_comb(network, inputs):
    return simulate_logic(network, [inputs])[0]


def out_word(values, base, width):
    return word_to_int(
        [values[f"{base}[{i}]"] for i in range(width)]
    )


class TestCsd:
    @given(st.integers(1, 10**6))
    def test_csd_reconstructs_value(self, value):
        total = sum(sign << shift for shift, sign in _csd_digits(value))
        assert total == value

    @given(st.integers(1, 10**6))
    def test_csd_no_adjacent_digits(self, value):
        shifts = sorted(s for s, _ in _csd_digits(value))
        assert all(b - a >= 2 for a, b in zip(shifts, shifts[1:]))


class TestArithmetic:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (15, 1), (9, 9)])
    def test_adder(self, a, b):
        n = LogicNetwork()
        wb = WordBuilder(n)
        wa = wb.input_word("a", 4)
        wbits = wb.input_word("b", 4)
        s = wb.adder(wa, wbits, width=5)
        wb.output_word("s", s)
        inputs = {**int_to_inputs("a", 4, a), **int_to_inputs("b", 4, b)}
        values = eval_comb(n, inputs)
        assert out_word(values, "s", 5) == a + b

    @pytest.mark.parametrize("a,b", [(5, 3), (3, 5), (0, 1), (15, 15)])
    def test_subtract_modular(self, a, b):
        n = LogicNetwork()
        wb = WordBuilder(n)
        wa = wb.input_word("a", 4)
        wbits = wb.input_word("b", 4)
        d = wb.subtract(wa, wbits, width=4)
        wb.output_word("d", d)
        inputs = {**int_to_inputs("a", 4, a), **int_to_inputs("b", 4, b)}
        values = eval_comb(n, inputs)
        assert out_word(values, "d", 4) == (a - b) % 16

    @given(st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_negate(self, a):
        n = LogicNetwork()
        wb = WordBuilder(n)
        wa = wb.input_word("a", 8)
        neg = wb.negate(wa)
        wb.output_word("n", neg)
        values = eval_comb(n, int_to_inputs("a", 8, a))
        assert out_word(values, "n", 8) == (-a) % 256

    @pytest.mark.parametrize("coeff", [0, 1, -1, 3, 5, -7, 11, 100])
    def test_mul_const(self, coeff):
        width = 12
        n = LogicNetwork()
        wb = WordBuilder(n)
        wa = wb.input_word("a", 4)
        p = wb.mul_const(wa, coeff, width)
        wb.output_word("p", p)
        for a in (0, 1, 7, 15):
            values = eval_comb(n, int_to_inputs("a", 4, a))
            assert out_word(values, "p", width) == (a * coeff) % (1 << width)

    def test_equals_const(self):
        n = LogicNetwork()
        wb = WordBuilder(n)
        wa = wb.input_word("a", 4)
        eq = wb.equals_const(wa, 9)
        n.add_buf("hit", eq)
        n.add_output("hit")
        assert eval_comb(n, int_to_inputs("a", 4, 9))["hit"]
        assert not eval_comb(n, int_to_inputs("a", 4, 8))["hit"]

    def test_mux_word(self):
        n = LogicNetwork()
        wb = WordBuilder(n)
        sel = n.add_input("sel")
        wa = wb.input_word("a", 3)
        wbits = wb.input_word("b", 3)
        m = wb.mux_word(sel, wa, wbits)
        wb.output_word("m", m)
        inputs = {
            **int_to_inputs("a", 3, 5),
            **int_to_inputs("b", 3, 2),
        }
        assert out_word(
            eval_comb(n, {**inputs, "sel": False}), "m", 3
        ) == 5
        assert out_word(
            eval_comb(n, {**inputs, "sel": True}), "m", 3
        ) == 2

    def test_mux_word_width_mismatch(self):
        n = LogicNetwork()
        wb = WordBuilder(n)
        sel = n.add_input("sel")
        with pytest.raises(ValueError):
            wb.mux_word(sel, wb.const_word(0, 2), wb.const_word(0, 3))


class TestStructure:
    def test_const_bit_cached(self):
        n = LogicNetwork()
        wb = WordBuilder(n)
        assert wb.const_bit(True) == wb.const_bit(True)
        assert wb.const_bit(True) != wb.const_bit(False)

    def test_register_word_names(self):
        n = LogicNetwork()
        wb = WordBuilder(n)
        wa = wb.input_word("a", 2)
        regs = wb.register_word(wa, base="r")
        assert regs == ["r[0]", "r[1]"]
        assert set(regs) <= set(n.latches)

    def test_shift_left_const(self):
        n = LogicNetwork()
        wb = WordBuilder(n)
        wa = wb.input_word("a", 3)
        s = wb.shift_left_const(wa, 2, width=5)
        wb.output_word("s", s)
        values = eval_comb(n, int_to_inputs("a", 3, 5))
        assert out_word(values, "s", 5) == 20
