"""Tests for the combined placement and TPlace."""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.core.combined_placement import (
    CombinedPlacementProblem,
    combined_place,
    merge_with_combined_placement,
    tplace,
)
from repro.core.merge import MergeStrategy, merge_by_index
from repro.netlist.simulate import equivalent
from repro.place.annealing import AnnealingSchedule
from repro.utils.rng import make_rng

from tests.test_tunable import two_mode_circuits

ARCH = FpgaArchitecture(nx=4, ny=4, channel_width=6)
FAST = AnnealingSchedule(inner_num=0.5)


class TestProblem:
    def _problem(self, strategy):
        m0, m1 = two_mode_circuits()
        rng = make_rng(0)
        return CombinedPlacementProblem(
            ARCH, [m0, m1], rng, strategy
        )

    def test_initial_placement_legal(self):
        p = self._problem(MergeStrategy.WIRE_LENGTH)
        # Per mode, no two blocks share a site.
        for mode in range(2):
            sites = [
                p.site_of[k]
                for k in p.block_keys
                if k[1] == mode
            ]
            assert len(sites) == len(set(sites))
        pad_sites = [p.site_of[k] for k in p.pad_keys]
        assert len(pad_sites) == len(set(pad_sites))

    def test_by_index_rejected(self):
        with pytest.raises(ValueError):
            self._problem(MergeStrategy.BY_INDEX)

    def test_wirelength_delta_matches_recompute(self):
        p = self._problem(MergeStrategy.WIRE_LENGTH)
        rng = make_rng(1)
        cost = p.initial_cost()
        for _ in range(200):
            move = p.propose(rlim=8, rng=rng)
            if move is None:
                continue
            delta = p.delta_cost(move)
            p.commit(move)
            cost += delta
        recomputed = sum(
            p._compute_net_cost(i) for i in range(len(p.mode_nets))
        )
        assert cost == pytest.approx(recomputed, rel=1e-9)

    def test_edge_matching_delta_matches_recompute(self):
        p = self._problem(MergeStrategy.EDGE_MATCHING)
        rng = make_rng(2)
        cost = p.initial_cost()
        for _ in range(200):
            move = p.propose(rlim=8, rng=rng)
            if move is None:
                continue
            delta = p.delta_cost(move)
            p.commit(move)
            cost += delta
        # From scratch: distinct site-level connection endpoints.
        distinct = {
            p._conn_site_key(i) for i in range(len(p.mode_conns))
        }
        assert cost == len(distinct)

    def test_mode_swap_moves_one_mode_only(self):
        p = self._problem(MergeStrategy.WIRE_LENGTH)
        rng = make_rng(3)
        move = None
        while move is None or move[0] != "blk":
            move = p.propose(rlim=8, rng=rng)
        _kind, key, src_site, dst_site = move
        _tag, mode, _name = key
        other_mode = 1 - mode
        before = {
            k: p.site_of[k] for k in p.block_keys if k[1] == other_mode
        }
        p.commit(move)
        after = {
            k: p.site_of[k] for k in p.block_keys if k[1] == other_mode
        }
        assert before == after  # paper: other modes keep position


class TestCombinedPlace:
    def test_wirelength_optimisation_improves(self):
        m0, m1 = two_mode_circuits()
        result = combined_place(
            [m0, m1], ARCH, MergeStrategy.WIRE_LENGTH,
            seed=1, schedule=FAST,
        )
        assert result.stats.final_cost <= result.stats.initial_cost
        assert result.wirelength == pytest.approx(
            result.cost, rel=1e-9
        )

    def test_edge_matching_merges_connections(self):
        m0, m1 = two_mode_circuits()
        result = combined_place(
            [m0, m1], ARCH, MergeStrategy.EDGE_MATCHING,
            seed=1, schedule=FAST,
        )
        total_conns = 0
        for c in (m0, m1):
            total_conns += len(c.connections())
        # Merging must save at least one connection on these twins.
        assert result.n_tunable_connections < total_conns

    def test_merge_with_combined_placement_equivalence(self):
        m0, m1 = two_mode_circuits()
        tunable, placement = merge_with_combined_placement(
            "mm", [m0, m1], ARCH,
            MergeStrategy.WIRE_LENGTH, seed=2, schedule=FAST,
        )
        assert equivalent(tunable.specialize(0), m0)
        assert equivalent(tunable.specialize(1), m1)
        # All tunable cells carry sites.
        assert all(t.site is not None for t in tunable.tluts.values())
        assert all(p.site is not None for p in tunable.pads.values())

    def test_deterministic(self):
        m0, m1 = two_mode_circuits()
        r1 = combined_place([m0, m1], ARCH, seed=9, schedule=FAST)
        r2 = combined_place([m0, m1], ARCH, seed=9, schedule=FAST)
        assert r1.block_sites == r2.block_sites
        assert r1.pad_sites == r2.pad_sites


class TestTPlace:
    def test_refines_merged_circuit(self):
        m0, m1 = two_mode_circuits()
        tunable = merge_by_index("mm", [m0, m1])
        stats = tplace(
            tunable, ARCH, seed=0, schedule=FAST, randomize=True
        )
        assert stats.final_cost <= stats.initial_cost
        assert all(t.site is not None for t in tunable.tluts.values())
        # Still correct after placement.
        assert equivalent(tunable.specialize(0), m0)
        assert equivalent(tunable.specialize(1), m1)

    def test_keeps_existing_sites_when_not_randomized(self):
        m0, m1 = two_mode_circuits()
        tunable, _ = merge_with_combined_placement(
            "mm", [m0, m1], ARCH, seed=3, schedule=FAST,
        )
        sites_before = {
            n: t.site for n, t in tunable.tluts.items()
        }
        tplace(tunable, ARCH, seed=3, schedule=FAST)
        # Sites may move, but they must remain legal CLB sites.
        for t in tunable.tluts.values():
            assert t.site.kind == "clb"
        assert set(sites_before) == set(tunable.tluts)
