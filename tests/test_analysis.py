"""Tests for the `repro lint` static-analysis package.

Per-rule fixture snippets (true positive / true negative /
allowlisted), baseline round-trip, the synthetic uncovered-knob
coverage fixture, and the meta-test asserting the shipped ``src/``
tree is clean under the committed baseline.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import load_baseline, write_baseline
from repro.analysis.base import (
    ALL_RULES,
    Finding,
    filter_baselined,
    parse_pragmas,
)
from repro.analysis.runner import lint_tree

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


def _lint_snippet(tmp_path, code, rel="repro/mod.py", **kwargs):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code, encoding="utf-8")
    return lint_tree(tmp_path, **kwargs)


def _rules_of(result):
    return sorted({f.rule for f in result.findings})


# ---------------------------------------------------------------------------
# RPR001 wall-clock
# ---------------------------------------------------------------------------


@pytest.mark.smoke
def test_rpr001_flags_wall_clock(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import time\n\n\ndef stamp():\n    return time.time()\n",
    )
    assert _rules_of(res) == ["RPR001"]
    assert res.findings[0].line == 5


def test_rpr001_clean_without_clock(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def stamp(now):\n    return now + 1\n",
    )
    assert res.findings == []


def test_rpr001_allowlisted_module(tmp_path):
    code = "import time\n\n\ndef stamp():\n    return time.time()\n"
    res = _lint_snippet(tmp_path, code, rel="repro/bench/timer.py")
    assert res.findings == []
    res = _lint_snippet(tmp_path, code, rel="repro/serve/clockapi.py")
    assert res.findings == []


def test_rpr001_from_import(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "from time import perf_counter\n\n\ndef f():\n"
        "    return perf_counter()\n",
    )
    assert _rules_of(res) == ["RPR001"]


# ---------------------------------------------------------------------------
# RPR002 unseeded entropy
# ---------------------------------------------------------------------------


def test_rpr002_flags_global_random(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import random\n\n\ndef pick(items):\n"
        "    return random.choice(items)\n",
    )
    assert _rules_of(res) == ["RPR002"]


def test_rpr002_flags_urandom_and_uuid(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import os\nimport uuid\n\n\ndef token():\n"
        "    return os.urandom(8) + uuid.uuid4().bytes\n",
    )
    assert [f.rule for f in res.findings] == ["RPR002", "RPR002"]


def test_rpr002_seeded_rng_clean(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import random\n\n\ndef pick(items, seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.choice(items)\n",
    )
    assert res.findings == []


def test_rpr002_numpy_default_rng_clean(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import numpy as np\n\n\ndef draw(seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return rng.random()\n",
    )
    assert res.findings == []


def test_rpr002_numpy_global_flagged(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import numpy as np\n\n\ndef draw():\n"
        "    return np.random.random()\n",
    )
    assert _rules_of(res) == ["RPR002"]


# ---------------------------------------------------------------------------
# RPR003 set iteration feeding ordered code
# ---------------------------------------------------------------------------


def test_rpr003_flags_list_over_set(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def order(a, b):\n    merged = set(a) | set(b)\n"
        "    return list(merged)\n",
    )
    assert _rules_of(res) == ["RPR003"]


def test_rpr003_flags_loop_append(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def collect(items):\n    out = []\n"
        "    for x in {i.name for i in items}:\n"
        "        out.append(x)\n"
        "    return out\n",
    )
    assert _rules_of(res) == ["RPR003"]


def test_rpr003_sorted_is_clean(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def order(a, b):\n    merged = set(a) | set(b)\n"
        "    return sorted(merged)\n",
    )
    assert res.findings == []


def test_rpr003_pragma_allows(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def order(a, b):\n    merged = set(a) | set(b)\n"
        "    # repro: allow[RPR003] consumer re-sorts\n"
        "    return list(merged)\n",
    )
    assert res.findings == []
    assert res.suppressed_pragma == 1


# ---------------------------------------------------------------------------
# RPR004 filesystem enumeration
# ---------------------------------------------------------------------------


def test_rpr004_flags_unsorted_listdir(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import os\n\n\ndef names(root):\n    out = []\n"
        "    for name in os.listdir(root):\n"
        "        out.append(name)\n"
        "    return out\n",
    )
    assert _rules_of(res) == ["RPR004"]


def test_rpr004_flags_rglob_append(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def entries(root):\n    out = []\n"
        "    for path in root.rglob('*.pkl'):\n"
        "        out.append(path)\n"
        "    return out\n",
    )
    assert _rules_of(res) == ["RPR004"]


def test_rpr004_sorted_enumeration_clean(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import os\n\n\ndef names(root):\n    out = []\n"
        "    for name in sorted(os.listdir(root)):\n"
        "        out.append(name)\n"
        "    return out\n",
    )
    assert res.findings == []


def test_rpr004_counter_loop_clean(tmp_path):
    # Counting entries is order-free; must not fire.
    res = _lint_snippet(
        tmp_path,
        "def count(root):\n    n = 0\n"
        "    for _ in root.rglob('*.pkl'):\n"
        "        n += 1\n"
        "    return n\n",
    )
    assert res.findings == []


# ---------------------------------------------------------------------------
# RPR005 identity ordering keys
# ---------------------------------------------------------------------------


def test_rpr005_flags_id_key(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def order(items):\n    return sorted(items, key=id)\n",
    )
    assert _rules_of(res) == ["RPR005"]


def test_rpr005_flags_hash_lambda(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def order(items):\n"
        "    return sorted(items, key=lambda x: hash(x))\n",
    )
    assert _rules_of(res) == ["RPR005"]


def test_rpr005_content_key_clean(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def order(items):\n"
        "    return sorted(items, key=lambda x: x.name)\n",
    )
    assert res.findings == []


# ---------------------------------------------------------------------------
# RPR006 float sum over sets
# ---------------------------------------------------------------------------


def test_rpr006_flags_sum_over_set(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def dot(ha, hb):\n    keys = set(ha) | set(hb)\n"
        "    return sum(ha.get(k, 0.0) * hb.get(k, 0.0)"
        " for k in keys)\n",
    )
    assert _rules_of(res) == ["RPR006"]


def test_rpr006_sorted_sum_clean(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "def dot(ha, hb):\n    keys = sorted(set(ha) | set(hb))\n"
        "    return sum(ha.get(k, 0.0) * hb.get(k, 0.0)"
        " for k in keys)\n",
    )
    assert res.findings == []


def test_rpr006_dict_values_clean(tmp_path):
    # dicts iterate in insertion order: deterministic.
    res = _lint_snippet(
        tmp_path,
        "def norm(h):\n    return sum(v * v for v in h.values())\n",
    )
    assert res.findings == []


# ---------------------------------------------------------------------------
# RPR101 / RPR102 fingerprint coverage
# ---------------------------------------------------------------------------

_FIXTURE_FLOW = '''\
from dataclasses import dataclass
from typing import Dict


@dataclass
class FlowOptions:
    seed: int = 0
    effort: float = 1.0
    shiny_new_knob: bool = False

    def schedule(self):
        return self.effort * 2


OPTION_STAGE_COVERAGE: Dict[str, frozenset] = {{
    "seed": frozenset({{"place", "campaign"}}),
    "effort": frozenset({{"place", "campaign"}}),
    "shiny_new_knob": frozenset({shiny_cover}),
}}


def place_stage_inputs(circuit, options):
    return (circuit, options.seed, options.schedule())


def run_place(cache, circuit, options):
    def compute():
        return do_place(
            circuit,
            seed=options.seed,
            wild={shiny_read},
        )

    return cache.memoize(
        "place", place_stage_inputs(circuit, options), compute
    )


def do_place(circuit, seed, wild):
    return (circuit, seed, wild)
'''


def _coverage_fixture(tmp_path, shiny_cover, shiny_read):
    code = _FIXTURE_FLOW.format(
        shiny_cover=shiny_cover, shiny_read=shiny_read
    )
    return _lint_snippet(tmp_path, code, rel="repro/core/flow.py")


def test_rpr101_flags_uncovered_knob_read(tmp_path):
    # The stage body reads shiny_new_knob but the coverage map says
    # it only perturbs 'campaign': exactly the stale-alias bug.
    res = _coverage_fixture(
        tmp_path,
        shiny_cover='{"campaign"}',
        shiny_read="options.shiny_new_knob",
    )
    assert _rules_of(res) == ["RPR101"]
    (finding,) = res.findings
    assert "shiny_new_knob" in finding.message
    assert "'place'" in finding.message


def test_rpr101_covered_knob_clean(tmp_path):
    res = _coverage_fixture(
        tmp_path,
        shiny_cover='{"place", "campaign"}',
        shiny_read="options.shiny_new_knob",
    )
    assert res.findings == []


def test_rpr101_method_expansion(tmp_path):
    # options.schedule() in the key helper reads 'effort'; coverage
    # declares it, so the expansion alone must not fire.
    res = _coverage_fixture(
        tmp_path,
        shiny_cover='{"campaign"}',
        shiny_read="False",
    )
    assert res.findings == []


def test_rpr101_whole_object_key_exempt(tmp_path):
    code = (
        "from dataclasses import dataclass\n\n\n"
        "@dataclass\n"
        "class FlowOptions:\n"
        "    seed: int = 0\n\n\n"
        "OPTION_STAGE_COVERAGE = {\n"
        '    "seed": frozenset({"multimode"}),\n'
        "}\n\n\n"
        "def run(cache, name, options):\n"
        "    key = (name, options)\n"
        '    return cache.memoize("other", key,'
        " lambda: options.seed)\n"
    )
    res = _lint_snippet(tmp_path, code, rel="repro/core/flow.py")
    assert res.findings == []


def test_rpr102_field_set_mismatch(tmp_path):
    code = (
        "from dataclasses import dataclass\n\n\n"
        "@dataclass\n"
        "class FlowOptions:\n"
        "    seed: int = 0\n"
        "    undeclared: bool = False\n\n\n"
        "OPTION_STAGE_COVERAGE = {\n"
        '    "seed": frozenset({"place"}),\n'
        '    "ghost": frozenset({"place"}),\n'
        "}\n"
    )
    res = _lint_snippet(tmp_path, code, rel="repro/core/flow.py")
    assert _rules_of(res) == ["RPR102"]
    messages = " ".join(f.message for f in res.findings)
    assert "undeclared" in messages and "ghost" in messages


# ---------------------------------------------------------------------------
# RPR201 / RPR202 shared state
# ---------------------------------------------------------------------------

_THREADED_CLASS = """\
import threading


class Router:
    def __init__(self):
        self._cache = {{}}
        self._lock = threading.Lock()

    def fan_out(self, pool, nets):
        return [pool.submit(self._route_one, net) for net in nets]

    def _route_one(self, net):
        {write}
        return net
"""


def test_rpr201_flags_unlocked_instance_write(tmp_path):
    res = _lint_snippet(
        tmp_path,
        _THREADED_CLASS.format(write="self._cache[net] = 1"),
    )
    assert _rules_of(res) == ["RPR201"]


def test_rpr201_locked_write_clean(tmp_path):
    res = _lint_snippet(
        tmp_path,
        _THREADED_CLASS.format(
            write="with self._lock:\n            "
            "self._cache[net] = 1"
        ),
    )
    assert res.findings == []


def test_rpr201_alias_write_flagged(tmp_path):
    res = _lint_snippet(
        tmp_path,
        _THREADED_CLASS.format(
            write="cache = self._cache\n        cache[net] = 1"
        ),
    )
    assert _rules_of(res) == ["RPR201"]


def test_rpr201_pragma_allows(tmp_path):
    res = _lint_snippet(
        tmp_path,
        _THREADED_CLASS.format(
            write="# repro: allow[RPR201] benign under the GIL\n"
            "        self._cache[net] = 1"
        ),
    )
    assert res.findings == []
    assert res.suppressed_pragma == 1


def test_rpr201_unreachable_write_clean(tmp_path):
    # The write happens on the main thread only: no entry point
    # reaches it.
    res = _lint_snippet(
        tmp_path,
        "class Router:\n"
        "    def __init__(self):\n"
        "        self._cache = {}\n\n"
        "    def warm(self, net):\n"
        "        self._cache[net] = 1\n",
    )
    assert res.findings == []


def test_rpr202_flags_global_write(tmp_path):
    res = _lint_snippet(
        tmp_path,
        "import threading\n\n_TOTAL = 0\n\n\n"
        "def worker():\n"
        "    global _TOTAL\n"
        "    _TOTAL += 1\n\n\n"
        "def spawn():\n"
        "    t = threading.Thread(target=worker)\n"
        "    t.start()\n"
        "    return t\n",
    )
    assert _rules_of(res) == ["RPR202"]


def test_rpr201_locked_suffix_convention(tmp_path):
    res = _lint_snippet(
        tmp_path,
        _THREADED_CLASS.format(
            write="self._pop_locked(net)"
        ).replace(
            "    def _route_one(self, net):",
            "    def _pop_locked(self, net):\n"
            "        self._cache[net] = 1\n"
            "        return net\n\n"
            "    def _route_one(self, net):",
        ),
    )
    assert res.findings == []


def test_process_pool_tasks_not_entries(tmp_path):
    # Task(fn=...) without use_threads=True anywhere in the function
    # is the process-pool flow shape: not a thread entry.
    res = _lint_snippet(
        tmp_path,
        "class Flow:\n"
        "    def run(self, nets):\n"
        "        tasks = [Task(fn=self._one, args=(n,))"
        " for n in nets]\n"
        "        return run_tasks(tasks)\n\n"
        "    def _one(self, net):\n"
        "        self._log = net\n"
        "        return net\n",
    )
    assert res.findings == []


# ---------------------------------------------------------------------------
# Pragmas, baseline, runner
# ---------------------------------------------------------------------------


def test_parse_pragmas_forms():
    lines = [
        "x = 1  # repro: allow[RPR001] timing shim",
        "# repro: allow[RPR003, RPR006] set maths",
        "plain line",
        "# repro: allow[*] kitchen sink",
    ]
    pragmas = parse_pragmas(lines)
    assert pragmas[1] == {"RPR001"}
    assert pragmas[2] == {"RPR003", "RPR006"}
    assert 3 not in pragmas
    assert pragmas[4] == {"*"}


def test_baseline_round_trip(tmp_path):
    findings = [
        Finding("RPR001", "repro/a.py", 10, 4, "msg", "t = time()"),
        Finding("RPR001", "repro/a.py", 20, 4, "msg", "t = time()"),
        Finding("RPR003", "repro/b.py", 5, 0, "msg", "list(s)"),
    ]
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    loaded = load_baseline(path)
    assert len(loaded) == 3
    # identical lines are disambiguated by occurrence index
    assert ("RPR001", "repro/a.py", "t = time()", 0) in loaded
    assert ("RPR001", "repro/a.py", "t = time()", 1) in loaded
    assert filter_baselined(findings, loaded) == []
    # a new finding on a fresh line survives the filter
    extra = Finding(
        "RPR001", "repro/a.py", 30, 4, "msg", "u = time()"
    )
    fresh = filter_baselined(findings + [extra], loaded)
    assert fresh == [extra]


def test_baseline_suppresses_only_recorded(tmp_path):
    code = (
        "import time\n\n\ndef f():\n    return time.time()\n"
    )
    path = tmp_path / "repro" / "mod.py"
    path.parent.mkdir(parents=True)
    path.write_text(code, encoding="utf-8")
    first = lint_tree(tmp_path)
    assert len(first.findings) == 1
    bl = tmp_path / "baseline.json"
    write_baseline(bl, first.findings)
    again = lint_tree(tmp_path, baseline_path=bl)
    assert again.findings == []
    assert again.suppressed_baseline == 1
    # introduce a NEW finding: only it is reported
    path.write_text(
        code + "\n\ndef g():\n    return time.perf_counter()\n",
        encoding="utf-8",
    )
    third = lint_tree(tmp_path, baseline_path=bl)
    assert len(third.findings) == 1
    assert "perf_counter" in third.findings[0].snippet


def test_baseline_version_rejected(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(
        json.dumps({"version": 99, "findings": []}),
        encoding="utf-8",
    )
    with pytest.raises(ValueError, match="version"):
        load_baseline(bad)


def test_rules_filter(tmp_path):
    code = (
        "import time\nimport random\n\n\ndef f():\n"
        "    return time.time(), random.random()\n"
    )
    res = _lint_snippet(tmp_path, code, rules={"RPR002"})
    assert _rules_of(res) == ["RPR002"]


def test_syntax_error_reported_not_fatal(tmp_path):
    (tmp_path / "repro").mkdir()
    (tmp_path / "repro" / "bad.py").write_text(
        "def broken(:\n", encoding="utf-8"
    )
    res = lint_tree(tmp_path)
    assert res.errors and "bad.py" in res.errors[0]


def test_rule_registry_has_required_breadth():
    # The acceptance criteria require >= 8 distinct rule ids across
    # the three checker families.
    assert len(ALL_RULES) >= 8
    families = {rule[:4] for rule in ALL_RULES}
    assert {"RPR0", "RPR1", "RPR2"} <= families


# ---------------------------------------------------------------------------
# Meta: the shipped tree is clean; the CLI exit codes hold
# ---------------------------------------------------------------------------


def test_shipped_tree_clean_with_committed_baseline():
    assert BASELINE.exists(), "lint-baseline.json must be committed"
    result = lint_tree(SRC_ROOT, baseline_path=BASELINE)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], (
        "repro lint found new issues in src/:\n" + rendered
    )
    assert result.errors == []


@pytest.mark.smoke
def test_cli_exit_codes(tmp_path):
    env_src = str(SRC_ROOT)

    def run_cli(*argv, cwd):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )

    tree = tmp_path / "src" / "repro"
    tree.mkdir(parents=True)
    (tree / "mod.py").write_text(
        "import time\n\n\ndef f():\n    return time.time()\n",
        encoding="utf-8",
    )
    # finding, no baseline: exit 1
    proc = run_cli("--root", "src", cwd=tmp_path)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "RPR001" in proc.stdout
    # accept into a baseline: exit 0, file written
    proc = run_cli(
        "--root", "src", "--write-baseline", cwd=tmp_path
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert (tmp_path / "lint-baseline.json").exists()
    # with the baseline: exit 0
    proc = run_cli("--root", "src", "--baseline", cwd=tmp_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # unknown rule id: exit 2
    proc = run_cli("--rules", "NOPE1", "--root", "src", cwd=tmp_path)
    assert proc.returncode == 2
