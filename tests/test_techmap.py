"""Tests for decomposition and K-LUT technology mapping."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.blif import parse_blif
from repro.netlist.logic import LogicNetwork
from repro.netlist.simulate import equivalent
from repro.netlist.truthtable import TruthTable
from repro.synth.techmap import TechMapper, decompose, tech_map


def adder_network(width=4):
    """Ripple-carry adder built from wide gates."""
    from repro.synth.synthesis import WordBuilder

    n = LogicNetwork("adder")
    wb = WordBuilder(n)
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    s = wb.adder(a, b, width=width)
    wb.output_word("sum", s)
    return n


def wide_gate_network():
    n = LogicNetwork("wide")
    sigs = [n.add_input(f"i{j}") for j in range(6)]
    n.add_and("wide_and", sigs)
    n.add_xor("wide_xor", sigs)
    n.add_or("y", ("wide_and", "wide_xor"))
    n.add_output("y")
    return n


class TestDecompose:
    def test_fanin_bound(self):
        out = decompose(wide_gate_network())
        assert all(len(node.fanins) <= 2 for node in out.nodes.values())

    def test_preserves_function(self):
        n = wide_gate_network()
        assert equivalent(n, decompose(n))

    def test_named_roots_survive(self):
        n = wide_gate_network()
        out = decompose(n)
        assert "y" in out.nodes
        assert "wide_and" in out.nodes

    def test_general_function_shannon(self):
        n = LogicNetwork()
        sigs = [n.add_input(f"i{j}") for j in range(4)]
        # A random-ish 4-input function that is not AND/OR/XOR.
        table = TruthTable(4, 0x1BE7)
        n.add_node("y", sigs, table)
        n.add_output("y")
        out = decompose(n)
        assert equivalent(n, out)
        assert all(len(node.fanins) <= 2 for node in out.nodes.values())

    def test_sequential_preserved(self):
        n = LogicNetwork()
        n.add_input("en")
        n.add_input("x")
        n.add_latch("q", "d")
        n.add_node(
            "d", ("q", "en", "x"),
            TruthTable.from_function(
                3, lambda q, en, x: (q ^ en) or x
            ),
        )
        n.add_output("q")
        assert equivalent(n, decompose(n))


class TestMapping:
    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_adder_maps_equivalent(self, k):
        n = adder_network()
        c = tech_map(n, k=k)
        assert c.k == k
        assert all(len(b.inputs) <= k for b in c.blocks.values())
        assert equivalent(n, c)

    def test_wide_gates_map_equivalent(self):
        n = wide_gate_network()
        c = tech_map(n, k=4)
        assert equivalent(n, c)

    def test_sequential_maps_equivalent(self):
        n = LogicNetwork("seq")
        n.add_input("en")
        n.add_latch("q0", "d0")
        n.add_latch("q1", "d1")
        n.add_xor("d0", ("q0", "en"))
        n.add_and("d1", ("q1", "q0"))
        n.add_or("y", ("q0", "q1"))
        n.add_output("y")
        c = tech_map(n, k=4)
        assert equivalent(n, c)

    def test_latch_packing_single_fanout(self):
        n = LogicNetwork("pack")
        n.add_input("a")
        n.add_input("b")
        n.add_and("d", ("a", "b"))
        n.add_latch("q", "d")
        n.add_output("q")
        c = tech_map(n, k=4)
        # The AND should be packed into the registered block "q".
        assert c.blocks["q"].registered
        assert c.n_luts() == 1

    def test_latch_with_shared_data_not_packed_twice(self):
        n = LogicNetwork("share")
        n.add_input("a")
        n.add_input("b")
        n.add_and("d", ("a", "b"))
        n.add_latch("q0", "d")
        n.add_latch("q1", "d")
        n.add_or("y", ("q0", "q1"))
        n.add_output("y")
        c = tech_map(n, k=4)
        assert equivalent(n, c)

    def test_output_also_feeding_latch(self):
        n = LogicNetwork("outlatch")
        n.add_input("a")
        n.add_input("b")
        n.add_and("y", ("a", "b"))
        n.add_latch("q", "y")
        n.add_output("y")
        n.add_output("q")
        c = tech_map(n, k=4)
        assert equivalent(n, c)

    def test_constant_node_maps(self):
        n = LogicNetwork("const")
        n.add_input("a")
        n.add_const("one", True)
        n.add_and("y", ("a", "one"))
        n.add_output("y")
        c = tech_map(n, k=4)
        assert equivalent(n, c)

    def test_depth_reduction_vs_naive(self):
        """Mapping a 16-input AND tree into 4-LUTs gives depth 2."""
        n = LogicNetwork("tree")
        sigs = [n.add_input(f"i{j}") for j in range(16)]
        n.add_and("y", sigs)
        n.add_output("y")
        c = tech_map(n, k=4)
        assert c.depth() == 2
        assert equivalent(n, c)

    def test_blif_circuit_end_to_end(self):
        text = """\
.model mix
.inputs a b c d e
.outputs y z
.latch t q re clk 0
.names a b c d e t
11--- 1
--111 1
.names t q z
10 1
01 1
.names a q y
11 1
.end
"""
        n = parse_blif(text)
        c = tech_map(n, k=4)
        assert equivalent(n, c)

    def test_k_too_small_rejected(self):
        with pytest.raises(ValueError):
            TechMapper(k=1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(3, 5))
    def test_random_networks_map_equivalent(self, seed, k):
        """Property: mapping preserves function on random DAGs."""
        rng = random.Random(seed)
        n = LogicNetwork("rand")
        signals = [n.add_input(f"i{j}") for j in range(4)]
        for j in range(10):
            arity = rng.randint(1, 3)
            fanins = rng.sample(signals, min(arity, len(signals)))
            table = TruthTable(
                len(fanins),
                rng.getrandbits(1 << len(fanins)),
            )
            signals.append(n.add_node(f"n{j}", fanins, table))
        n.add_output(signals[-1])
        n.add_output(signals[-2])
        c = tech_map(n, k=k)
        assert equivalent(n, c)
