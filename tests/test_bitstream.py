"""Tests for the configuration-memory (bitstream) model."""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.bitstream import (
    Configuration,
    RegionBitBudget,
    differing_lut_bits,
    differing_routing_bits,
    region_budget,
    routing_bits_of_edges,
)
from repro.arch.rrg import build_rrg

ARCH = FpgaArchitecture(nx=2, ny=2, channel_width=4, k=4)


class TestConfiguration:
    def test_lut_bit_vector_default_zero(self):
        config = Configuration(ARCH)
        vector = config.lut_bit_vector((1, 1))
        assert len(vector) == 17
        assert not any(vector)

    def test_lut_bit_vector_contents(self):
        config = Configuration(
            ARCH, lut_tables={(1, 1): (0b1010, True)}
        )
        vector = config.lut_bit_vector((1, 1))
        assert vector[1] and vector[3]
        assert not vector[0] and not vector[2]
        assert vector[-1] is True  # register select

    def test_routing_bit_count(self):
        config = Configuration(ARCH, routing_bits=frozenset({1, 5}))
        assert config.routing_bit_count() == 2


class TestBitExtraction:
    def test_routing_bits_of_edges_skips_internal(self):
        edges = [(0, 1, 7), (1, 2, -1), (2, 3, 9)]
        assert routing_bits_of_edges(edges) == {7, 9}

    def test_differing_routing_bits(self):
        a = Configuration(ARCH, routing_bits=frozenset({1, 2, 3}))
        b = Configuration(ARCH, routing_bits=frozenset({3, 4}))
        assert differing_routing_bits([a, b]) == {1, 2, 4}

    def test_differing_routing_bits_empty(self):
        assert differing_routing_bits([]) == set()

    def test_differing_lut_bits_counts_rows(self):
        a = Configuration(ARCH, lut_tables={(1, 1): (0b0001, False)})
        b = Configuration(ARCH, lut_tables={(1, 1): (0b0010, False)})
        # Rows 0 and 1 differ; register select equal.
        assert differing_lut_bits([a, b]) == 2

    def test_differing_lut_bits_register_select(self):
        a = Configuration(ARCH, lut_tables={(1, 1): (0, True)})
        b = Configuration(ARCH, lut_tables={(1, 1): (0, False)})
        assert differing_lut_bits([a, b]) == 1

    def test_differing_lut_bits_unused_position(self):
        a = Configuration(ARCH, lut_tables={(1, 1): (0b1, False)})
        b = Configuration(ARCH)  # (1,1) holds the all-zero LUT
        assert differing_lut_bits([a, b]) == 1

    def test_differing_lut_bits_empty(self):
        assert differing_lut_bits([]) == 0


class TestBudget:
    def test_region_budget_matches_arch_and_rrg(self):
        rrg = build_rrg(ARCH)
        budget = region_budget(ARCH, rrg)
        assert budget.lut_bits == ARCH.total_lut_bits()
        assert budget.routing_bits == rrg.n_bits
        assert budget.total == budget.lut_bits + budget.routing_bits

    def test_budget_is_frozen(self):
        budget = RegionBitBudget(10, 20)
        with pytest.raises(AttributeError):
            budget.lut_bits = 5
