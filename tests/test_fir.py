"""Tests for the FIR benchmark generator."""

import pytest

from repro.bench.fir import (
    FirSpec,
    fir_coefficients,
    fir_network,
    fir_pair_specs,
    generate_fir_circuit,
)
from repro.netlist.simulate import simulate_logic, simulate_lut
from repro.synth.optimize import optimize_network
from repro.synth.synthesis import int_to_inputs, word_to_int
from repro.synth.techmap import tech_map


def drive_filter(netlist, spec, samples, generic_coeffs=None):
    """Simulate the datapath on a sample stream; returns outputs."""
    width = spec.accumulator_width()
    seq = []
    for s in samples:
        inputs = int_to_inputs("x", spec.data_width, s)
        if generic_coeffs is not None:
            for tap, coeff in enumerate(generic_coeffs):
                inputs.update(
                    int_to_inputs(
                        f"c{tap}", spec.coeff_width,
                        coeff & ((1 << spec.coeff_width) - 1),
                    )
                )
        seq.append(inputs)
    sim = (
        simulate_lut if hasattr(netlist, "blocks") else simulate_logic
    )
    trace = sim(netlist, seq)
    return [
        word_to_int([t[f"y[{i}]"] for i in range(width)])
        for t in trace
    ]


class TestCoefficients:
    def test_lowpass_non_negative(self):
        spec = fir_coefficients("lowpass", seed=3)
        assert all(c >= 0 for c in spec.coefficients)
        assert any(c > 0 for c in spec.coefficients)

    def test_highpass_alternates_sign(self):
        spec = fir_coefficients("highpass", seed=3)
        nonzero = [c for c in spec.coefficients if c != 0]
        signs = [1 if c > 0 else -1 for c in nonzero]
        assert all(a != b for a, b in zip(signs, signs[1:]))

    def test_sparsity(self):
        spec = fir_coefficients("lowpass", n_taps=8, n_nonzero=3,
                                seed=1)
        assert sum(1 for c in spec.coefficients if c != 0) == 3

    def test_deterministic(self):
        assert fir_coefficients("lowpass", seed=5) == (
            fir_coefficients("lowpass", seed=5)
        )

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            fir_coefficients("bandpass")

    def test_bad_sparsity(self):
        with pytest.raises(ValueError):
            fir_coefficients("lowpass", n_taps=4, n_nonzero=5)


class TestReferenceModel:
    def test_impulse_response_is_coefficients(self):
        spec = FirSpec("lowpass", (3, 0, 5, 1))
        width = spec.accumulator_width()
        out = spec.response([1, 0, 0, 0, 0])
        assert out == [3, 0, 5, 1, 0]
        del width

    def test_step_response_accumulates(self):
        spec = FirSpec("lowpass", (1, 1, 1))
        assert spec.response([1, 1, 1, 1]) == [1, 2, 3, 3]

    def test_negative_coefficients_modular(self):
        spec = FirSpec("highpass", (1, -1))
        width = spec.accumulator_width()
        mask = (1 << width) - 1
        assert spec.response([0, 5, 5]) == [0, 5, (5 - 5) & mask]


class TestHardware:
    @pytest.mark.parametrize("kind,seed", [
        ("lowpass", 0), ("highpass", 0), ("lowpass", 7),
    ])
    def test_network_matches_reference(self, kind, seed):
        spec = fir_coefficients(kind, n_taps=4, n_nonzero=3,
                                seed=seed)
        network = fir_network(spec)
        samples = [1, 255, 7, 0, 128, 3, 99, 250]
        assert drive_filter(network, spec, samples) == (
            spec.response(samples)
        )

    def test_optimised_network_still_correct(self):
        spec = fir_coefficients("highpass", n_taps=4, n_nonzero=2,
                                seed=2)
        network = optimize_network(fir_network(spec))
        samples = [5, 0, 200, 11, 64, 9]
        assert drive_filter(network, spec, samples) == (
            spec.response(samples)
        )

    def test_mapped_circuit_correct(self):
        spec = fir_coefficients("lowpass", n_taps=3, n_nonzero=2,
                                seed=4)
        circuit = tech_map(
            optimize_network(fir_network(spec)), k=4
        )
        samples = [1, 2, 3, 4, 5]
        assert drive_filter(circuit, spec, samples) == (
            spec.response(samples)
        )

    def test_generic_filter_matches_with_port_coefficients(self):
        spec = fir_coefficients("lowpass", n_taps=3, n_nonzero=2,
                                seed=6)
        network = fir_network(spec, generic=True)
        samples = [0, 1, 10, 100, 30]
        out = drive_filter(
            network, spec, samples, generic_coeffs=spec.coefficients
        )
        assert out == spec.response(samples)

    def test_specialised_smaller_than_generic(self):
        """The paper: constant propagation makes the filter ~3x
        smaller than the generic version."""
        spec = fir_coefficients("lowpass", seed=0)
        specialised = tech_map(
            optimize_network(fir_network(spec)), k=4
        )
        generic = tech_map(
            optimize_network(fir_network(spec, generic=True)), k=4
        )
        assert generic.n_luts() > 2 * specialised.n_luts()

    def test_generate_fir_circuit_api(self):
        c = generate_fir_circuit("lowpass", seed=1, n_taps=4,
                                 n_nonzero=2)
        assert c.n_luts() > 0
        assert any(s.startswith("y[") for s in c.outputs)

    def test_pair_specs(self):
        lp, hp = fir_pair_specs(3)
        assert lp.kind == "lowpass"
        assert hp.kind == "highpass"
