"""FlowOptions wire contract: to_dict/from_dict round-trip + validation.

The HTTP API (``repro.serve``) dedups submissions by stage-cache
fingerprint, so the wire boundary must be exact: every knob survives a
JSON round trip with its canonical type, unknown keys and out-of-range
values fail loudly, and the declared knob typing stays in lock-step
with the dataclass fields and ``OPTION_STAGE_COVERAGE``.
"""

import dataclasses
import json

import pytest

from repro.core.flow import OPTION_STAGE_COVERAGE, FlowOptions
from repro.exec.fingerprint import fingerprint


class TestRoundTrip:
    @pytest.mark.smoke
    def test_defaults_survive_json_round_trip(self):
        options = FlowOptions()
        wire = json.loads(json.dumps(options.to_dict()))
        assert FlowOptions.from_dict(wire) == options

    def test_non_default_values_survive(self):
        options = FlowOptions(
            seed=3, k=5, slack=1.4, channel_width=11, inner_num=0.2,
            tplace_refine=False, sizing="search", timing_driven=True,
            criticality_exponent=2.0, timing_tradeoff=0.25,
            batched_router=True, router_lookahead=True,
        )
        wire = json.loads(json.dumps(options.to_dict()))
        rebuilt = FlowOptions.from_dict(wire)
        assert rebuilt == options
        assert fingerprint(rebuilt) == fingerprint(options)

    def test_partial_payload_fills_defaults(self):
        assert FlowOptions.from_dict({"seed": 7}) == FlowOptions(seed=7)
        assert FlowOptions.from_dict({}) == FlowOptions()

    def test_int_literals_coerce_to_canonical_floats(self):
        # JSON clients may send 1 where the knob is a float; the
        # fingerprint distinguishes 1 from 1.0, so from_dict must
        # canonicalise or identical submissions would not dedup.
        a = FlowOptions.from_dict({"inner_num": 1})
        b = FlowOptions.from_dict({"inner_num": 1.0})
        assert a == b
        assert isinstance(a.inner_num, float)
        assert fingerprint(a) == fingerprint(b)


class TestValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown FlowOptions key"):
            FlowOptions.from_dict({"sed": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            FlowOptions.from_dict(7)

    @pytest.mark.parametrize("payload,match", [
        ({"seed": 1.5}, "must be an integer"),
        ({"seed": True}, "must be an integer"),
        ({"inner_num": "fast"}, "must be a number"),
        ({"inner_num": True}, "must be a number"),
        ({"channel_width": 8.0}, "integer or null"),
        ({"timing_driven": 1}, "must be a boolean"),
        ({"sizing": "guesswork"}, "must be one of"),
    ])
    def test_wrong_wire_types_rejected(self, payload, match):
        with pytest.raises(ValueError, match=match):
            FlowOptions.from_dict(payload)

    @pytest.mark.parametrize("kwargs,knob", [
        ({"k": 1}, "k"),
        ({"slack": 0.0}, "slack"),
        ({"io_rat": 0}, "io_rat"),
        ({"fc_in": 0.0}, "fc_in"),
        ({"fc_out": 1.5}, "fc_out"),
        ({"channel_width": 0}, "channel_width"),
        ({"inner_num": -0.1}, "inner_num"),
        ({"max_width_retries": 0}, "max_width_retries"),
        ({"router_max_iterations": 0}, "router_max_iterations"),
        ({"net_affinity": 0.0}, "net_affinity"),
        ({"bit_affinity": 2.0}, "bit_affinity"),
        ({"sharing_passes": -1}, "sharing_passes"),
        ({"criticality_exponent": -1.0}, "criticality_exponent"),
        ({"timing_tradeoff": 1.5}, "timing_tradeoff"),
    ])
    def test_out_of_range_rejected_at_construction(self, kwargs, knob):
        with pytest.raises(ValueError, match=f"FlowOptions.{knob}"):
            FlowOptions(**kwargs)

    def test_boundary_values_accepted(self):
        FlowOptions(fc_in=1.0, net_affinity=1.0, bit_affinity=1.0)
        FlowOptions(sharing_passes=0, criticality_exponent=0.0)
        FlowOptions(timing_tradeoff=0.0)
        FlowOptions(timing_tradeoff=1.0)


class TestKnobTyping:
    def test_typing_partitions_the_fields_exactly(self):
        # Adding a FlowOptions field without declaring its wire type
        # (and its stage coverage) must fail here, not at runtime.
        declared = (
            set(FlowOptions._INT_KNOBS)
            | set(FlowOptions._FLOAT_KNOBS)
            | set(FlowOptions._BOOL_KNOBS)
            | set(FlowOptions._OPTIONAL_INT_KNOBS)
            | set(FlowOptions._CHOICE_KNOBS)
        )
        groups = [
            FlowOptions._INT_KNOBS, FlowOptions._FLOAT_KNOBS,
            FlowOptions._BOOL_KNOBS, FlowOptions._OPTIONAL_INT_KNOBS,
            frozenset(FlowOptions._CHOICE_KNOBS),
        ]
        assert sum(len(g) for g in groups) == len(declared)
        field_names = {f.name for f in dataclasses.fields(FlowOptions)}
        assert declared == field_names
        assert declared == set(OPTION_STAGE_COVERAGE)

    def test_to_dict_covers_every_field(self):
        wire = FlowOptions().to_dict()
        assert set(wire) == {
            f.name for f in dataclasses.fields(FlowOptions)
        }
