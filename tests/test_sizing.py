"""Tests for the minimum-channel-width search."""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.sizing import minimum_channel_width, paper_channel_width
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.route.router import RoutingError


def _xor2():
    return TruthTable.var(0, 2) ^ TruthTable.var(1, 2)


def _chain(name, n_blocks):
    c = LutCircuit(name, 4)
    c.add_input("a")
    c.add_input("b")
    prev = ("a", "b")
    for i in range(n_blocks):
        c.add_block(f"{name}n{i}", prev, _xor2())
        prev = (f"{name}n{i}", "a" if i % 2 else "b")
    c.add_output(f"{name}n{n_blocks - 1}")
    return c


def _dense(name, n_blocks=12):
    """A high-fanin circuit that needs real channel capacity."""
    c = LutCircuit(name, 4)
    for i in range(4):
        c.add_input(f"i{i}")
    names = [f"i{i}" for i in range(4)]
    for i in range(n_blocks):
        ins = tuple(
            names[(i + j) % len(names)] for j in range(4)
        )
        c.add_block(f"{name}n{i}", ins,
                    TruthTable.var(0, 4) ^ TruthTable.var(3, 4))
        names.append(f"{name}n{i}")
    for i in range(max(0, n_blocks - 4), n_blocks):
        c.add_output(f"{name}n{i}")
    return c


@pytest.fixture(scope="module")
def arch():
    return FpgaArchitecture(nx=4, ny=4, channel_width=8, k=4)


class TestMinimumWidth:
    def test_search_result_is_minimal(self, arch):
        circuits = [_dense("d")]
        result = minimum_channel_width(circuits, arch, seed=1)
        assert result.minimum_width >= 1
        # The width below the minimum must have failed (if probed),
        # the minimum itself must have succeeded.
        routable = dict(result.attempts)
        assert routable.get(result.minimum_width) is True
        below = result.minimum_width - 1
        if below in routable:
            assert routable[below] is False

    def test_binary_search_probes_log_many(self, arch):
        result = minimum_channel_width([_dense("d")], arch, seed=1)
        # Upper-bound doubling + bisection keeps routing calls small.
        assert result.n_routings() <= 12

    def test_multiple_modes_all_must_route(self, arch):
        solo = minimum_channel_width(
            [_chain("a", 6)], arch, seed=0
        ).minimum_width
        both = minimum_channel_width(
            [_chain("a", 6), _dense("d")], arch, seed=0
        ).minimum_width
        assert both >= solo

    def test_empty_rejected(self, arch):
        with pytest.raises(ValueError, match="at least one"):
            minimum_channel_width([], arch)

    def test_unroutable_raises(self):
        # A 1x1 grid with 5 distinct-signal blocks cannot even place;
        # use a tiny max_width with a dense circuit instead.
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=2, k=4)
        with pytest.raises(RoutingError, match="unroutable"):
            minimum_channel_width(
                [_dense("d", 16)], arch, max_width=2
            )


class TestAttemptDedup:
    def test_width_one_fabric_routes_once_at_one(self):
        """A workload routable at width 1 probes width 1 during the
        upper-bound scan *and* as the lower bound; the search must
        not pay for the second routing (regression: attempts used to
        record the duplicate)."""
        tiny = LutCircuit("t", 4)
        tiny.add_input("a")
        tiny.add_block("n0", ("a",), TruthTable.var(0, 1))
        tiny.add_output("n0")
        arch = FpgaArchitecture(nx=2, ny=2, channel_width=1, k=4)
        result = minimum_channel_width([tiny], arch, seed=0)
        widths = [w for w, _ok in result.attempts]
        assert len(widths) == len(set(widths))
        assert result.minimum_width == 1
        # Upper-bound probe at 1 plus the memoized lower-bound check:
        # exactly one attempt.
        assert result.attempts == ((1, True),)

    def test_attempts_never_repeat_a_width(self, arch):
        result = minimum_channel_width([_dense("d")], arch, seed=1)
        widths = [w for w, _ok in result.attempts]
        assert len(widths) == len(set(widths))
        assert result.n_routings() == len(result.attempts)


class TestPaperWidth:
    def test_slack_applied(self, arch):
        minimum = minimum_channel_width(
            [_chain("a", 6)], arch, seed=0
        ).minimum_width
        padded = paper_channel_width(
            [_chain("a", 6)], arch, seed=0
        )
        assert padded >= minimum + 1
        assert padded >= int(round(minimum * 1.2))

    def test_bad_slack_rejected(self, arch):
        with pytest.raises(ValueError, match="slack"):
            paper_channel_width([_chain("a", 4)], arch, slack=0.8)

    def test_slack_rounds_up_not_bankers(self, arch):
        """`int(round(w * slack))` used banker's rounding, which can
        land *below* the paper's "20% bigger" rule (round(4.5) == 4);
        the width must now be the ceiling of the product."""
        import math

        minimum = minimum_channel_width(
            [_chain("a", 6)], arch, seed=0
        ).minimum_width
        for slack in (1.1, 1.2, 1.5, 2.0):
            padded = paper_channel_width(
                [_chain("a", 6)], arch, slack=slack, seed=0
            )
            assert padded >= math.ceil(minimum * slack - 1e-9)
            assert padded > minimum

    def test_exact_products_do_not_overshoot(self, arch):
        """15 * 1.2 is 18.000000000000004 in binary floats; the
        epsilon keeps an exact-product slack from ceiling one track
        past the rule (indirectly: slack 1.0 must give minimum+1)."""
        minimum = minimum_channel_width(
            [_chain("a", 6)], arch, seed=0
        ).minimum_width
        padded = paper_channel_width(
            [_chain("a", 6)], arch, slack=1.0, seed=0
        )
        assert padded == minimum + 1
