"""Tests for Tunable LUTs and Tunable circuits (paper Figs. 3-4)."""

import pytest

from repro.core.modes import ModeEncoding
from repro.core.tunable import TunableCircuit, TunableLut
from repro.netlist.lutcircuit import LutBlock, LutCircuit
from repro.netlist.truthtable import TruthTable


def lut_and():
    return LutBlock("A", ("p", "q"),
                    TruthTable.var(0, 2) & TruthTable.var(1, 2))


def lut_or():
    return LutBlock("B", ("r", "s"),
                    TruthTable.var(0, 2) | TruthTable.var(1, 2))


class TestTunableLut:
    def test_fig4_bit_generation(self):
        """Paper Fig. 4: merging an AND LUT (mode 0) and an OR LUT
        (mode 1) yields rows whose expressions follow m0."""
        t = TunableLut("t", k=2, n_modes=2)
        t.add_member(0, lut_and())
        t.add_member(1, lut_or())
        rows = t.bit_modes()
        # Row 00: AND=0, OR=0 -> never on -> expression 0.
        assert rows[0] == frozenset()
        # Rows 01 and 10: AND=0, OR=1 -> on only in mode 1 -> m0.
        assert rows[1] == frozenset((1,))
        assert rows[2] == frozenset((1,))
        # Row 11: both 1 -> always on -> 1.
        assert rows[3] == frozenset((0, 1))
        exprs = t.bit_expressions(ModeEncoding(2))
        assert exprs[0] == "0"
        assert exprs[1] == "m0"
        assert exprs[3] == "1"

    def test_specialize_recovers_members(self):
        t = TunableLut("t", k=2, n_modes=2)
        t.add_member(0, lut_and())
        t.add_member(1, lut_or())
        bits0, reg0 = t.specialize(0)
        assert TruthTable(2, bits0) == lut_and().table
        assert reg0 is False
        bits1, _ = t.specialize(1)
        assert TruthTable(2, bits1) == lut_or().table

    def test_register_select_bit(self):
        t = TunableLut("t", k=2, n_modes=2)
        t.add_member(
            0, LutBlock("A", ("p",), TruthTable.var(0, 1),
                        registered=True),
        )
        t.add_member(1, lut_or())
        rows = t.bit_modes()
        assert rows[-1] == frozenset((0,))  # select bit: only mode 0
        assert t.specialize(0)[1] is True
        assert t.specialize(1)[1] is False

    def test_unoccupied_mode_is_zero_lut(self):
        t = TunableLut("t", k=2, n_modes=2)
        t.add_member(0, lut_and())
        bits1, reg1 = t.specialize(1)
        assert bits1 == 0
        assert reg1 is False

    def test_arity_alignment(self):
        """Members with fewer inputs than K pad with don't-care pins."""
        t = TunableLut("t", k=4, n_modes=2)
        t.add_member(0, LutBlock("A", ("p",), ~TruthTable.var(0, 1)))
        aligned = t.aligned_table(0)
        assert aligned.n_vars == 4
        assert aligned.support() == [0]

    def test_parameterized_bit_count(self):
        t = TunableLut("t", k=2, n_modes=2)
        t.add_member(0, lut_and())
        t.add_member(1, lut_or())
        # Rows 01, 10 vary; rows 00 (const 0), 11 (const 1) and the
        # select bit (const 0) do not.
        assert t.n_parameterized_bits() == 2

    def test_duplicate_mode_rejected(self):
        t = TunableLut("t", k=2, n_modes=2)
        t.add_member(0, lut_and())
        with pytest.raises(ValueError):
            t.add_member(0, lut_or())

    def test_too_many_inputs_rejected(self):
        t = TunableLut("t", k=1, n_modes=2)
        with pytest.raises(ValueError):
            t.add_member(0, lut_and())


def two_mode_circuits():
    """Two small, different 2-input-LUT circuits with shared IO names."""
    m0 = LutCircuit("mode0", 4)
    m0.add_input("i0")
    m0.add_input("i1")
    m0.add_block("u", ("i0", "i1"),
                 TruthTable.var(0, 2) & TruthTable.var(1, 2))
    m0.add_block("v", ("u", "i1"),
                 TruthTable.var(0, 2) ^ TruthTable.var(1, 2))
    m0.add_output("v")

    m1 = LutCircuit("mode1", 4)
    m1.add_input("i0")
    m1.add_input("i1")
    m1.add_block("w", ("i0", "i1"),
                 TruthTable.var(0, 2) | TruthTable.var(1, 2))
    m1.add_block("z", ("w",), ~TruthTable.var(0, 1),
                 registered=True)
    m1.add_output("z")
    return m0, m1


class TestTunableCircuit:
    def test_binding_and_duplicates(self):
        tc = TunableCircuit("tc", 4, 2)
        tc.add_tlut("t0")
        with pytest.raises(ValueError):
            tc.add_tlut("t0")
        tc.bind_signal(0, "sig", "t0")
        with pytest.raises(ValueError):
            tc.bind_signal(0, "sig", "t0")

    def test_finalize_merges_connections(self):
        tc = TunableCircuit("tc", 4, 2)
        tc.finalize_connections({
            0: [("a", "b"), ("a", "c")],
            1: [("a", "b")],
        })
        assert tc.n_tunable_connections() == 2
        shared = [c for c in tc.connections
                  if c.activation.is_always()]
        assert len(shared) == 1
        assert shared[0].source == "a" and shared[0].sink == "b"

    def test_stats_shape(self):
        tc = TunableCircuit("tc", 4, 2)
        tc.add_tlut("t0")
        stats = tc.stats()
        assert set(stats) == {
            "tluts", "pads", "connections", "shared_connections",
            "parameterized_lut_bits",
        }

    def test_specialize_mode_out_of_range(self):
        tc = TunableCircuit("tc", 4, 2)
        with pytest.raises(ValueError):
            tc.specialize(5)

    def test_site_connections_require_sites(self):
        from repro.core.merge import merge_by_index

        m0, m1 = two_mode_circuits()
        tc = merge_by_index("mm", [m0, m1])
        with pytest.raises(ValueError):
            tc.site_connections()
