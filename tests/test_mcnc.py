"""Tests for the MCNC-class synthetic circuit generator."""

import pytest

from repro.bench.mcnc import (
    DEFAULT_PROFILES,
    McncProfile,
    generate_mcnc_circuit,
    mcnc_network,
)
from repro.netlist.simulate import equivalent

SMALL = McncProfile("small_like", 8, 6, 80, 0.1, 30, 7)


class TestGenerator:
    def test_deterministic(self):
        a = mcnc_network(SMALL)
        b = mcnc_network(SMALL)
        assert a.nodes.keys() == b.nodes.keys()
        assert all(
            a.nodes[n].fanins == b.nodes[n].fanins for n in a.nodes
        )

    def test_profile_shape(self):
        n = mcnc_network(SMALL)
        assert len(n.inputs) == SMALL.n_inputs
        assert len(n.outputs) == SMALL.n_outputs
        assert len(n.nodes) == SMALL.n_gates

    def test_registers_present_when_requested(self):
        n = mcnc_network(SMALL)
        assert len(n.latches) > 0

    def test_combinational_profile_has_no_latches(self):
        profile = McncProfile("comb", 8, 4, 60, 0.0, 30, 9)
        assert len(mcnc_network(profile).latches) == 0

    def test_network_validates(self):
        mcnc_network(SMALL).validate()

    def test_mapping_preserves_function(self):
        network = mcnc_network(SMALL)
        circuit = generate_mcnc_circuit(SMALL)
        assert equivalent(network, circuit, n_cycles=16, n_runs=2)

    def test_different_seeds_differ(self):
        other = McncProfile("small_like", 8, 6, 80, 0.1, 30, 8)
        a = generate_mcnc_circuit(SMALL)
        b = generate_mcnc_circuit(other)
        tables_a = sorted(
            blk.table.bits for blk in a.blocks.values()
        )
        tables_b = sorted(
            blk.table.bits for blk in b.blocks.values()
        )
        assert tables_a != tables_b


class TestDefaultSuite:
    def test_five_distinct_profiles(self):
        names = [p.name for p in DEFAULT_PROFILES]
        assert len(names) == 5
        assert len(set(names)) == 5

    @pytest.mark.slow
    def test_default_sizes_in_table1_window(self):
        """Mapped sizes must land in the paper's Table I window for
        the MCNC suite (264-404 LUTs), with tolerance."""
        for profile in DEFAULT_PROFILES:
            c = generate_mcnc_circuit(profile)
            assert 220 <= c.n_luts() <= 450, (
                profile.name, c.n_luts()
            )
