"""Tests of the compile service (``repro.serve``).

Three layers:

* **Wire validation** — ``FlowSubmission.from_dict`` rejects malformed
  payloads with explicit errors; the fingerprint is the campaign
  stage-cache key (stable, and sensitive to every input).
* **Service semantics** (stub runner, no HTTP) — in-flight dedup,
  retry-after-failure, per-tenant quotas, drain.
* **End-to-end over HTTP** — a real server executes a real tiny flow
  once for two identical submissions, and the payload is bit-identical
  to running the campaign worker directly.
"""

import json
import threading
import time

import pytest

from repro.bench.campaign import _campaign_run_worker
from repro.exec.cache import StageCache
from repro.exec.jobs import JobState
from repro.exec.progress import StageRecord
from repro.serve import (
    FlowService,
    FlowSubmission,
    QuotaExceeded,
    ServiceDraining,
    SubmissionError,
)
from repro.serve.client import ServeClient, ServeError, pair_submission
from repro.serve.server import FlowServer


def mode_dict(name, seed=0, taps=3):
    return {
        "kind": "fir", "name": name, "seed": seed, "k": 4,
        "params": {"taps": taps},
    }


def submission_dict(seed=0, tenant="default", priority="batch", **extra):
    body = {
        "modes": [
            mode_dict(f"lp{seed}", seed=seed),
            mode_dict(f"hp{seed}", seed=seed, taps=4),
        ],
        "options": {"inner_num": 0.1, "seed": seed},
        "tenant": tenant,
        "priority": priority,
    }
    body.update(extra)
    return body


def make_submission(**kwargs):
    return FlowSubmission.from_dict(submission_dict(**kwargs))


# ---------------------------------------------------------------------------
# wire validation + fingerprints
# ---------------------------------------------------------------------------


class TestSubmissionValidation:
    @pytest.mark.smoke
    def test_minimal_payload_parses(self):
        sub = FlowSubmission.from_dict({"modes": [mode_dict("m0")]})
        assert sub.name == "m0"
        assert sub.tenant == "default"
        assert sub.priority == "batch"
        assert [s.value for s in sub.strategies] == [
            "edge_matching", "wire_length",
        ]

    @pytest.mark.parametrize("payload,match", [
        ("nope", "must be a JSON object"),
        ({}, "'modes' must be a non-empty list"),
        ({"modes": []}, "'modes' must be a non-empty list"),
        ({"modes": [mode_dict("m")], "mode": 1}, "unknown submission key"),
        ({"modes": [{"kind": "warp", "name": "m"}]},
         "unknown workload kind"),
        ({"modes": [{"kind": "fir"}]}, "'name' must be a non-empty"),
        ({"modes": [mode_dict("m")], "options": {"sed": 1}},
         "options: unknown FlowOptions key"),
        ({"modes": [mode_dict("m")], "options": {"k": 1}},
         "options: FlowOptions.k"),
        ({"modes": [mode_dict("m")], "strategies": ["zigzag"]},
         "unknown merge strategy"),
        ({"modes": [mode_dict("m")], "priority": "urgent"},
         "unknown priority"),
        ({"modes": [mode_dict("m")], "tenant": ""},
         "'tenant' must be a non-empty string"),
    ])
    def test_malformed_payloads_rejected(self, payload, match):
        with pytest.raises(SubmissionError, match=match):
            FlowSubmission.from_dict(payload)

    def test_round_trip(self):
        sub = make_submission(seed=2, tenant="t", priority="interactive")
        again = FlowSubmission.from_dict(
            json.loads(json.dumps(sub.to_dict()))
        )
        assert again == sub
        assert again.fingerprint() == sub.fingerprint()


class TestFingerprint:
    def test_stable_across_equivalent_wire_forms(self):
        # inner_num 0.1 typed as float either way; option order and
        # omitted-default keys must not split the fingerprint.
        a = FlowSubmission.from_dict(submission_dict())
        payload = submission_dict()
        payload["options"] = {"seed": 0, "inner_num": 0.1, "k": 4}
        b = FlowSubmission.from_dict(payload)
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_every_input(self):
        base = make_submission().fingerprint()
        assert make_submission(seed=1).fingerprint() != base
        other_opts = FlowSubmission.from_dict(
            submission_dict(options={"inner_num": 0.2, "seed": 0})
        )
        assert other_opts.fingerprint() != base
        other_strat = FlowSubmission.from_dict(
            submission_dict(strategies=["wire_length"])
        )
        assert other_strat.fingerprint() != base

    def test_tenant_and_priority_do_not_split_identity(self):
        # Dedup is about the computed artefact; who asked, and how
        # urgently, must not fork the cache key.
        a = make_submission(tenant="alice", priority="interactive")
        b = make_submission(tenant="bob", priority="batch")
        assert a.fingerprint() == b.fingerprint()


# ---------------------------------------------------------------------------
# service semantics (stub runner)
# ---------------------------------------------------------------------------


def stub_service(runner, **kwargs):
    kwargs.setdefault("workers", 2)
    return FlowService(
        use_threads=True,
        cache=StageCache(None, enabled=False),
        runner=runner,
        **kwargs,
    )


def ok_runner(name, specs, options, strategies, root, enabled):
    return (
        {"name": name, "seed": options.seed},
        [StageRecord("campaign", name, 0.0, False)],
    )


def fail_runner(name, specs, options, strategies, root, enabled):
    raise RuntimeError("flow exploded")


def wait_terminal(record, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not record.state.terminal:
        if time.monotonic() > deadline:
            raise TimeoutError(f"{record.id} still {record.state}")
        time.sleep(0.01)


class TestFlowService:
    def test_identical_inflight_submissions_collapse(self):
        release = threading.Event()

        def gated(name, *rest):
            release.wait(10)
            return ok_runner(name, *rest)

        service = stub_service(gated)
        try:
            first, deduped1 = service.submit(make_submission(tenant="a"))
            second, deduped2 = service.submit(make_submission(tenant="b"))
            assert (deduped1, deduped2) == (False, True)
            assert second is first
            assert first.n_submissions == 2
            assert first.tenants == {"a", "b"}
            release.set()
            wait_terminal(first)
            assert first.state is JobState.DONE
            assert service.n_executed == 1
            assert service.n_deduped == 1
        finally:
            release.set()
            service.shutdown()

    def test_completed_flow_still_dedups(self):
        service = stub_service(ok_runner)
        try:
            record, _ = service.submit(make_submission())
            wait_terminal(record)
            again, deduped = service.submit(make_submission())
            assert deduped is True
            assert again is record
        finally:
            service.shutdown()

    def test_failed_flow_retries_under_fresh_record(self):
        service = stub_service(fail_runner)
        try:
            record, _ = service.submit(make_submission())
            wait_terminal(record)
            assert record.state is JobState.FAILED
            assert "flow exploded" in record.error
            retry, deduped = service.submit(make_submission())
            assert deduped is False
            assert retry.id != record.id
        finally:
            service.shutdown()

    def test_tenant_quota_rejects_excess_active_flows(self):
        release = threading.Event()

        def gated(name, *rest):
            release.wait(10)
            return ok_runner(name, *rest)

        service = stub_service(gated, tenant_quota=1)
        try:
            service.submit(make_submission(seed=0, tenant="t"))
            with pytest.raises(QuotaExceeded) as info:
                service.submit(make_submission(seed=1, tenant="t"))
            assert info.value.tenant == "t"
            assert (info.value.active, info.value.quota) == (1, 1)
            # A different tenant is unaffected; a deduped attach to an
            # existing flow costs nothing and is never rejected.
            _, deduped = service.submit(make_submission(seed=0, tenant="t"))
            assert deduped is True
            service.submit(make_submission(seed=2, tenant="other"))
            assert service.n_quota_rejected == 1
        finally:
            release.set()
            service.shutdown()

    def test_drain_refuses_new_submissions(self):
        service = stub_service(ok_runner)
        try:
            record, _ = service.submit(make_submission())
            assert service.drain(timeout=10) is True
            assert record.state is JobState.DONE
            with pytest.raises(ServiceDraining):
                service.submit(make_submission(seed=9))
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# end-to-end over HTTP (real flow, tiny FIR pair)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    service = FlowService(
        workers=2,
        use_threads=True,
        cache=StageCache(str(cache_dir)),
        tenant_quota=4,
    )
    server = FlowServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    assert server.ready.wait(10)
    client = ServeClient(server.url, timeout=120)
    yield service, server, client
    server.stop()
    thread.join(timeout=10)


def tiny_fir_submission():
    return pair_submission(
        "fir", scale="tiny", options={"inner_num": 0.1}
    )


class TestServerEndToEnd:
    def test_concurrent_identical_submissions_run_once(self, served):
        service, _server, client = served
        body = tiny_fir_submission()
        first = client.submit(body)
        second = client.submit(body)
        assert first["deduped"] is False
        assert second["deduped"] is True
        assert second["id"] == first["id"]
        assert second["fingerprint"] == first["fingerprint"]
        assert second["n_submissions"] == 2

        status = client.wait(first["id"], timeout=300)
        assert status["state"] == "done"
        result = client.result(first["id"])

        # The server executed the pair exactly once...
        stats = client.stats()
        assert stats["executed"] == 1
        assert stats["deduped"] == 1

        # ...the fingerprint is the campaign stage key of the same
        # submission, and the payload is bit-identical to running the
        # worker directly (fresh, uncached) on the same inputs.
        submission = FlowSubmission.from_dict(body)
        assert result["fingerprint"] == submission.fingerprint()
        payload, _records = _campaign_run_worker(
            submission.name,
            submission.specs,
            submission.options,
            tuple(s.value for s in submission.strategies),
            None,
            False,
        )
        assert result["result"] == json.loads(json.dumps(payload))

    def test_resubmission_after_completion_dedups(self, served):
        _service, _server, client = served
        response = client.submit(tiny_fir_submission())
        assert response["deduped"] is True
        assert response["state"] == "done"

    def test_events_stream_ends_terminal(self, served):
        _service, _server, client = served
        flow_id = client.submit(tiny_fir_submission())["id"]
        events = list(client.events(flow_id, timeout=300))
        assert events
        assert events[-1]["state"] == "done"

    def test_submission_error_maps_to_400(self, served):
        _service, _server, client = served
        with pytest.raises(ServeError) as info:
            client.submit({"modes": [], "bogus": 1})
        assert info.value.status == 400

    def test_unknown_flow_maps_to_404(self, served):
        _service, _server, client = served
        with pytest.raises(ServeError) as info:
            client.result("flow-999999")
        assert info.value.status == 404

    def test_healthz_and_stats(self, served):
        _service, _server, client = served
        assert client.healthz()["status"] == "ok"
        stats = client.stats()
        assert stats["executor"] == "thread"
        assert stats["cache_enabled"] is True


class TestServerAdmin:
    def test_quota_resize_drain_over_http(self):
        service = FlowService(
            workers=1,
            use_threads=True,
            cache=StageCache(None, enabled=False),
            tenant_quota=1,
            runner=ok_runner,
        )
        server = FlowServer(service, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        assert server.ready.wait(10)
        client = ServeClient(server.url, timeout=30)
        release = threading.Event()
        try:
            assert client.resize(2) == {"workers": 2}

            original = service.runner

            def gated(name, *rest):
                release.wait(10)
                return original(name, *rest)

            service.runner = gated
            first = client.submit(submission_dict(seed=0, tenant="t"))
            assert first["deduped"] is False
            with pytest.raises(ServeError) as info:
                client.submit(submission_dict(seed=1, tenant="t"))
            assert info.value.status == 429
            assert info.value.payload["quota"] == 1
            release.set()

            drained = client.drain(stop=False)
            assert drained == {"drained": True, "stopped": False}
            with pytest.raises(ServeError) as info:
                client.submit(submission_dict(seed=2, tenant="t"))
            assert info.value.status == 503
            assert client.healthz()["status"] == "draining"
        finally:
            release.set()
            server.stop()
            thread.join(timeout=10)
