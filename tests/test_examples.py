"""Smoke tests: the example scripts must run end to end.

The quickstart and manager examples are fast enough for every test
run; the flow-heavy scenario examples are marked slow (they take
minutes and are exercised by the benchmark suite's identical code
path anyway).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "speed-up" in out
        assert "equivalent" in out
        assert "MISMATCH" not in out

    def test_reconfiguration_manager(self):
        out = run_example("reconfiguration_manager.py")
        assert "Parameterised configuration" in out
        assert "bits rewritten" in out
        assert "Frame model" in out


@pytest.mark.slow
class TestScenarioExamples:
    def test_regexp_multimode(self):
        out = run_example("regexp_multimode.py", timeout=1200)
        assert "MISMATCH" not in out
        assert "speed-up" in out

    def test_fir_multimode(self):
        out = run_example("fir_multimode.py", timeout=1200)
        assert "MISMATCH" not in out
        assert "33%" in out or "of the generic" in out

    def test_mcnc_multimode(self):
        out = run_example("mcnc_multimode.py", timeout=1200)
        assert "Specialisation checks passed" in out

    def test_nmode_multimode(self):
        out = run_example("nmode_multimode.py", timeout=1200)
        assert "all four specialisations" in out
        assert "onehot" in out

    def test_visualize_implementation(self):
        out = run_example("visualize_implementation.py",
                          timeout=1200)
        assert "Tunable-circuit occupancy" in out
        assert "merged_routing.svg" in out
        assert "## Reconfiguration cost" in out

    # The run_paper_experiments.py path is exercised end to end by
    # the benchmark suite (same harness, same code path), so it is
    # not duplicated here.
