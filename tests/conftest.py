"""Shared pytest configuration.

The ``smoke`` tier is one fast test per test module (CI runs it first
for a sub-2-minute signal).  A module can pick its representative
explicitly with ``@pytest.mark.smoke``; modules without an explicit
pick get their first collected non-slow test marked automatically, so
new test modules join the smoke tier by default.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    explicit = set()
    for item in items:
        if item.get_closest_marker("smoke"):
            explicit.add(item.location[0])
    covered = set(explicit)
    for item in items:
        path = item.location[0]
        if path in covered or item.get_closest_marker("slow"):
            continue
        covered.add(path)
        item.add_marker(pytest.mark.smoke)
