"""Tests for the FPGA architecture model."""

import pytest

from repro.arch.architecture import (
    FpgaArchitecture,
    Site,
    size_for_circuits,
)


class TestGeometry:
    def test_counts(self):
        arch = FpgaArchitecture(nx=4, ny=3)
        assert arch.n_clbs == 12
        assert arch.n_pad_locations == 14
        assert arch.n_pads == 28

    def test_clb_sites_cover_grid(self):
        arch = FpgaArchitecture(nx=3, ny=3)
        sites = arch.clb_sites()
        assert len(sites) == 9
        assert all(arch.contains_clb(s.x, s.y) for s in sites)

    def test_pad_sites_on_perimeter(self):
        arch = FpgaArchitecture(nx=2, ny=2, io_rat=3)
        sites = arch.pad_sites()
        assert len(sites) == 8 * 3
        for s in sites:
            assert not arch.contains_clb(s.x, s.y)
            on_x_edge = s.x in (0, arch.nx + 1)
            on_y_edge = s.y in (0, arch.ny + 1)
            assert on_x_edge != on_y_edge  # corners excluded

    def test_channel_segment_count(self):
        arch = FpgaArchitecture(nx=3, ny=2)
        # chanx: 3 * 3 rows; chany: 2 * 4 columns
        assert arch.n_channel_segments() == 9 + 8
        assert len(list(arch.chanx_positions())) == 9
        assert len(list(arch.chany_positions())) == 8

    def test_lut_bits(self):
        arch = FpgaArchitecture(nx=2, ny=2, k=4)
        assert arch.lut_bits_per_clb() == 17
        assert arch.total_lut_bits() == 4 * 17


class TestValidation:
    def test_bad_grid(self):
        with pytest.raises(ValueError):
            FpgaArchitecture(nx=0, ny=2)

    def test_bad_fc(self):
        with pytest.raises(ValueError):
            FpgaArchitecture(nx=2, ny=2, fc_in=0.0)

    def test_bad_channel_width(self):
        with pytest.raises(ValueError):
            FpgaArchitecture(nx=2, ny=2, channel_width=0)


class TestTracksForPin:
    def test_full_fc_reaches_all_tracks(self):
        arch = FpgaArchitecture(nx=2, ny=2, channel_width=8, fc_in=1.0)
        assert arch.tracks_for_pin(0, 1.0) == list(range(8))

    def test_fractional_fc_count(self):
        arch = FpgaArchitecture(nx=2, ny=2, channel_width=8)
        tracks = arch.tracks_for_pin(1, 0.5)
        assert len(tracks) == 4
        assert all(0 <= t < 8 for t in tracks)

    def test_pins_get_different_offsets(self):
        arch = FpgaArchitecture(nx=2, ny=2, channel_width=16)
        t0 = arch.tracks_for_pin(0, 0.25)
        t1 = arch.tracks_for_pin(1, 0.25)
        assert t0 != t1


class TestSizing:
    def test_area_slack(self):
        arch = size_for_circuits(100, 10, slack=1.2)
        assert arch.nx == arch.ny
        assert arch.n_clbs >= 100 * 1.2 * 0.9  # side rounding tolerance
        assert arch.nx * arch.nx >= 100

    def test_io_forces_growth(self):
        arch = size_for_circuits(4, 200, io_rat=2)
        assert arch.n_pads >= 200

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            size_for_circuits(0, 0)

    def test_site_pos(self):
        s = Site("clb", 3, 4)
        assert s.pos() == (3, 4)
