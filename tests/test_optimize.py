"""Tests for technology-independent optimisation passes."""

from repro.netlist.logic import LogicNetwork
from repro.netlist.simulate import equivalent
from repro.netlist.truthtable import TruthTable
from repro.synth.optimize import (
    optimize_network,
    propagate_constants,
    remove_dead_nodes,
    sweep_buffers,
)


def _check_preserves(network, pass_fn):
    out = pass_fn(network)
    assert equivalent(network, out)
    return out


class TestConstantPropagation:
    def test_and_with_zero_collapses(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_const("zero", False)
        n.add_and("y", ("a", "zero"))
        n.add_output("y")
        out = _check_preserves(n, propagate_constants)
        assert out.nodes["y"].table.is_const()
        assert out.nodes["y"].fanins == ()

    def test_and_with_one_simplifies_to_wire(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_const("one", True)
        n.add_and("y", ("a", "one"))
        n.add_output("y")
        out = _check_preserves(n, propagate_constants)
        assert out.nodes["y"].fanins == ("a",)

    def test_chain_propagation(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_const("one", True)
        n.add_and("t", ("a", "one"))
        n.add_const("zero", False)
        n.add_or("u", ("t", "zero"))
        n.add_xor("y", ("u", "zero"))
        n.add_output("y")
        out = _check_preserves(n, propagate_constants)
        assert out.nodes["y"].fanins == ("u",)

    def test_dead_support_removed(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_input("b")
        # f(a, b) = a regardless of b.
        table = TruthTable.var(0, 2)
        n.add_node("y", ("a", "b"), table)
        n.add_output("y")
        out = _check_preserves(n, propagate_constants)
        assert out.nodes["y"].fanins == ("a",)


class TestBufferSweep:
    def test_buffer_absorbed(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_input("b")
        n.add_buf("buf", "a")
        n.add_and("y", ("buf", "b"))
        n.add_output("y")
        out = _check_preserves(n, sweep_buffers)
        assert "buf" not in out.nodes
        assert out.nodes["y"].fanins == ("a", "b")

    def test_inverter_folded_into_reader(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_input("b")
        n.add_not("inv", "a")
        n.add_and("y", ("inv", "b"))
        n.add_output("y")
        out = _check_preserves(n, sweep_buffers)
        assert "inv" not in out.nodes
        assert out.nodes["y"].table == TruthTable.from_function(
            2, lambda a, b: (not a) and b
        )

    def test_inverter_chain_collapses(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_not("i1", "a")
        n.add_not("i2", "i1")
        n.add_buf("y", "i2")
        n.add_output("y")
        out = _check_preserves(n, sweep_buffers)
        assert out.nodes["y"].fanins == ("a",)

    def test_output_buffer_kept(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_buf("y", "a")
        n.add_output("y")
        out = _check_preserves(n, sweep_buffers)
        assert "y" in out.nodes


class TestDeadNodeRemoval:
    def test_unreachable_cone_removed(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_input("b")
        n.add_and("dead", ("a", "b"))
        n.add_or("y", ("a", "b"))
        n.add_output("y")
        out = _check_preserves(n, remove_dead_nodes)
        assert "dead" not in out.nodes

    def test_latch_kept_through_feedback(self):
        n = LogicNetwork()
        n.add_input("en")
        n.add_latch("q", "d")
        n.add_xor("d", ("q", "en"))
        n.add_output("q")
        out = _check_preserves(n, remove_dead_nodes)
        assert "q" in out.latches
        assert "d" in out.nodes

    def test_dead_latch_removed(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_latch("unused", "a")
        n.add_buf("y", "a")
        n.add_output("y")
        out = _check_preserves(n, remove_dead_nodes)
        assert "unused" not in out.latches


class TestFixedPoint:
    def test_optimize_network_runs_all_passes(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_const("one", True)
        n.add_and("t", ("a", "one"))  # becomes a buffer
        n.add_buf("u", "t")
        n.add_and("dead", ("a", "u"))
        n.add_or("y", ("u", "u"))
        n.add_output("y")
        out = optimize_network(n)
        assert equivalent(n, out)
        assert "dead" not in out.nodes
        # Everything should fold down to y (+ possibly one buffer).
        assert len(out.nodes) <= 2
