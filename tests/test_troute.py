"""Direct tests for the TRoute workload helpers."""

import pytest

from repro.arch.architecture import FpgaArchitecture, Site
from repro.arch.rrg import build_rrg
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.cost import total_cost
from repro.place.placer import pad_cell, place_circuit
from repro.route.troute import (
    lut_circuit_connections,
    parameterized_routing_bits,
    route_tunable_circuit,
)


@pytest.fixture(scope="module")
def fabric():
    arch = FpgaArchitecture(nx=3, ny=3, channel_width=6)
    return arch, build_rrg(arch)


def tiny_circuit():
    c = LutCircuit("tiny", 4)
    c.add_input("a")
    c.add_block("x", ("a",), ~TruthTable.var(0, 1))
    c.add_block(
        "y", ("x", "a"),
        TruthTable.var(0, 2) & TruthTable.var(1, 2),
    )
    c.add_output("y")
    c.add_output("x")
    return c


class TestLutCircuitConnections:
    def test_connection_inventory(self, fabric):
        arch, _rrg = fabric
        c = tiny_circuit()
        placement = place_circuit(c, arch, seed=0)
        conns = lut_circuit_connections(c, placement, mode=3)
        # x: 1 input pin; y: 2 input pins; 2 PO taps.
        assert len(conns) == 5
        assert all(modes == frozenset((3,)) for *_x, modes in conns)

    def test_sources_resolved_to_sites(self, fabric):
        arch, _rrg = fabric
        c = tiny_circuit()
        placement = place_circuit(c, arch, seed=0)
        conns = lut_circuit_connections(c, placement)
        for _net, src_site, sink_site, _modes in conns:
            assert isinstance(src_site, Site)
            assert isinstance(sink_site, Site)
        # The PI net sources at the pad site.
        pi_conns = [
            c2 for c2 in conns if c2[1] == placement.sites[
                pad_cell("a")
            ]
        ]
        assert len(pi_conns) == 2  # feeds x and y

    def test_net_names_mode_scoped(self, fabric):
        arch, _rrg = fabric
        c = tiny_circuit()
        placement = place_circuit(c, arch, seed=0)
        conns0 = lut_circuit_connections(c, placement, mode=0)
        conns1 = lut_circuit_connections(c, placement, mode=1)
        nets0 = {net for net, *_rest in conns0}
        nets1 = {net for net, *_rest in conns1}
        assert nets0.isdisjoint(nets1)


class TestRouteTunableCircuit:
    def test_affinity_validation(self, fabric):
        _arch, rrg = fabric
        a = Site("clb", 1, 1)
        b = Site("clb", 3, 3)
        conns = [("n", a, b, frozenset((0,)))]
        with pytest.raises(ValueError):
            route_tunable_circuit(rrg, conns, 1, net_affinity=0.0)

    def test_multi_mode_workload(self, fabric):
        _arch, rrg = fabric
        a = Site("clb", 1, 1)
        b = Site("clb", 3, 3)
        c = Site("clb", 3, 1)
        conns = [
            ("n1", a, b, frozenset((0, 1))),
            ("n1", a, c, frozenset((0,))),
            ("n2", c, b, frozenset((1,))),
        ]
        result = route_tunable_circuit(rrg, conns, 2)
        assert len(result.routes) == 3
        params = parameterized_routing_bits(result)
        # The shared connection alone is static; the two
        # mode-specific ones are parameterised unless they overlap.
        assert params == result.bits_on(0) ^ result.bits_on(1)

    def test_single_mode_has_no_param_bits(self, fabric):
        _arch, rrg = fabric
        a = Site("clb", 1, 1)
        b = Site("clb", 2, 2)
        result = route_tunable_circuit(
            rrg, [("n", a, b, frozenset((0,)))], 1
        )
        assert parameterized_routing_bits(result) == set()


class TestCostHelpers:
    def test_total_cost_sums_nets(self):
        nets = [
            [(0, 0), (3, 4)],         # 7
            [(1, 1), (1, 1)],         # 0
            [(0, 0), (2, 0), (0, 2)],  # q(3)*(2+2) = 4
        ]
        assert total_cost(nets) == pytest.approx(11.0)
