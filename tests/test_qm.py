"""Tests for the Quine-McCluskey minimiser."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.qm import (
    evaluate_terms,
    expression_to_string,
    minimize_boolean,
    prime_implicants,
    term_to_string,
)


class TestMinimize:
    def test_empty_onset_is_false(self):
        assert minimize_boolean([], 2) == []

    def test_full_onset_is_true(self):
        terms = minimize_boolean([0, 1, 2, 3], 2)
        assert terms == [(0, 3)]
        assert term_to_string(terms[0], 2) == "1"

    def test_single_variable(self):
        # Paper Fig. 4: m0.1 + ~m0.0 simplifies to m0.
        terms = minimize_boolean([1, 3], 2)  # on where bit0 set
        assert expression_to_string(terms, 2) == "m0"

    def test_two_products(self):
        # on-set {0, 3} over 2 vars: ~m1.~m0 + m1.m0
        terms = minimize_boolean([0, 3], 2)
        rendered = expression_to_string(terms, 2)
        assert "+" in rendered
        assert evaluate_terms(terms, 0)
        assert evaluate_terms(terms, 3)
        assert not evaluate_terms(terms, 1)
        assert not evaluate_terms(terms, 2)

    def test_minterm_out_of_range(self):
        with pytest.raises(ValueError):
            minimize_boolean([4], 2)

    @given(
        st.integers(1, 4).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.sets(st.integers(0, (1 << n) - 1)),
            )
        )
    )
    def test_cover_is_exact(self, case):
        """The minimised expression equals the original on-set."""
        n, onset = case
        terms = minimize_boolean(sorted(onset), n)
        for assignment in range(1 << n):
            assert evaluate_terms(terms, assignment) == (
                assignment in onset
            )

    @given(
        st.integers(1, 3).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.sets(
                    st.integers(0, (1 << n) - 1), min_size=1
                ),
            )
        )
    )
    def test_primes_cover_each_minterm(self, case):
        n, onset = case
        primes = prime_implicants(sorted(onset), n)
        for m in onset:
            assert any(
                (m & ~mask) == (value & ~mask)
                for value, mask in primes
            )


class TestRendering:
    def test_negative_literal(self):
        assert term_to_string((0, 0), 1) == "~m0"

    def test_positive_literal_with_names(self):
        assert term_to_string((1, 0), 1, names=["sel"]) == "sel"

    def test_msb_first_ordering(self):
        # value 0b10 over 2 vars, no don't-cares: m1.~m0
        assert term_to_string((2, 0), 2) == "m1.~m0"

    def test_constant_false_expression(self):
        assert expression_to_string([], 2) == "0"
