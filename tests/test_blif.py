"""Tests for BLIF parsing and writing."""

import pytest

from repro.netlist.blif import (
    BlifError,
    logic_from_lut_circuit,
    parse_blif,
    write_logic_blif,
    write_lut_blif,
)
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.simulate import equivalent
from repro.netlist.truthtable import TruthTable

SIMPLE = """\
# a tiny combinational model
.model tiny
.inputs a b c
.outputs y
.names a b t1
11 1
.names t1 c y
1- 1
-1 1
.end
"""

SEQUENTIAL = """\
.model seq
.inputs en
.outputs q
.latch d q re clk 0
.names q en d
10 1
01 1
.end
"""


class TestParsing:
    def test_simple_structure(self):
        n = parse_blif(SIMPLE)
        assert n.name == "tiny"
        assert n.inputs == ["a", "b", "c"]
        assert n.outputs == ["y"]
        assert set(n.nodes) == {"t1", "y"}

    def test_simple_function(self):
        n = parse_blif(SIMPLE)
        assert n.nodes["t1"].table == TruthTable.from_function(
            2, lambda a, b: a and b
        )
        assert n.nodes["y"].table == TruthTable.from_function(
            2, lambda t, c: t or c
        )

    def test_latch_with_fields(self):
        n = parse_blif(SEQUENTIAL)
        assert "q" in n.latches
        assert n.latches["q"].data == "d"
        assert n.latches["q"].init is False

    def test_latch_init_one(self):
        text = SEQUENTIAL.replace("re clk 0", "re clk 1")
        n = parse_blif(text)
        assert n.latches["q"].init is True

    def test_offset_cover(self):
        text = """\
.model offset
.inputs a b
.outputs y
.names a b y
00 0
.end
"""
        n = parse_blif(text)
        assert n.nodes["y"].table == TruthTable.from_function(
            2, lambda a, b: a or b
        )

    def test_constant_one_node(self):
        text = """\
.model const
.outputs y
.names y
1
.end
"""
        n = parse_blif(text)
        assert n.nodes["y"].table.const_value() is True

    def test_constant_zero_node(self):
        text = """\
.model const
.outputs y
.names y
.end
"""
        n = parse_blif(text)
        assert n.nodes["y"].table.const_value() is False

    def test_comment_and_continuation(self):
        text = (
            ".model c\n.inputs a \\\n b\n"
            ".outputs y # output list\n"
            ".names a b y\n11 1\n.end\n"
        )
        n = parse_blif(text)
        assert n.inputs == ["a", "b"]

    def test_forward_reference(self):
        text = """\
.model fwd
.inputs a
.outputs y
.names t y
1 1
.names a t
0 1
.end
"""
        n = parse_blif(text)
        assert set(n.nodes) == {"t", "y"}


class TestErrors:
    def test_missing_model(self):
        with pytest.raises(BlifError):
            parse_blif(".inputs a\n.end\n")

    def test_unsupported_subckt(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n.subckt foo a=b\n.end\n")

    def test_mixed_cover_polarity(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_bad_cube_width(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n"
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_cube_outside_names(self):
        with pytest.raises(BlifError):
            parse_blif(".model m\n11 1\n.end\n")


class TestRoundTrip:
    def test_logic_roundtrip_equivalent(self):
        n = parse_blif(SIMPLE)
        text = write_logic_blif(n)
        n2 = parse_blif(text)
        assert equivalent(n, n2)

    def test_sequential_roundtrip_equivalent(self):
        n = parse_blif(SEQUENTIAL)
        n2 = parse_blif(write_logic_blif(n))
        assert equivalent(n, n2)

    def test_lut_circuit_roundtrip(self):
        c = LutCircuit("rt", k=4)
        c.add_input("a")
        c.add_input("b")
        c.add_block(
            "q", ("a", "q"),
            TruthTable.var(0, 2) ^ TruthTable.var(1, 2),
            registered=True,
        )
        c.add_block("y", ("q", "b"),
                    TruthTable.var(0, 2) & TruthTable.var(1, 2))
        c.add_output("y")
        n = parse_blif(write_lut_blif(c))
        assert equivalent(c, n)

    def test_lut_to_logic_lowering(self):
        c = LutCircuit("low", k=4)
        c.add_input("a")
        c.add_block("y", ("a",), ~TruthTable.var(0, 1))
        c.add_output("y")
        n = logic_from_lut_circuit(c)
        assert equivalent(c, n)
