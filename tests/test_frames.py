"""Tests for the frame-based configuration model."""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.frames import (
    FrameAllocator,
    build_frame_layout,
    dcs_frame_cost,
    mdr_frame_cost,
)
from repro.arch.rrg import build_rrg


@pytest.fixture(scope="module")
def fabric():
    arch = FpgaArchitecture(nx=4, ny=4, channel_width=6)
    return arch, build_rrg(arch)


class TestLayout:
    def test_every_routing_bit_assigned(self, fabric):
        _arch, rrg = fabric
        layout = build_frame_layout(*fabric, frame_size=64)
        assert set(layout.frame_of_bit) == set(range(rrg.n_bits))

    def test_frame_sizes_respected(self, fabric):
        _arch, rrg = fabric
        layout = build_frame_layout(*fabric, frame_size=64)
        from collections import Counter

        counts = Counter(layout.frame_of_bit.values())
        assert all(c <= 64 for c in counts.values())
        assert layout.n_routing_frames == len(counts)

    def test_column_locality(self, fabric):
        """Bits in one frame span a narrow column range."""
        arch, rrg = fabric
        layout = build_frame_layout(arch, rrg, frame_size=64)
        column_of_bit = {}
        for src in range(rrg.n_nodes):
            for _dst, bit in rrg.adjacency[src]:
                if bit >= 0 and bit not in column_of_bit:
                    column_of_bit[bit] = rrg.node_x[src]
        spans = {}
        for bit, frame in layout.frame_of_bit.items():
            x = column_of_bit[bit]
            lo, hi = spans.get(frame, (x, x))
            spans[frame] = (min(lo, x), max(hi, x))
        assert all(hi - lo <= 1 for lo, hi in spans.values())

    def test_lut_frames_counted(self, fabric):
        arch, _rrg = fabric
        layout = build_frame_layout(*fabric, frame_size=64)
        # 4 bits/clb*16 + ... : 4 columns, 4*17=68 bits/column -> 2
        # frames per column at size 64.
        assert layout.n_lut_frames == arch.nx * 2

    def test_bad_frame_size(self, fabric):
        with pytest.raises(ValueError):
            build_frame_layout(*fabric, frame_size=0)


class TestCosts:
    def test_mdr_rewrites_all_frames(self, fabric):
        layout = build_frame_layout(*fabric, frame_size=64)
        cost = mdr_frame_cost(layout)
        assert cost.total == layout.n_frames

    def test_dcs_touches_only_param_frames(self, fabric):
        _arch, rrg = fabric
        layout = build_frame_layout(*fabric, frame_size=64)
        some_bits = set(range(0, 10))  # all land in frame 0-ish
        cost = dcs_frame_cost(layout, some_bits)
        assert cost.lut_frames == layout.n_lut_frames
        assert 1 <= cost.routing_frames <= 10
        assert cost.routing_frames < layout.n_routing_frames

    def test_empty_param_set(self, fabric):
        layout = build_frame_layout(*fabric, frame_size=64)
        cost = dcs_frame_cost(layout, set())
        assert cost.routing_frames == 0


class TestAllocator:
    def test_ideal_bound(self, fabric):
        _arch, rrg = fabric
        layout = build_frame_layout(*fabric, frame_size=64)
        allocator = FrameAllocator(layout, rrg)
        bits = set(range(100))
        assert allocator.ideal_frames(bits) == 2  # ceil(100/64)

    def test_column_constrained_at_least_ideal(self, fabric):
        _arch, rrg = fabric
        layout = build_frame_layout(*fabric, frame_size=64)
        allocator = FrameAllocator(layout, rrg)
        import random

        rng = random.Random(3)
        bits = set(rng.sample(range(rrg.n_bits), 200))
        report = allocator.report(bits)
        assert (
            report["ideal"]
            <= report["column_packed"]
            <= report["as_routed"]
        )

    def test_report_keys(self, fabric):
        _arch, rrg = fabric
        layout = build_frame_layout(*fabric, frame_size=64)
        allocator = FrameAllocator(layout, rrg)
        report = allocator.report({0, 1, 2})
        assert set(report) == {"as_routed", "column_packed", "ideal"}
