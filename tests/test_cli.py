"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

TINY_BLIF = """\
.model tiny
.inputs a b
.outputs y
.names a b y
11 1
.end
"""

MODE_A = """\
.model mode_a
.inputs a b
.outputs y
.names a b y
11 1
.end
"""

MODE_B = """\
.model mode_b
.inputs a b
.outputs y
.names a b y
1- 1
-1 1
.end
"""


@pytest.fixture()
def blif_file(tmp_path):
    path = tmp_path / "tiny.blif"
    path.write_text(TINY_BLIF)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map", "x.blif"])
        assert args.k == 4
        assert args.output is None

    def test_implement_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["implement", "a", "b", "--strategies", "magic"]
            )


class TestMapCommand:
    def test_map_to_stdout(self, blif_file, capsys):
        assert main(["map", blif_file]) == 0
        out = capsys.readouterr().out
        assert ".model tiny" in out
        assert ".names" in out

    def test_map_to_file_with_verify(self, blif_file, tmp_path,
                                     capsys):
        out_path = tmp_path / "mapped.blif"
        code = main(
            ["map", blif_file, "-o", str(out_path), "--verify"]
        )
        assert code == 0
        assert out_path.exists()
        text = capsys.readouterr().out
        assert "4-LUTs" in text

    def test_map_k6(self, blif_file, capsys):
        assert main(["map", blif_file, "-k", "6"]) == 0


class TestInfoCommand:
    def test_info(self, blif_file, capsys):
        assert main(["info", blif_file]) == 0
        out = capsys.readouterr().out
        assert "model:    tiny" in out
        assert "inputs:   2" in out
        assert "4-LUTs:" in out


class TestImplementCommand:
    def test_implement_two_modes(self, tmp_path, capsys):
        a = tmp_path / "a.blif"
        b = tmp_path / "b.blif"
        a.write_text(MODE_A)
        b.write_text(MODE_B)
        code = main([
            "implement", str(a), str(b),
            "--effort", "0.3", "--channel-width", "5",
            "--strategies", "wire_length",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MDR rewrites" in out
        assert "speed-up" in out


class TestExport:
    def test_export_writes_vpr_artefacts(self, blif_file, tmp_path,
                                         capsys):
        outdir = tmp_path / "vpr"
        assert main(
            ["export", blif_file, "-o", str(outdir)]
        ) == 0
        out = capsys.readouterr().out
        for suffix in (".arch", ".net", ".place", ".route"):
            files = list(outdir.glob(f"*{suffix}"))
            assert len(files) == 1, suffix
            assert files[0].read_text().strip()
        assert "wrote" in out

    def test_exported_place_parses_back(self, blif_file, tmp_path):
        from repro.interop import parse_arch, parse_place_file

        outdir = tmp_path / "vpr"
        main(["export", blif_file, "-o", str(outdir)])
        arch_text = next(outdir.glob("*.arch")).read_text()
        place_text = next(outdir.glob("*.place")).read_text()
        # Array size is in the place file header.
        size_line = next(
            line for line in place_text.splitlines()
            if line.startswith("Array size:")
        )
        nx, ny = int(size_line.split()[2]), int(size_line.split()[4])
        arch = parse_arch(arch_text).to_architecture(
            nx, ny, channel_width=12
        )
        placement = parse_place_file(place_text, arch)
        assert placement.sites


class TestReport:
    def test_report_to_file_with_svg(self, tmp_path, capsys):
        a = tmp_path / "a.blif"
        b = tmp_path / "b.blif"
        a.write_text(MODE_A)
        b.write_text(MODE_B)
        report_path = tmp_path / "impl.md"
        svg_path = tmp_path / "impl.svg"
        assert main([
            "report", str(a), str(b),
            "-o", str(report_path), "--svg", str(svg_path),
            "--effort", "0.1",
        ]) == 0
        text = report_path.read_text()
        assert "# Multi-mode implementation report" in text
        assert "## Reconfiguration cost" in text
        assert svg_path.read_text().startswith("<?xml")

    def test_report_to_stdout(self, tmp_path, capsys):
        a = tmp_path / "a.blif"
        b = tmp_path / "b.blif"
        a.write_text(MODE_A)
        b.write_text(MODE_B)
        assert main(["report", str(a), str(b),
                     "--effort", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Per-mode wire usage" in out
