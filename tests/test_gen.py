"""Tests for the workload generator subsystem (:mod:`repro.gen`).

Per generator family: determinism (same spec -> bit-identical circuit,
in-process and across processes), size/shape bounds, and mutual
dissimilarity of different seeds.  Plus the spec value-object and the
suite registry the harness/campaign/bench-exec layers consume.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.exec.fingerprint import fingerprint
from repro.gen import (
    SCALES,
    WorkloadSpec,
    build_circuit,
    registered_kinds,
    registered_suites,
    suite_pair_specs,
    suite_pairs,
)

NEW_FAMILIES = ("datapath", "fsm", "xbar", "klut")

TINY_SPECS = {
    "datapath": dict(width=4, n_terms=2, coeff_width=4),
    "fsm": dict(n_states=5, n_controllers=1, in_bits=3, out_bits=3),
    "xbar": dict(n_ports=2, width=3),
    "klut": dict(n_luts=30, n_inputs=8, n_outputs=6),
}


def tiny_spec(kind: str, seed: int = 0, **overrides) -> WorkloadSpec:
    params = dict(TINY_SPECS[kind], **overrides)
    return WorkloadSpec.create(
        kind, f"{kind}_t{seed}", seed=seed, **params
    )


class TestWorkloadSpec:
    @pytest.mark.smoke
    def test_create_sorts_params_and_reads_back(self):
        spec = WorkloadSpec.create("klut", "x", seed=3, b=2, a=1)
        assert spec.params == (("a", 1), ("b", 2))
        assert spec.param("a") == 1
        assert spec.param("missing", 42) == 42
        assert spec.params_dict() == {"a": 1, "b": 2}

    def test_specs_hash_and_compare(self):
        a = WorkloadSpec.create("klut", "x", seed=1, n_luts=4)
        b = WorkloadSpec.create("klut", "x", seed=1, n_luts=4)
        assert a == b and hash(a) == hash(b)
        assert a != WorkloadSpec.create("klut", "x", seed=2, n_luts=4)

    def test_unknown_kind_lists_registered(self):
        with pytest.raises(ValueError, match="registered kinds"):
            build_circuit(WorkloadSpec.create("warp", "x"))

    def test_all_families_registered(self):
        kinds = registered_kinds()
        for kind in NEW_FAMILIES + ("regexp", "fir", "mcnc"):
            assert kind in kinds


class TestGeneratorFamilies:
    @pytest.mark.parametrize("kind", NEW_FAMILIES)
    def test_build_is_deterministic(self, kind):
        a = tiny_spec(kind).build()
        b = tiny_spec(kind).build()
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize("kind", NEW_FAMILIES)
    def test_seeds_are_mutually_dissimilar(self, kind):
        prints = {
            fingerprint(
                # Same circuit name for all seeds so the digest
                # difference can only come from the logic itself.
                WorkloadSpec.create(
                    kind, "same_name", seed=seed, **TINY_SPECS[kind]
                ).build()
            )
            for seed in range(4)
        }
        assert len(prints) == 4

    @pytest.mark.parametrize("kind", NEW_FAMILIES)
    def test_valid_and_bounded(self, kind):
        circuit = tiny_spec(kind).build()
        circuit.validate()
        assert 4 <= circuit.n_luts() <= 400
        assert circuit.inputs and circuit.outputs
        assert circuit.depth() >= 1

    def test_determinism_across_processes(self):
        """A spec rebuilt in a fresh interpreter yields the identical
        circuit (what campaign workers and stage caching rely on)."""
        specs = [tiny_spec(kind, seed=5) for kind in NEW_FAMILIES]
        expected = [fingerprint(s.build()) for s in specs]
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        script = (
            "from repro.gen import WorkloadSpec\n"
            "from repro.exec.fingerprint import fingerprint\n"
            "import pickle, sys\n"
            "specs = pickle.loads(sys.stdin.buffer.read())\n"
            "for s in specs:\n"
            "    print(fingerprint(s.build()))\n"
        )
        import pickle

        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=pickle.dumps(specs),
            capture_output=True,
            env=dict(os.environ, PYTHONPATH=str(src),
                     PYTHONHASHSEED="random"),
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        assert proc.stdout.decode().split() == expected

    def test_klut_register_density_bounds(self):
        for density in (0.0, 0.2, 0.8):
            circuit = tiny_spec(
                "klut", n_luts=200, reg_density=density
            ).build()
            registered = sum(
                1 for b in circuit.blocks.values() if b.registered
            )
            frac = registered / len(circuit.blocks)
            assert abs(frac - density) < 0.12, (density, frac)

    def test_klut_rent_exponent_changes_wiring(self):
        local = tiny_spec("klut", n_luts=100, rent=0.2).build()
        globl = tiny_spec("klut", n_luts=100, rent=1.0).build()

        def mean_span(circuit):
            # Creation-order distance between a block and its fanins:
            # the generative counterpart of wire length.
            order = {
                name: i
                for i, name in enumerate(
                    list(circuit.inputs) + list(circuit.blocks)
                )
            }
            spans = [
                order[b.name] - order[f]
                for b in circuit.blocks.values()
                for f in b.inputs
            ]
            return sum(spans) / len(spans)

        assert mean_span(globl) > 1.5 * mean_span(local)

    def test_klut_rejects_bad_params(self):
        with pytest.raises(ValueError):
            tiny_spec("klut", rent=1.5).build()
        with pytest.raises(ValueError):
            tiny_spec("klut", reg_density=-0.1).build()
        with pytest.raises(ValueError, match="k >= 2"):
            WorkloadSpec.create(
                "klut", "k1", k=1, **TINY_SPECS["klut"]
            ).build()

    def test_klut_supports_k2(self):
        circuit = WorkloadSpec.create(
            "klut", "k2", k=2, **TINY_SPECS["klut"]
        ).build()
        circuit.validate()
        assert all(
            len(b.inputs) <= 2 for b in circuit.blocks.values()
        )

    def test_datapath_shape_params(self):
        small = tiny_spec("datapath").build()
        wide = tiny_spec(
            "datapath", width=8, n_terms=4, coeff_width=6
        ).build()
        assert wide.n_luts() > small.n_luts()
        # Shared IO names across seeds: the pads of a mode pair merge.
        other = tiny_spec("datapath", seed=9).build()
        assert set(small.inputs) == set(other.inputs)

    def test_fsm_has_state_registers(self):
        circuit = tiny_spec("fsm").build()
        assert any(b.registered for b in circuit.blocks.values())
        # One-hot reset state: exactly one initialised FF per
        # controller survives optimisation.
        assert any(
            b.registered and b.init for b in circuit.blocks.values()
        )

    def test_xbar_rounds_ports_to_power_of_two(self):
        c3 = WorkloadSpec.create(
            "xbar", "x3", n_ports=3, width=1
        ).build()
        c4 = WorkloadSpec.create(
            "xbar", "x4", n_ports=4, width=1
        ).build()
        assert len(c3.inputs) == len(c4.inputs)
        assert len(c3.outputs) == 4


class TestSuiteRegistry:
    @pytest.mark.smoke
    def test_seven_suites_registered(self):
        suites = registered_suites()
        assert set(suites) == {
            "regexp", "fir", "mcnc", "datapath", "fsm", "xbar", "klut"
        }
        for suite in suites.values():
            assert suite.description

    def test_unknown_suite_lists_registered(self):
        with pytest.raises(ValueError, match="registered suites"):
            suite_pair_specs("crypto")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            suite_pair_specs("klut", scale="warp")

    @pytest.mark.parametrize("suite", sorted(NEW_FAMILIES))
    def test_pair_structure(self, suite):
        pairs = suite_pair_specs(suite, scale="tiny")
        assert len(pairs) == 2
        assert len({name for name, _specs in pairs}) == len(pairs)
        for _name, specs in pairs:
            assert len(specs) == 2
            assert specs[0] != specs[1]
            # Same shape, different seed: a real mode pair.
            assert specs[0].params == specs[1].params
            assert specs[0].seed != specs[1].seed

    def test_limit_truncates(self):
        assert len(suite_pair_specs("regexp", limit=2)) == 2

    def test_scales_size_ordering(self):
        tiny = suite_pairs("klut", scale="tiny", limit=1)
        quick = suite_pairs("klut", scale="quick", limit=1)
        assert (
            tiny[0][1][0].n_luts() < quick[0][1][0].n_luts()
        )
        assert set(SCALES) == {
            "tiny", "quick", "default", "medium", "paper"
        }

    def test_shared_specs_build_once(self):
        pairs = suite_pairs("regexp", scale="tiny")
        # regexp_01 and regexp_02 share circuit regexp0.
        assert pairs[0][1][0] is pairs[1][1][0]

    def test_classic_suites_match_direct_generators(self):
        """The spec wrappers reproduce the historical generators
        bit-for-bit (caches and recorded results stay comparable)."""
        from repro.bench.fir import generate_fir_circuit

        spec = suite_pair_specs("fir", seed=3, scale="default")[0][1][0]
        direct = generate_fir_circuit(
            "lowpass", seed=3, k=4, name=spec.name
        )
        assert fingerprint(spec.build()) == fingerprint(direct)
