"""Tests for the critical-path timing estimator.

Since the delay-model consolidation, the placement-level estimator
prices each connection with the shared
:meth:`repro.timing.delay.DelayModel.connection_delay` (pins + wire +
switch per tile), so its expectations are computed from the model
here rather than from module-local constants.
"""

import pytest

from repro.arch.architecture import Site
from repro.core.merge import merge_from_placement
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.timing import (
    TimingReport,
    critical_path,
    dcs_timing,
    timing_penalty,
)
from repro.timing.delay import DelayModel

MODEL = DelayModel()


def chain(n=3):
    """in -> b0 -> ... -> b(n-1) -> out, combinational."""
    c = LutCircuit("chain", 4)
    c.add_input("in")
    prev = "in"
    for i in range(n):
        c.add_block(f"b{i}", (prev,), TruthTable.var(0, 1))
        prev = f"b{i}"
    c.add_output(prev)
    return c


def linear_positions(circuit):
    positions = {"pad:in": (0, 0)}
    for i, name in enumerate(sorted(circuit.blocks)):
        positions[name] = (i + 1, 0)
    out = circuit.outputs[0]
    positions[f"pad:{out}"] = (len(circuit.blocks) + 1, 0)
    return positions


class TestCriticalPath:
    def test_chain_delay(self):
        c = chain(3)
        report = critical_path(c, linear_positions(c))
        # 3 LUTs + 4 unit-length connections.
        expected = (
            3 * MODEL.lut_delay + 4 * MODEL.connection_delay(1)
        )
        assert report.critical_delay == pytest.approx(expected)

    def test_registers_cut_paths(self):
        c = LutCircuit("cut", 4)
        c.add_input("in")
        c.add_block("a", ("in",), TruthTable.var(0, 1))
        c.add_block("r", ("a",), TruthTable.var(0, 1),
                    registered=True)
        c.add_block("b", ("r",), TruthTable.var(0, 1))
        c.add_output("b")
        positions = {
            "pad:in": (0, 0), "a": (1, 0), "r": (2, 0),
            "b": (3, 0), "pad:b": (4, 0),
        }
        report = critical_path(c, positions)
        # Longest segment: two LUTs + two hops (in->a->r or r->b->out).
        expected = (
            2 * MODEL.lut_delay + 2 * MODEL.connection_delay(1)
        )
        assert report.critical_delay == pytest.approx(expected)

    def test_long_wire_dominates(self):
        c = chain(1)
        positions = {
            "pad:in": (0, 0), "b0": (10, 0), "pad:b0": (10, 5),
        }
        report = critical_path(c, positions)
        expected = (
            MODEL.lut_delay
            + MODEL.connection_delay(10)
            + MODEL.connection_delay(5)
        )
        assert report.critical_delay == pytest.approx(expected)

    def test_agrees_with_shared_delay_model(self):
        """The estimator consumes whatever model it is given."""
        c = chain(2)
        fast = DelayModel(
            lut_delay=2.0, pin_delay=0.0, wire_delay=0.1,
            switch_delay=0.0,
        )
        report = critical_path(c, linear_positions(c), fast)
        expected = 2 * 2.0 + 3 * 0.1
        assert report.critical_delay == pytest.approx(expected)

    def test_frequency_inverse(self):
        report = TimingReport(critical_delay=2.0, n_paths=1)
        assert report.frequency() == pytest.approx(0.5)


class TestDcsTiming:
    def test_dcs_timing_uses_tunable_sites(self):
        m0 = LutCircuit("m0", 4)
        m0.add_input("i")
        m0.add_block("x", ("i",), TruthTable.var(0, 1))
        m0.add_output("x")
        m1 = LutCircuit("m1", 4)
        m1.add_input("i")
        m1.add_block("y", ("i",), ~TruthTable.var(0, 1))
        m1.add_output("y")
        block_sites = {
            (0, "x"): Site("clb", 3, 1),
            (1, "y"): Site("clb", 3, 1),
        }
        pad_sites = {
            "pad:i": Site("pad", 0, 1, 0),
            "pad:x": Site("pad", 5, 0, 0),
            "pad:y": Site("pad", 0, 2, 0),
        }
        tunable = merge_from_placement(
            "t", [m0, m1], block_sites, pad_sites
        )
        report0 = dcs_timing(tunable, 0)
        # pad(0,1) -> clb(3,1): 3 hops; clb -> pad(5,0): 3 hops.
        expected = MODEL.lut_delay + 2 * MODEL.connection_delay(3)
        assert report0.critical_delay == pytest.approx(expected)
        report1 = dcs_timing(tunable, 1)
        assert report1.critical_delay > 0

    def test_penalty_ratio(self):
        mdr = [TimingReport(2.0, 1), TimingReport(4.0, 1)]
        dcs = [TimingReport(2.5, 1), TimingReport(4.5, 1)]
        penalty = timing_penalty(mdr, dcs)
        assert penalty == pytest.approx((2.5 / 2 + 4.5 / 4) / 2)

    def test_penalty_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            timing_penalty([TimingReport(1.0, 1)], [])
