"""Batched-wavefront router and batched annealer (the PR's QoR
contract).

The batched router (:mod:`repro.route.batched`) is *not* bit-identical
to the scalar/vectorized cores — its bucket queue settles whole
cost-quantized frontiers and its parallel-net negotiation reorders
rip-up work — so these tests pin what it does guarantee instead:

* legality (every route validates) and QoR within a gate tolerance of
  the vectorized reference, across the four generator families,
  untimed and timing-driven;
* bit-identical results for any ``route_workers`` value (conflicts
  are replayed in canonical net order, so thread fan-out cannot leak
  into the answer);
* stage-cache keys that keep batched and non-batched results apart
  (warm reruns of either flag reproduce their cold runs).

The batched annealer (:func:`repro.place.annealing.anneal_batched`)
carries the same contract: deterministic per seed, legal, QoR within
tolerance of the scalar engine.
"""

import pytest

from repro.arch.architecture import size_for_circuits
from repro.arch.rrg import build_rrg
from repro.core.flow import FlowOptions
from repro.gen.spec import build_circuit
from repro.gen.suites import suite_pair_specs
from repro.place.placer import place_circuit
from repro.route.batched import BatchedPathFinderRouter
from repro.route.router import PathFinderRouter, validate_routing
from repro.route.searchkernel import RouterStats
from repro.route.troute import route_lut_circuit, route_tunable_circuit

FAMILIES = ("datapath", "fsm", "xbar", "klut")

#: QoR gate: batched wirelength within this factor of vectorized.
#: The cores explore bucket-quantized frontiers, so individual routes
#: differ; the bench workload stays within ~6%, the tiny circuits
#: here within ~15% in the worst family.
WL_TOLERANCE = 1.20


def _pair_fixture(family, seed=0):
    pair_name, specs = suite_pair_specs(
        family, seed=seed, k=4, scale="tiny", limit=1
    )[0]
    modes = [build_circuit(spec) for spec in specs]
    ios = set()
    for circuit in modes:
        ios.update(circuit.inputs)
        ios.update(circuit.outputs)
    arch = size_for_circuits(
        max(c.n_luts() for c in modes), len(ios), k=4,
        channel_width=8, slack=1.2,
    )
    rrg = build_rrg(arch)
    schedule = FlowOptions(seed=seed, inner_num=0.1).schedule()
    placements = [
        place_circuit(c, arch, seed=seed + i, schedule=schedule)
        for i, c in enumerate(modes)
    ]
    return pair_name, modes, arch, rrg, placements, schedule


def _wirelength(result):
    return sum(
        result.total_wirelength(m) for m in range(result.n_modes)
    )


def _assert_identical(a, b):
    assert a.iterations == b.iterations
    assert a.routes.keys() == b.routes.keys()
    for conn_id in a.routes:
        assert a.routes[conn_id].edges == b.routes[conn_id].edges, (
            f"connection {conn_id} diverged"
        )


class TestDispatch:
    def test_batched_flag_selects_batched_core(self):
        _n, modes, _a, rrg, _p, _s = _pair_fixture("fsm")
        router = PathFinderRouter(rrg, n_modes=1, batched=True)
        assert isinstance(router, BatchedPathFinderRouter)

    def test_scalar_escape_hatch_trumps_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
        _n, modes, _a, rrg, _p, _s = _pair_fixture("fsm")
        router = PathFinderRouter(rrg, n_modes=1, batched=True)
        assert not isinstance(router, BatchedPathFinderRouter)


class TestRouterQoR:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_untimed_within_gate(self, family):
        _n, modes, _a, rrg, placements, _s = _pair_fixture(family)
        for circuit, placement in zip(modes, placements):
            batched = route_lut_circuit(
                circuit, placement, rrg, batched=True
            )
            validate_routing(batched)
            reference = route_lut_circuit(circuit, placement, rrg)
            assert (
                _wirelength(batched)
                <= WL_TOLERANCE * _wirelength(reference)
            ), f"{family}/{circuit.name}"

    @pytest.mark.parametrize("family", FAMILIES)
    def test_timing_driven_within_gate(self, family):
        _n, modes, _a, rrg, placements, _s = _pair_fixture(family)
        timing = FlowOptions(
            seed=0, inner_num=0.1, timing_driven=True
        ).criticality()
        for circuit, placement in zip(modes, placements):
            batched = route_lut_circuit(
                circuit, placement, rrg, timing=timing, batched=True
            )
            validate_routing(batched)
            reference = route_lut_circuit(
                circuit, placement, rrg, timing=timing
            )
            assert (
                _wirelength(batched)
                <= WL_TOLERANCE * _wirelength(reference)
            ), f"{family}/{circuit.name}"

    def test_tunable_within_gate(self):
        from repro.core.combined_placement import (
            merge_with_combined_placement,
        )
        from repro.core.merge import MergeStrategy

        name, modes, arch, rrg, _p, schedule = _pair_fixture("xbar")
        tunable, _ = merge_with_combined_placement(
            name, modes, arch,
            strategy=MergeStrategy.WIRE_LENGTH, seed=0,
            schedule=schedule,
        )
        conns = tunable.site_connections()
        defaults = FlowOptions()
        kwargs = dict(
            net_affinity=defaults.net_affinity,
            bit_affinity=defaults.bit_affinity,
            sharing_passes=defaults.sharing_passes,
        )
        batched = route_tunable_circuit(
            rrg, conns, len(modes), batched=True, **kwargs
        )
        validate_routing(batched)
        reference = route_tunable_circuit(
            rrg, conns, len(modes), **kwargs
        )
        assert (
            _wirelength(batched)
            <= WL_TOLERANCE * _wirelength(reference)
        )


class TestWorkerIndependence:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_worker_count_cannot_change_results(self, family):
        _n, modes, _a, rrg, placements, _s = _pair_fixture(family)
        circuit, placement = modes[0], placements[0]
        results = {
            workers: route_lut_circuit(
                circuit, placement, rrg,
                batched=True, route_workers=workers,
            )
            for workers in (1, 2, 4)
        }
        _assert_identical(results[1], results[2])
        _assert_identical(results[1], results[4])

    def test_stats_accumulate(self):
        _n, modes, _a, rrg, placements, _s = _pair_fixture("fsm")
        stats = RouterStats()
        route_lut_circuit(
            modes[0], placements[0], rrg, batched=True, stats=stats
        )
        assert stats.searches > 0
        assert stats.drains > 0
        assert stats.pops >= stats.drains
        report = stats.as_dict()
        assert report["mean_frontier"] > 0


class TestBatchedFlagsThroughFlow:
    """Warm/cold stage-cache identity for both batched knobs."""

    @pytest.mark.parametrize(
        "options",
        [
            FlowOptions(seed=0, inner_num=0.1, batched_router=True),
            FlowOptions(seed=0, inner_num=0.1, batched_placer=True),
        ],
        ids=["batched_router", "batched_placer"],
    )
    def test_warm_rerun_reproduces_cold(self, options, tmp_path):
        from repro.core.flow import implement_multi_mode
        from repro.exec.cache import StageCache

        _n, modes, _a, _r, _p, _s = _pair_fixture("fsm")
        cache = StageCache(str(tmp_path / "cache"))
        cold = implement_multi_mode(
            "pair", modes, options=options, cache=cache
        )
        warm = implement_multi_mode(
            "pair", modes, options=options,
            cache=StageCache(str(tmp_path / "cache")),
        )
        assert cold.mdr.mean_wirelength() == warm.mdr.mean_wirelength()
        for strategy, result in cold.dcs.items():
            assert (
                result.mean_wirelength()
                == warm.dcs[strategy].mean_wirelength()
            )

    def test_batched_key_never_aliases_baseline(self, tmp_path):
        """A batched run must not serve a cached non-batched result
        (or vice versa) — the cores are not bit-identical."""
        from repro.core.flow import (
            dcs_stage_inputs,
            place_stage_inputs,
            route_lut_stage_inputs,
        )
        from repro.core.merge import MergeStrategy
        from repro.exec.fingerprint import fingerprint

        _n, modes, arch, _r, placements, _s = _pair_fixture("fsm")
        base = FlowOptions(seed=0, inner_num=0.1)
        router_on = FlowOptions(
            seed=0, inner_num=0.1, batched_router=True
        )
        placer_on = FlowOptions(
            seed=0, inner_num=0.1, batched_placer=True
        )
        circuit, placement = modes[0], placements[0]
        assert fingerprint(
            *route_lut_stage_inputs(circuit, placement, arch, base)
        ) != fingerprint(
            *route_lut_stage_inputs(
                circuit, placement, arch, router_on
            )
        )
        assert fingerprint(
            *place_stage_inputs(circuit, arch, base, 0)
        ) != fingerprint(
            *place_stage_inputs(circuit, arch, placer_on, 0)
        )
        assert fingerprint(
            *dcs_stage_inputs(
                "p", tuple(modes), arch,
                MergeStrategy.WIRE_LENGTH, base,
            )
        ) != fingerprint(
            *dcs_stage_inputs(
                "p", tuple(modes), arch,
                MergeStrategy.WIRE_LENGTH, router_on,
            )
        )


class TestBatchedAnnealer:
    def _problem_inputs(self, family="fsm"):
        _n, modes, arch, _r, _p, schedule = _pair_fixture(family)
        return modes[0], arch, schedule

    def test_deterministic_per_seed(self):
        circuit, arch, schedule = self._problem_inputs()
        a = place_circuit(
            circuit, arch, seed=5, schedule=schedule, batched=True
        )
        b = place_circuit(
            circuit, arch, seed=5, schedule=schedule, batched=True
        )
        assert a.sites == b.sites
        assert a.cost == b.cost

    @pytest.mark.parametrize("family", FAMILIES)
    def test_legal_and_within_gate(self, family):
        circuit, arch, schedule = self._problem_inputs(family)
        scalar = place_circuit(circuit, arch, seed=1, schedule=schedule)
        batched = place_circuit(
            circuit, arch, seed=1, schedule=schedule, batched=True
        )
        # Legality: a distinct site per cell, right site kinds.
        assert len(set(batched.sites.values())) == len(batched.sites)
        for cell, site in batched.sites.items():
            expected = "pad" if cell.startswith("pad:") else "clb"
            assert site.kind == expected
        assert batched.cost <= WL_TOLERANCE * scalar.cost

    def test_timing_driven_falls_back_to_scalar(self):
        """Timing-driven placement ignores the batched flag (batch
        pricing covers the wire-length cost only) — bit-identical to
        the scalar timing-driven run."""
        circuit, arch, schedule = self._problem_inputs()
        timing = FlowOptions(
            seed=0, inner_num=0.1, timing_driven=True
        ).criticality()
        scalar = place_circuit(
            circuit, arch, seed=2, schedule=schedule, timing=timing
        )
        batched = place_circuit(
            circuit, arch, seed=2, schedule=schedule, timing=timing,
            batched=True,
        )
        assert scalar.sites == batched.sites

    def test_batch_delta_matches_scalar_pricing(self):
        """Vector prices must equal delta_cost bit for bit on a
        frozen placement."""
        from repro.place.placer import (
            _SinglePlacementProblem,
            circuit_cells,
            circuit_nets,
        )
        from repro.utils.rng import make_rng

        circuit, arch, _schedule = self._problem_inputs()
        rng = make_rng(9, "batch-delta")
        logic, pads = circuit_cells(circuit)
        problem = _SinglePlacementProblem(
            arch, logic, pads, circuit_nets(circuit), rng
        )
        moves = []
        while len(moves) < 32:
            move = problem.propose(rlim=float("inf"), rng=rng)
            if move is not None:
                moves.append(move)
        vector = problem.batch_delta(moves)
        for move, batched_delta in zip(moves, vector):
            assert batched_delta == problem.delta_cost(move), move
