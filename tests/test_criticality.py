"""Tests of the criticality subsystem (repro.timing.criticality)."""

import pytest

from repro.arch.architecture import Site, size_for_circuits
from repro.arch.rrg import build_rrg
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.placer import place_circuit
from repro.timing.criticality import (
    CriticalityAnalyzer,
    CriticalityConfig,
    PlacementTimingCost,
    lut_connection_criticalities,
    sharpen,
    tunable_carriers,
    tunable_connection_criticalities,
)


def chain(n=3, registered_tail=False):
    """in -> b0 -> ... -> b(n-1) -> out."""
    c = LutCircuit("chain", 4)
    c.add_input("in")
    prev = "in"
    for i in range(n):
        c.add_block(
            f"b{i}", (prev,), TruthTable.var(0, 1),
            registered=registered_tail and i == n - 1,
        )
        prev = f"b{i}"
    c.add_output(prev)
    return c


def branchy():
    """A long path (i->x->y->out) next to a short one (i->z->out)."""
    c = LutCircuit("br", 4)
    c.add_input("i")
    c.add_block("x", ("i",), TruthTable.var(0, 1))
    c.add_block("y", ("x",), TruthTable.var(0, 1))
    c.add_block("z", ("i",), TruthTable.var(0, 1))
    c.add_output("y")
    c.add_output("z")
    return c


class TestSharpen:
    @pytest.mark.smoke
    def test_exponent_shapes(self):
        assert sharpen(0.5, 1.0) == pytest.approx(0.5)
        assert sharpen(0.5, 2.0) == pytest.approx(0.25)
        assert sharpen(0.9, 8.0) == pytest.approx(0.9 ** 8)

    def test_exponent_zero_disables_timing(self):
        """crit**0 must NOT read as 'everything critical'."""
        assert sharpen(0.99, 0.0) == 0.0
        assert sharpen(1.0, 0.0) == 0.0
        assert sharpen(0.5, -1.0) == 0.0

    def test_zero_criticality_stays_zero(self):
        assert sharpen(0.0, 2.0) == 0.0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CriticalityConfig(tradeoff=1.5)
        with pytest.raises(ValueError):
            CriticalityConfig(max_criticality=1.0)
        config = CriticalityConfig(exponent=2.0, tradeoff=0.25)
        assert config.sharpen(0.5) == pytest.approx(0.25)


class TestAnalyzer:
    def test_single_path_is_fully_critical(self):
        """Every connection of a one-path circuit has zero slack."""
        c = chain(4)
        analyzer = CriticalityAnalyzer(c)
        report = analyzer.analyze([0.55] * analyzer.n_arcs(), 1.0)
        assert report.max_delay == pytest.approx(4 * 1.0 + 5 * 0.55)
        assert all(
            s == pytest.approx(0.0) for s in report.slack
        )
        assert all(
            cr == pytest.approx(1.0) for cr in report.criticality
        )

    def test_short_branch_is_less_critical(self):
        c = branchy()
        analyzer = CriticalityAnalyzer(c)
        report = analyzer.analyze([0.55] * analyzer.n_arcs(), 1.0)
        crit = report.by_arc(analyzer.arcs)
        # The long path has zero slack everywhere.
        assert crit[("i", "x")] == pytest.approx(1.0)
        assert crit[("x", "y")] == pytest.approx(1.0)
        assert crit[("y", "pad:y")] == pytest.approx(1.0)
        # The short path has slack, hence lower criticality.
        assert crit[("i", "z")] < 1.0
        assert crit[("z", "pad:z")] < 1.0
        # Slack of the short path = the one-LUT depth difference.
        assert report.by_arc(analyzer.arcs)  # mapping is complete
        slack = dict(zip(analyzer.arcs, report.slack))
        assert slack[("i", "z")] == pytest.approx(1.0 + 0.55)

    def test_registers_cut_paths(self):
        c = LutCircuit("cut", 4)
        c.add_input("i")
        c.add_block("a", ("i",), TruthTable.var(0, 1))
        c.add_block("r", ("a",), TruthTable.var(0, 1),
                    registered=True)
        c.add_block("b", ("r",), TruthTable.var(0, 1))
        c.add_output("b")
        analyzer = CriticalityAnalyzer(c)
        report = analyzer.analyze([0.55] * analyzer.n_arcs(), 1.0)
        crit = report.by_arc(analyzer.arcs)
        # The launch-to-capture segment i->a->r dominates (2 LUTs);
        # r->b->out is a shorter, fresh path.
        assert report.max_delay == pytest.approx(2 * 1.0 + 2 * 0.55)
        assert crit[("i", "a")] == pytest.approx(1.0)
        assert crit[("a", "r")] == pytest.approx(1.0)
        assert crit[("r", "b")] < 1.0

    def test_dangling_block_has_zero_criticality(self):
        c = LutCircuit("dangle", 4)
        c.add_input("i")
        c.add_block("used", ("i",), TruthTable.var(0, 1))
        c.add_block("dead", ("i",), TruthTable.var(0, 1))
        c.add_output("used")
        analyzer = CriticalityAnalyzer(c)
        report = analyzer.analyze([0.55] * analyzer.n_arcs(), 1.0)
        crit = report.by_arc(analyzer.arcs)
        assert crit[("i", "dead")] == 0.0

    def test_delay_vector_length_checked(self):
        analyzer = CriticalityAnalyzer(chain(2))
        with pytest.raises(ValueError):
            analyzer.analyze([1.0])


class TestPlacementTimingCost:
    def _sites(self, circuit):
        """A simple linear placement as a site_of mapping."""
        site_of = {}
        x = 0
        for inp in circuit.inputs:
            site_of[f"pad:{inp}"] = Site("pad", x, 0, 0)
            x += 1
        for name in sorted(circuit.blocks):
            site_of[name] = Site("clb", x, 0)
            x += 1
        for out in circuit.outputs:
            site_of[f"pad:{out}"] = Site("pad", x, 0, 0)
            x += 3
        return site_of

    def test_incremental_matches_recompute(self):
        c = branchy()
        config = CriticalityConfig(exponent=2.0)
        cost = PlacementTimingCost(config)
        cost.add_circuit(c)
        site_of = self._sites(c)
        cost.bind(site_of)
        before = cost.cost
        assert before > 0
        # Move 'z' far away and commit the touched connections.
        site_of["z"] = Site("clb", 9, 7)
        touched = cost.conns_of(["z"])
        assert touched
        cost.commit(cost.eval_conns(touched))
        # The running cost equals a from-scratch weighted sum.
        fresh = sum(
            w * cost._conn_delay(i)
            for i, w in enumerate(cost.weight)
        )
        assert cost.cost == pytest.approx(fresh)
        assert cost.cost > before

    def test_refresh_reflects_new_delays(self):
        c = chain(2)
        cost = PlacementTimingCost(CriticalityConfig())
        cost.add_circuit(c)
        site_of = self._sites(c)
        cost.bind(site_of)
        # All arcs lie on the only path: fully critical (capped).
        cap = cost.config.max_criticality
        assert all(
            w == pytest.approx(cap) for w in cost.weight
        )


@pytest.fixture(scope="module")
def placed_chain():
    # Purely combinational: one path end to end, so every connection
    # must come out fully critical whatever the placement distances.
    circuit = chain(3)
    arch = size_for_circuits(
        circuit.n_luts(),
        len(circuit.inputs) + len(circuit.outputs),
        channel_width=8,
    )
    placement = place_circuit(circuit, arch, seed=1)
    return circuit, arch, placement


class TestRouterAdapters:
    def test_lut_connection_criticalities_keys(self, placed_chain):
        circuit, arch, placement = placed_chain
        rrg = build_rrg(arch)
        config = CriticalityConfig()
        crit = lut_connection_criticalities(
            circuit, placement, rrg, config
        )
        # One key per (net, sink site); all in [0, max_criticality].
        assert crit
        for (net, sink), weight in crit.items():
            assert net.startswith("m0:")
            assert isinstance(sink, int)
            assert 0.0 <= weight <= config.max_criticality
        # A single-path circuit is critical everywhere.
        assert all(
            w == pytest.approx(config.max_criticality)
            for w in crit.values()
        )

    def test_tunable_criticalities_cover_connections(self):
        from repro.core.merge import merge_by_index
        from repro.core.combined_placement import tplace

        m0 = chain(2)
        m1 = branchy()
        arch = size_for_circuits(
            max(m0.n_luts(), m1.n_luts()), 4, channel_width=8
        )
        tunable = merge_by_index("t", [m0, m1])
        tplace(tunable, arch, seed=0, randomize=True)
        rrg = build_rrg(arch)
        config = CriticalityConfig()
        crit = tunable_connection_criticalities(
            tunable, rrg, config
        )
        assert crit
        carriers = tunable_carriers(tunable)
        sources = {name for name, _snk in crit}
        assert sources <= (
            set(tunable.tluts) | set(tunable.pads)
        )
        # Every specialised cell resolves to a carrier.
        for mode in range(tunable.n_modes):
            circuit = tunable.specialize(mode)
            for block in circuit.blocks:
                assert (mode, block) in carriers
