"""Fingerprint coverage of FlowOptions over the stage cache keys.

Every dataclass field of :class:`FlowOptions` must be declared in
``OPTION_STAGE_COVERAGE``, and perturbing it must change exactly the
stage keys the declaration names.  Two failure modes are locked out:

* a newly added knob nobody classified (the totality check fails, so
  the author must decide which stage keys it belongs to — a knob
  absent from every per-stage key would silently alias stale cache
  entries);
* a knob leaking into a stage key it should not touch (the exactness
  check fails — e.g. router options must not orphan cached
  placements, which is what makes partial stage reuse work).
"""

import dataclasses

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.core.flow import (
    OPTION_STAGE_COVERAGE,
    FlowOptions,
    dcs_stage_inputs,
    lookahead_stage_inputs,
    multimode_stage_inputs,
    place_stage_inputs,
    route_lut_stage_inputs,
)
from repro.bench.campaign import campaign_stage_inputs
from repro.core.merge import MergeStrategy
from repro.exec.fingerprint import fingerprint
from repro.gen.spec import WorkloadSpec
from repro.place.placer import place_circuit

from tests.test_exec import tiny_circuit

STAGES = (
    "place", "route_lut", "dcs", "lookahead", "multimode", "campaign"
)

#: A perturbed (non-default) value per field; fields added to
#: FlowOptions must gain an entry here too (the totality assertion
#: below will say so).
PERTURBED = {
    "seed": 7,
    "k": 5,
    "slack": 1.4,
    "io_rat": 3,
    "fc_in": 0.75,
    "fc_out": 0.75,
    "channel_width": 12,
    "inner_num": 0.8,
    "tplace_refine": False,
    "max_width_retries": 9,
    "router_max_iterations": 17,
    "net_affinity": 0.9,
    "bit_affinity": 0.7,
    "sharing_passes": 5,
    "sizing": "search",
    "timing_driven": True,
    "criticality_exponent": 4.0,
    "timing_tradeoff": 0.25,
    "batched_router": True,
    "batched_placer": True,
    "router_lookahead": True,
    "partial_ripup": True,
}


@pytest.fixture(scope="module")
def stage_context():
    """Fixed non-option inputs shared by every key computation."""
    circuit = tiny_circuit("t")
    arch = FpgaArchitecture(nx=4, ny=4, channel_width=8)
    placement = place_circuit(circuit, arch, seed=0)
    return circuit, arch, placement


def stage_keys(options, context):
    """The four stage cache keys under *options* (fixed other inputs)."""
    circuit, arch, placement = context
    return {
        "place": fingerprint(
            *place_stage_inputs(circuit, arch, options, mode=0)
        ),
        "route_lut": fingerprint(
            *route_lut_stage_inputs(
                circuit, placement, arch, options
            )
        ),
        "dcs": fingerprint(
            *dcs_stage_inputs(
                "t", (circuit,), arch,
                MergeStrategy.WIRE_LENGTH, options,
            )
        ),
        "lookahead": fingerprint(
            *lookahead_stage_inputs(arch, options)
        ),
        "multimode": fingerprint(
            *multimode_stage_inputs(
                "t", (circuit,), options,
                (MergeStrategy.WIRE_LENGTH,),
            )
        ),
        # Campaign records embed the whole options object, so (like
        # "multimode") every FlowOptions field must perturb this key.
        "campaign": fingerprint(
            *campaign_stage_inputs(
                (WorkloadSpec.create("klut", "t", n_luts=4),),
                options,
                (MergeStrategy.WIRE_LENGTH,),
            )
        ),
    }


class TestOptionCoverage:
    @pytest.mark.smoke
    def test_every_field_is_classified(self):
        """Totality: each FlowOptions field must be declared (and the
        declaration must not name phantom fields)."""
        fields = {f.name for f in dataclasses.fields(FlowOptions)}
        assert fields == set(OPTION_STAGE_COVERAGE), (
            "every FlowOptions field needs an OPTION_STAGE_COVERAGE "
            "entry (and a PERTURBED value in this test)"
        )
        assert fields == set(PERTURBED)
        for field, stages in OPTION_STAGE_COVERAGE.items():
            assert stages <= set(STAGES), field
            assert "multimode" in stages, (
                f"{field}: the whole-result key embeds the options "
                "object, so every field perturbs it"
            )

    def test_perturbed_values_differ_from_defaults(self):
        defaults = FlowOptions()
        for field, value in PERTURBED.items():
            assert getattr(defaults, field) != value, field

    def test_each_field_perturbs_exactly_its_stages(
        self, stage_context
    ):
        baseline = stage_keys(FlowOptions(), stage_context)
        for field, value in PERTURBED.items():
            perturbed = stage_keys(
                dataclasses.replace(
                    FlowOptions(), **{field: value}
                ),
                stage_context,
            )
            expected = OPTION_STAGE_COVERAGE[field]
            for stage in STAGES:
                changed = perturbed[stage] != baseline[stage]
                assert changed == (stage in expected), (
                    f"{field}: expected to perturb {sorted(expected)}"
                    f", but {stage} key "
                    f"{'changed' if changed else 'did not change'}"
                )

    def test_timing_knobs_never_alias(self, stage_context):
        """Wirelength- and timing-driven runs get distinct keys for
        every per-stage cache, not only the whole-result one."""
        base = stage_keys(FlowOptions(), stage_context)
        timed = stage_keys(
            FlowOptions(timing_driven=True), stage_context
        )
        for stage in STAGES:
            assert base[stage] != timed[stage], stage
