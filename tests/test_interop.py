"""Tests for the VPR file-format interoperability layer."""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.interop import (
    DEFAULT_4LUT_ARCH,
    InteropError,
    format_arch,
    parse_arch,
    parse_net_file,
    parse_place_file,
    parse_route_file,
    write_net_file,
    write_place_file,
    write_route_file,
)
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.placer import place_circuit
from repro.route.troute import route_lut_circuit


def _xor2():
    return TruthTable.var(0, 2) ^ TruthTable.var(1, 2)


def _circuit(registered=True):
    c = LutCircuit("t", 4)
    c.add_input("a")
    c.add_input("b")
    c.add_block("n0", ("a", "b"), _xor2(), registered=registered)
    c.add_block("n1", ("n0", "a"), _xor2())
    c.add_output("n1")
    return c


class TestArchFile:
    def test_default_arch_parses(self):
        spec = parse_arch(DEFAULT_4LUT_ARCH)
        assert spec.io_rat == 2
        assert spec.subblock_lut_size == 4
        assert spec.fc_type == "fractional"
        assert spec.fc_input == 1.0
        assert spec.switch_block_type == "subset"
        assert spec.segment_length == 1
        assert ("0", "bottom") != spec.inpin_classes[0]  # ints parsed
        assert (0, "bottom") in spec.inpin_classes
        assert (1, "top") in spec.outpin_classes

    def test_roundtrip_preserves_interpretation(self):
        spec = parse_arch(DEFAULT_4LUT_ARCH)
        again = parse_arch(format_arch(spec))
        assert again.io_rat == spec.io_rat
        assert again.subblock_lut_size == spec.subblock_lut_size
        assert again.fc_output == spec.fc_output
        assert again.inpin_classes == spec.inpin_classes
        assert again.extra_lines == spec.extra_lines

    def test_to_architecture(self):
        spec = parse_arch(DEFAULT_4LUT_ARCH)
        arch = spec.to_architecture(6, 6, channel_width=10)
        assert arch.k == 4
        assert arch.nx == arch.ny == 6
        assert arch.channel_width == 10
        assert arch.io_rat == 2
        assert arch.fc_in == 1.0

    def test_absolute_fc_converted(self):
        spec = parse_arch(
            "Fc_type absolute\nFc_input 4\nFc_output 2\n"
        )
        arch = spec.to_architecture(4, 4, channel_width=8)
        assert arch.fc_in == pytest.approx(0.5)
        assert arch.fc_out == pytest.approx(0.25)

    def test_comments_and_blank_lines_ignored(self):
        spec = parse_arch("# hello\n\nio_rat 3  # trailing\n")
        assert spec.io_rat == 3

    def test_unknown_lines_preserved(self):
        spec = parse_arch("R_minW_nmos 1\nio_rat 2\n")
        assert "R_minW_nmos 1" in spec.extra_lines
        assert "R_minW_nmos 1" in format_arch(spec)

    def test_malformed_operand_raises(self):
        with pytest.raises(InteropError, match="io_rat"):
            parse_arch("io_rat many\n")

    def test_multi_subblock_rejected(self):
        with pytest.raises(InteropError, match="subblocks_per_clb"):
            parse_arch("subblocks_per_clb 2\n")

    def test_long_segments_rejected(self):
        with pytest.raises(InteropError, match="unit-length"):
            parse_arch("segment frequency: 1 length: 4\n")

    def test_bad_pin_class_raises(self):
        with pytest.raises(InteropError, match="class"):
            parse_arch("inpin 0 bottom\n")


class TestPlaceFile:
    @pytest.fixture(scope="class")
    def placed(self):
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=6, k=4)
        circuit = _circuit()
        placement = place_circuit(circuit, arch, seed=2)
        return arch, circuit, placement

    def test_roundtrip(self, placed):
        arch, _circuit_, placement = placed
        text = write_place_file(placement)
        parsed = parse_place_file(text, arch)
        assert parsed.sites == placement.sites

    def test_header_contents(self, placed):
        _arch, _c, placement = placed
        text = write_place_file(
            placement, netlist_file="x.net", arch_file="a.arch"
        )
        assert "Netlist file: x.net" in text
        assert (
            f"Array size: {placement.arch.nx} x "
            f"{placement.arch.ny} logic blocks" in text
        )

    def test_array_size_mismatch_raises(self, placed):
        arch, _c, placement = placed
        text = write_place_file(placement)
        other = FpgaArchitecture(nx=5, ny=5, channel_width=6, k=4)
        with pytest.raises(InteropError, match="array size"):
            parse_place_file(text, other)

    def test_duplicate_site_raises(self, placed):
        arch, *_ = placed
        text = (
            "Array size: 4 x 4 logic blocks\n"
            "cell_a 1 1 0\n"
            "cell_b 1 1 0\n"
        )
        with pytest.raises(InteropError, match="already holds"):
            parse_place_file(text, arch)

    def test_duplicate_cell_raises(self, placed):
        arch, *_ = placed
        text = (
            "Array size: 4 x 4 logic blocks\n"
            "cell_a 1 1 0\n"
            "cell_a 2 2 0\n"
        )
        with pytest.raises(InteropError, match="placed twice"):
            parse_place_file(text, arch)

    def test_off_grid_raises(self, placed):
        arch, *_ = placed
        text = (
            "Array size: 4 x 4 logic blocks\n"
            "cell_a 9 9 0\n"
        )
        with pytest.raises(InteropError, match="neither"):
            parse_place_file(text, arch)

    def test_pad_slot_range_checked(self, placed):
        arch, *_ = placed
        text = (
            "Array size: 4 x 4 logic blocks\n"
            "pad:a 0 2 7\n"
        )
        with pytest.raises(InteropError, match="slot"):
            parse_place_file(text, arch)

    def test_missing_header_raises(self, placed):
        arch, *_ = placed
        with pytest.raises(InteropError, match="Array size"):
            parse_place_file("cell_a 1 1 0\n", arch)


class TestNetFile:
    def test_structure_roundtrip(self):
        circuit = _circuit(registered=True)
        text = write_net_file(circuit)
        structure = parse_net_file(text, k=4)
        assert structure.matches_circuit(circuit)

    def test_combinational_blocks_have_open_clock(self):
        circuit = _circuit(registered=False)
        text = write_net_file(circuit)
        structure = parse_net_file(text, k=4)
        assert structure.blocks["n0"][1] is False
        assert structure.matches_circuit(circuit)

    def test_open_pins_for_narrow_luts(self):
        circuit = _circuit()
        text = write_net_file(circuit)
        # n0 has 2 inputs on a 4-LUT: two opens in the pinlist.
        clb_lines = [
            line for line in text.splitlines()
            if line.startswith("pinlist:") and "n0" in line
        ]
        assert any("open open" in line for line in clb_lines)

    def test_mismatched_output_pin_raises(self):
        text = ".clb n0\npinlist: a b open open WRONG open\n"
        with pytest.raises(InteropError, match="match block name"):
            parse_net_file(text, k=4)

    def test_wrong_pinlist_arity_raises(self):
        text = ".clb n0\npinlist: a n0 open\n"
        with pytest.raises(InteropError, match="pinlist"):
            parse_net_file(text, k=4)

    def test_pinlist_outside_block_raises(self):
        with pytest.raises(InteropError, match="outside"):
            parse_net_file("pinlist: a\n", k=4)

    def test_unknown_keyword_raises(self):
        with pytest.raises(InteropError, match="unknown keyword"):
            parse_net_file(".frob x\n", k=4)

    def test_structure_detects_mismatch(self):
        circuit = _circuit()
        structure = parse_net_file(write_net_file(circuit), k=4)
        other = _circuit()
        block = other.blocks["n0"]
        other.blocks["n0"] = block.with_inputs(
            ("b", "a"), block.table
        )
        assert not structure.matches_circuit(other)


class TestRouteFile:
    @pytest.fixture(scope="class")
    def routed(self):
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=6, k=4)
        circuit = _circuit()
        placement = place_circuit(circuit, arch, seed=2)
        rrg = build_rrg(arch)
        routing = route_lut_circuit(circuit, placement, rrg)
        return rrg, routing

    def test_roundtrip_node_sets(self, routed):
        rrg, routing = routed
        text = write_route_file(routing)
        parsed = parse_route_file(text, rrg)
        assert set(parsed) == {0}
        for route in routing.routes.values():
            net = route.request.net
            assert set(route.nodes()) <= parsed[0][net]

    def test_wire_usage_preserved(self, routed):
        rrg, routing = routed
        parsed = parse_route_file(write_route_file(routing), rrg)
        from repro.arch.rrg import WIRE

        wires = {
            n
            for nets in parsed[0].values()
            for n in nets
            if rrg.node_kind[n] == WIRE
        }
        assert wires == routing.wires_used(0)

    def test_multi_mode_sections(self, routed):
        rrg, _routing = routed
        from repro.route.router import (
            PathFinderRouter,
            RouteRequest,
        )

        reqs = [
            RouteRequest(0, "a", rrg.clb_opin[(1, 1)],
                         rrg.clb_sink[(3, 3)], frozenset((0,))),
            RouteRequest(1, "b", rrg.clb_opin[(2, 2)],
                         rrg.clb_sink[(4, 4)], frozenset((1,))),
        ]
        result = PathFinderRouter(rrg, n_modes=2).route(reqs)
        text = write_route_file(result)
        assert "Mode 0:" in text and "Mode 1:" in text
        parsed = parse_route_file(text, rrg)
        assert "a" in parsed[0] and "a" not in parsed[1]
        assert "b" in parsed[1] and "b" not in parsed[0]

    def test_missing_header_raises(self, routed):
        rrg, _routing = routed
        with pytest.raises(InteropError, match="Routing"):
            parse_route_file("Net 0 (x)\n", rrg)

    def test_node_outside_net_raises(self, routed):
        rrg, _routing = routed
        text = "Routing:\nMode 0:\n  CHANX (1,1)  Track: 0\n"
        with pytest.raises(InteropError, match="outside"):
            parse_route_file(text, rrg)

    def test_unknown_node_raises(self, routed):
        rrg, _routing = routed
        text = (
            "Routing:\nMode 0:\nNet 0 (x)\n"
            "  CHANX (99,99)  Track: 0\n"
        )
        with pytest.raises(InteropError, match="no RRG node"):
            parse_route_file(text, rrg)

    def test_garbage_line_raises(self, routed):
        rrg, _routing = routed
        with pytest.raises(InteropError, match="unrecognised"):
            parse_route_file("Routing:\nwat\n", rrg)
