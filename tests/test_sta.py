"""Tests for routed static timing analysis (repro.timing)."""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.placer import place_circuit
from repro.place.timing import mdr_timing
from repro.route.router import PathFinderRouter, RouteRequest
from repro.route.troute import route_lut_circuit
from repro.timing import (
    DelayModel,
    connection_delays_for_mode,
    dcs_arc_delays,
    mdr_arc_delays,
    net_delay_tree,
    routed_critical_path,
    timing_comparison,
)


@pytest.fixture(scope="module")
def fabric():
    arch = FpgaArchitecture(nx=4, ny=4, channel_width=6, k=4)
    return arch, build_rrg(arch)


def _xor2():
    return TruthTable.var(0, 2) ^ TruthTable.var(1, 2)


def _small_circuit(registered=False):
    c = LutCircuit("t", 4)
    c.add_input("a")
    c.add_input("b")
    c.add_block("n0", ("a", "b"), _xor2(), registered=registered)
    c.add_block("n1", ("n0", "a"), _xor2())
    c.add_output("n1")
    return c


class TestDelayModel:
    def test_defaults_validate(self):
        DelayModel().validate()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DelayModel(wire_delay=-1.0).validate()

    def test_path_delay_counts_switches_and_wires(self, fabric):
        _arch, g = fabric
        req = RouteRequest(
            0, "n", g.clb_opin[(1, 1)], g.clb_sink[(3, 3)],
            frozenset((0,)),
        )
        result = PathFinderRouter(g).route([req])
        route = result.routes[0]
        model = DelayModel()
        expected = model.node_delay(g, route.edges[0][0])
        for _u, v, bit in route.edges:
            expected += model.node_delay(g, v)
            if bit >= 0:
                expected += model.switch_delay
        assert model.path_delay(g, route.edges) == pytest.approx(
            expected
        )

    def test_zero_model_gives_zero_delay(self, fabric):
        _arch, g = fabric
        req = RouteRequest(
            0, "n", g.clb_opin[(1, 1)], g.clb_sink[(2, 2)],
            frozenset((0,)),
        )
        result = PathFinderRouter(g).route([req])
        model = DelayModel(
            lut_delay=0, pin_delay=0, wire_delay=0, switch_delay=0
        )
        assert model.path_delay(g, result.routes[0].edges) == 0.0


class TestNetDelayTree:
    def test_single_route_matches_path_delay(self, fabric):
        _arch, g = fabric
        req = RouteRequest(
            0, "n", g.clb_opin[(1, 1)], g.clb_sink[(4, 4)],
            frozenset((0,)),
        )
        result = PathFinderRouter(g).route([req])
        model = DelayModel()
        tree = net_delay_tree(result, 0, "n", model)
        assert tree[req.sink] == pytest.approx(
            model.path_delay(g, result.routes[0].edges)
        )

    def test_branch_delays_dominated_by_trunk(self, fabric):
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "n", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 4)], frozenset((0,))),
            RouteRequest(1, "n", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 3)], frozenset((0,))),
        ]
        result = PathFinderRouter(g).route(reqs)
        tree = net_delay_tree(result, 0, "n")
        assert reqs[0].sink in tree and reqs[1].sink in tree
        assert all(d >= 0 for d in tree.values())

    def test_absent_net_gives_empty_tree(self, fabric):
        _arch, g = fabric
        req = RouteRequest(
            0, "n", g.clb_opin[(1, 1)], g.clb_sink[(2, 2)],
            frozenset((0,)),
        )
        result = PathFinderRouter(g).route([req])
        assert net_delay_tree(result, 0, "other") == {}
        # Mode 1 does not exist for this request either.
        assert net_delay_tree(result, 1, "n") == {}

    def test_kahn_matches_dijkstra_reference(self, fabric):
        """Regression for the Dijkstra -> Kahn rewrite: on a
        trunk-shared multi-sink union the one-pass topological
        relaxation must produce the exact labels a priority-queue
        search does."""
        import heapq

        _arch, g = fabric
        reqs = [
            RouteRequest(i, "n", g.clb_opin[(1, 1)], sink,
                         frozenset((0,)))
            for i, sink in enumerate((
                g.clb_sink[(4, 4)], g.clb_sink[(4, 3)],
                g.clb_sink[(3, 4)], g.clb_sink[(1, 4)],
            ))
        ]
        result = PathFinderRouter(g).route(reqs)
        model = DelayModel()
        tree = net_delay_tree(result, 0, "n", model)

        edges = {}
        for route in result.routes.values():
            for u, v, bit in route.edges:
                edges.setdefault(u, []).append((v, bit))
        source = reqs[0].source
        dist = {source: model.node_delay(g, source)}
        heap = [(dist[source], source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for nxt, bit in edges.get(node, ()):
                nd = d + model.edge_delay(g, nxt, bit)
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    heapq.heappush(heap, (nd, nxt))
        assert tree == dist

    def test_connection_delays_cover_all_routes(self, fabric):
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(3, 3)], frozenset((0,))),
            RouteRequest(1, "b", g.clb_opin[(2, 2)],
                         g.clb_sink[(4, 4)], frozenset((0,))),
        ]
        result = PathFinderRouter(g).route(reqs)
        delays = connection_delays_for_mode(result, 0)
        assert set(delays) == {
            ("a", reqs[0].sink), ("b", reqs[1].sink)
        }
        assert all(d > 0 for d in delays.values())


class TestRoutedCriticalPath:
    def _route(self, circuit, fabric, seed=3):
        arch, g = fabric
        placement = place_circuit(circuit, arch, seed=seed)
        routing = route_lut_circuit(circuit, placement, g)
        return placement, routing

    def test_combinational_chain(self, fabric):
        circuit = _small_circuit()
        placement, routing = self._route(circuit, fabric)
        arcs = mdr_arc_delays(circuit, placement, routing)
        report = routed_critical_path(circuit, arcs)
        # Two LUT levels at least: delay > 2 * lut_delay.
        assert report.critical_delay > 2.0
        assert report.critical_path[-1] in ("n1", "n0")
        assert report.n_endpoints == 1

    def test_registered_block_splits_paths(self, fabric):
        comb = _small_circuit(registered=False)
        reg = _small_circuit(registered=True)
        p_comb, r_comb = self._route(comb, fabric)
        p_reg, r_reg = self._route(reg, fabric)
        comb_report = routed_critical_path(
            comb, mdr_arc_delays(comb, p_comb, r_comb)
        )
        reg_report = routed_critical_path(
            reg, mdr_arc_delays(reg, p_reg, r_reg)
        )
        # Registering n0 adds an endpoint and can only shorten the
        # longest combinational stretch.
        assert reg_report.n_endpoints == 2
        assert reg_report.critical_delay <= comb_report.critical_delay

    def test_missing_arc_raises(self):
        circuit = _small_circuit()
        with pytest.raises(KeyError, match="n0 -> n1|a -> n0|b -> n0"):
            routed_critical_path(circuit, {})

    def test_routed_delay_at_least_lut_depth(self, fabric):
        circuit = _small_circuit()
        placement, routing = self._route(circuit, fabric)
        arcs = mdr_arc_delays(circuit, placement, routing)
        zero_wire = DelayModel(
            pin_delay=0, wire_delay=0, switch_delay=0
        )
        report = routed_critical_path(circuit, arcs, zero_wire)
        # Wires free: critical delay collapses to logic depth... but
        # the arcs were computed with the default model, so it stays
        # above pure depth.
        assert report.critical_delay >= 2.0

    def test_routed_tracks_placement_estimate(self, fabric):
        """Routed delay is finite and at least the placement-level
        estimate's logic depth contribution."""
        circuit = _small_circuit()
        placement, routing = self._route(circuit, fabric)
        routed = routed_critical_path(
            circuit, mdr_arc_delays(circuit, placement, routing)
        )
        placed = mdr_timing(circuit, placement)
        # The router can only add detours on top of Manhattan distance.
        assert routed.critical_delay >= 0.6 * placed.critical_delay


class TestDcsArcDelays:
    def test_merged_modes_have_full_arc_cover(self):
        from repro.core.combined_placement import (
            merge_with_combined_placement,
        )
        from repro.core.merge import MergeStrategy
        from repro.route.troute import route_tunable_circuit

        def chain(name, depth, registered):
            c = LutCircuit(name, 4)
            c.add_input("x")
            c.add_input("y")
            prev = ("x", "y")
            for i in range(depth):
                c.add_block(
                    f"{name}_n{i}", prev, _xor2(),
                    registered=registered and i == 0,
                )
                prev = (f"{name}_n{i}", "x")
            c.add_output(f"{name}_n{depth - 1}")
            return c

        modes = [chain("m0", 4, False), chain("m1", 5, True)]
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=8, k=4)
        tunable, _ = merge_with_combined_placement(
            "mm", modes, arch,
            strategy=MergeStrategy.WIRE_LENGTH, seed=1,
        )
        g = build_rrg(arch)
        routing = route_tunable_circuit(
            g, tunable.site_connections(), 2
        )
        for mode, original in enumerate(modes):
            arcs = dcs_arc_delays(tunable, routing, mode)
            specialized = tunable.specialize(mode)
            report = routed_critical_path(specialized, arcs)
            assert report.critical_delay > 0
            assert report.critical_path

    def test_timing_comparison_ratios(self):
        from repro.timing.sta import StaReport

        mdr = [StaReport(2.0, 1, ("a",)), StaReport(4.0, 1, ("b",))]
        dcs = [StaReport(3.0, 1, ("a",)), StaReport(4.0, 1, ("b",))]
        comp = timing_comparison(mdr, dcs)
        assert comp.ratios() == (1.5, 1.0)
        assert comp.mean_ratio == pytest.approx(1.25)
        assert comp.worst_ratio == pytest.approx(1.5)

    def test_comparison_requires_matching_lengths(self):
        from repro.timing.sta import StaReport

        with pytest.raises(ValueError):
            timing_comparison([StaReport(1.0, 1, ())], [])
