"""Tests for the reconfiguration-cost accounting."""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.core.reconfig import (
    BreakdownRow,
    ReconfigCost,
    breakdown_rows,
    dcs_cost,
    diff_cost,
    mdr_cost,
    speedup,
    varying_bits,
)


class TestVaryingBits:
    def test_empty(self):
        assert varying_bits([]) == set()

    def test_identical_sets_do_not_vary(self):
        assert varying_bits([{1, 2}, {1, 2}]) == set()

    def test_symmetric_difference_two_modes(self):
        assert varying_bits([{1, 2, 3}, {2, 3, 4}]) == {1, 4}

    def test_three_modes(self):
        # Bit 1 on everywhere -> static one; bit 9 on nowhere; others
        # vary.
        sets = [{1, 2}, {1, 3}, {1}]
        assert varying_bits(sets) == {2, 3}


class TestCosts:
    def setup_method(self):
        self.arch = FpgaArchitecture(nx=3, ny=3, channel_width=4)
        self.rrg = build_rrg(self.arch)

    def test_mdr_counts_whole_region(self):
        cost = mdr_cost(self.arch, self.rrg)
        assert cost.lut_bits == self.arch.total_lut_bits()
        assert cost.routing_bits == self.rrg.n_bits
        assert cost.total == cost.lut_bits + cost.routing_bits

    def test_diff_counts_differing_routing_only(self):
        cost = diff_cost(self.arch, [{1, 2, 3}, {3, 4}])
        assert cost.lut_bits == self.arch.total_lut_bits()
        assert cost.routing_bits == 3  # {1, 2, 4}

    def test_dcs_same_arithmetic_as_diff(self):
        bits = [{1, 2}, {2, 5}]
        assert dcs_cost(self.arch, bits) == diff_cost(self.arch, bits)

    def test_ordering_invariant(self):
        """MDR >= Diff always (Diff counts a subset of region bits)."""
        mdr = mdr_cost(self.arch, self.rrg)
        diff = diff_cost(self.arch, [{1, 2, 3}, {3, 4}])
        assert mdr.total >= diff.total

    def test_speedup(self):
        a = ReconfigCost(lut_bits=100, routing_bits=900)
        b = ReconfigCost(lut_bits=100, routing_bits=100)
        assert speedup(a, b) == pytest.approx(5.0)

    def test_speedup_zero_rejected(self):
        a = ReconfigCost(10, 10)
        with pytest.raises(ValueError):
            speedup(a, ReconfigCost(0, 0))

    def test_routing_fraction(self):
        c = ReconfigCost(lut_bits=25, routing_bits=75)
        assert c.routing_fraction() == pytest.approx(0.75)


class TestBreakdown:
    def test_rows(self):
        mdr = ReconfigCost(10, 90)
        diff = ReconfigCost(10, 20)
        dcs = ReconfigCost(10, 5)
        rows = breakdown_rows(mdr, diff, dcs, prefix="RegExp-")
        assert [r.label for r in rows] == [
            "RegExp-MDR", "RegExp-Diff", "RegExp-DCS",
        ]
        assert rows[0].percentages()["routing"] == pytest.approx(90.0)
        assert rows[2].percentages()["lut"] == pytest.approx(
            100 * 10 / 15
        )

    def test_empty_row(self):
        row = BreakdownRow("x", 0, 0)
        assert row.percentages() == {"lut": 0.0, "routing": 0.0}
