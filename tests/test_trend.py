"""Tests for the QoR trend database (repro.bench.trend).

Synthetic campaign records keep these fast (no flow runs except the
one CLI end-to-end test): the ingest/window/gate/report machinery is
exercised on hand-built histories, including the ISSUE's acceptance
demo — the gate passes on its own stable window and fails, naming the
metric, once a 10% wirelength drift is injected.
"""

import copy
import json

import pytest

from repro.bench.trend import (
    DEFAULT_MIN_HISTORY,
    TREND_METRICS,
    TrendError,
    connect,
    drift_report,
    evaluate,
    history_table,
    ingest,
    latest_ingest,
    load_records_jsonl,
    seed_metrics,
)


def make_record(suite="klut", variant="wirelength", seed=0,
                wl=100, fmax=0.25, speedup=4.0,
                campaign="trend-test"):
    """A minimal campaign record carrying every gated metric."""
    return {
        "schema": 3,
        "campaign": campaign,
        "suite": suite,
        "variant": variant,
        "seed": seed,
        "mdr": {"wirelength": [wl, wl], "fmax": [fmax, fmax]},
        "dcs": {
            "wire_length": {
                "wirelength": [int(wl * 1.2)],
                "fmax": [fmax * 0.9],
                "speedup": speedup,
                "frequency_ratios": [1.0, 1.1],
            }
        },
    }


def nightly_records(scale=1.0, campaign="trend-test"):
    """One night's records: two suites x two seeds."""
    return [
        make_record(suite=suite, seed=seed, wl=int(wl * scale),
                    campaign=campaign)
        for suite, wl in (("klut", 100), ("xbar", 300))
        for seed in (0, 1)
    ]


@pytest.fixture
def db(tmp_path):
    conn = connect(str(tmp_path / "trend.db"))
    yield conn
    conn.close()


def fill_history(conn, nights, campaign="trend-test"):
    for night in range(nights):
        ingest(conn, nightly_records(campaign=campaign),
               commit=f"commit-{night}", label=f"night {night}")


class TestIngest:
    def test_rows_per_series_and_metric(self, db):
        result = ingest(db, nightly_records(), commit="c0")
        # 2 suites x 1 variant x 2 seeds x 6 metrics.
        assert result.n_rows == 2 * 2 * len(TREND_METRICS)
        assert result.campaign == "trend-test"
        assert not result.replaced

    def test_seed_metrics_match_qor_metrics_semantics(self):
        metrics = seed_metrics(nightly_records())
        assert set(metrics) == {
            ("klut", "wirelength", 0), ("klut", "wirelength", 1),
            ("xbar", "wirelength", 0), ("xbar", "wirelength", 1),
        }
        row = metrics[("klut", "wirelength", 0)]
        assert set(row) == set(TREND_METRICS)
        assert row["mdr_wirelength"] == 200  # [100, 100] summed
        assert row["mean_speedup"] == pytest.approx(4.0)

    def test_reingest_same_commit_replaces(self, db):
        ingest(db, nightly_records(), commit="c0")
        result = ingest(db, nightly_records(), commit="c0")
        assert result.replaced
        assert len(history_table(db)) == 1
        # The replacement is the newest ingest under a fresh id.
        assert latest_ingest(db)[0] == result.ingest_id

    def test_mixed_campaign_and_empty_refused(self, db):
        with pytest.raises(TrendError, match="no records"):
            ingest(db, [], commit="c0")
        mixed = nightly_records() + nightly_records(
            campaign="other"
        )
        with pytest.raises(TrendError, match="2 campaigns"):
            ingest(db, mixed, commit="c0")

    def test_schema_version_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "trend.db")
        conn = connect(path)
        conn.execute(
            "UPDATE meta SET value = '999' "
            "WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(TrendError, match="v999"):
            connect(path)

    def test_load_records_jsonl_refuses_torn_lines(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text(
            json.dumps(make_record()) + "\n" + '{"torn": tru'
        )
        with pytest.raises(TrendError, match="unparsable"):
            load_records_jsonl(str(path))
        path.write_text(json.dumps(make_record()) + "\n\n")
        assert len(load_records_jsonl(str(path))) == 1


class TestGate:
    def test_passes_on_stable_window(self, db):
        fill_history(db, 4)
        outcome = evaluate(db, window=7)
        assert outcome.passed
        assert len(outcome.window_ids) == 3
        # 4 series x 6 metrics all checked.
        assert len(outcome.drifts) == 4 * len(TREND_METRICS)
        assert all(
            d.status() in ("ok", "new") for d in outcome.drifts
        )

    def test_fails_on_injected_wirelength_drift(self, db):
        """The acceptance demo: +10% wirelength beyond a 5%
        tolerance fails the gate with the metric named."""
        fill_history(db, 4)
        ingest(db, nightly_records(scale=1.10),
               commit="commit-bad")
        outcome = evaluate(db, window=7)
        assert not outcome.passed
        assert any(
            "mdr_wirelength" in violation
            for violation in outcome.violations
        )
        # Every seed of every suite drifted; each is its own series.
        regressed = [
            d for d in outcome.drifts
            if d.status() == "regressed"
        ]
        assert {d.suite for d in regressed} == {"klut", "xbar"}

    def test_gate_is_deterministic(self, db):
        fill_history(db, 3)
        ingest(db, nightly_records(scale=1.2), commit="bad")
        first = evaluate(db, window=7)
        second = evaluate(db, window=7)
        assert first.violations == second.violations
        assert [
            (d.series, d.metric, d.value, d.window)
            for d in first.drifts
        ] == [
            (d.series, d.metric, d.value, d.window)
            for d in second.drifts
        ]

    def test_fresh_database_passes_as_new(self, db):
        """min_history: the first nights must not fail the gate."""
        ingest(db, nightly_records(), commit="c0")
        outcome = evaluate(db, window=7)
        assert outcome.passed
        assert all(d.status() == "new" for d in outcome.drifts)
        ingest(db, nightly_records(scale=2.0), commit="c1")
        # One history point < DEFAULT_MIN_HISTORY (2): still new.
        assert DEFAULT_MIN_HISTORY == 2
        assert evaluate(db, window=7).passed

    def test_window_excludes_older_history(self, db):
        """Only the last N previous ingests form the reference: an
        ancient cheap era outside the window cannot fail today."""
        for night in range(3):
            ingest(db, nightly_records(scale=1.0),
                   commit=f"old-{night}")
        for night in range(3):
            ingest(db, nightly_records(scale=1.5),
                   commit=f"new-{night}")
        ingest(db, nightly_records(scale=1.5), commit="today")
        # Window 3 sees only the 1.5x era: today is flat.
        assert evaluate(db, window=3).passed
        # Window 6 mixes eras; median(1.0,1.0,1.0,1.5,1.5,1.5)=1.25,
        # and 1.5 vs 1.25 is a +20% wirelength drift: fails.
        assert not evaluate(db, window=6).passed

    def test_improvement_never_fails(self, db):
        fill_history(db, 4)
        ingest(db, nightly_records(scale=0.7), commit="faster")
        outcome = evaluate(db, window=7)
        assert outcome.passed
        improved = [
            d for d in outcome.drifts if d.status() == "improved"
        ]
        assert improved

    def test_one_bad_night_in_history_is_shrugged_off(self, db):
        """Median window: a single regressed night in the history
        barely moves the reference, unlike a mean."""
        fill_history(db, 3)
        ingest(db, nightly_records(scale=1.5), commit="bad-night")
        ingest(db, nightly_records(scale=1.0), commit="recovered")
        assert evaluate(db, window=7).passed

    def test_campaign_isolation_and_errors(self, db):
        fill_history(db, 2, campaign="a")
        fill_history(db, 2, campaign="b")
        assert evaluate(db, campaign="a").campaign == "a"
        assert latest_ingest(db)[1] == "b"
        with pytest.raises(TrendError, match="no ingests"):
            evaluate(db, campaign="missing")
        empty = connect(":memory:")
        with pytest.raises(TrendError, match="empty"):
            latest_ingest(empty)
        empty.close()

    def test_lower_is_worse_direction(self, db):
        """Fmax/speedup gate on drops, not growth."""
        fill_history(db, 3)
        records = [
            dict(record) for record in nightly_records()
        ]
        for record in records:
            record["dcs"] = copy.deepcopy(record["dcs"])
            row = record["dcs"]["wire_length"]
            row["speedup"] = row["speedup"] * 0.5
        ingest(db, records, commit="slow")
        outcome = evaluate(db, window=7)
        assert any(
            "mean_speedup" in violation
            for violation in outcome.violations
        )


class TestReport:
    def test_markdown_drift_table(self, db):
        fill_history(db, 4)
        ingest(db, nightly_records(scale=1.10), commit="bad",
               label="night X")
        outcome = evaluate(db, window=7)
        text = drift_report(outcome)
        assert text.startswith("# QoR trend report")
        assert "**FAIL**" in text
        assert "**REGRESSED**" in text
        assert "| klut/wirelength/s0 | mdr_wirelength |" in text
        assert "## Regressions" in text
        # Stable series render as ok with an explicit drift column.
        assert "| ok |" in text

    def test_report_on_passing_window(self, db):
        fill_history(db, 3)
        text = drift_report(evaluate(db, window=7))
        assert "**PASS**" in text
        assert "## Regressions" not in text


class TestTrendCli:
    def test_ingest_gate_report_round_trip(self, tmp_path, capsys):
        """End-to-end through the CLI on a real (tiny) campaign:
        three ingests pass the gate; a hand-drifted fourth fails it
        with exit 1 and a FAIL report."""
        from repro.cli import main

        jsonl = tmp_path / "records.jsonl"
        db = str(tmp_path / "qor_trend.db")
        assert main([
            "campaign", "--suites", "klut", "--scale", "tiny",
            "--pairs-per-suite", "1", "--effort", "0.05",
            "--name", "clitrend",
            "--cache-dir", str(tmp_path / "cache"),
            "--jsonl", str(jsonl),
            "--summary", str(tmp_path / "summary.json"),
        ]) == 0
        for night in range(3):
            assert main([
                "trend", "ingest", str(jsonl), "--db", db,
                "--commit", f"night-{night}",
            ]) == 0
        assert main([
            "trend", "gate", "--db", db, "--window", "7"
        ]) == 0
        assert "trend-gate: OK" in capsys.readouterr().out

        drifted = []
        for line in jsonl.read_text().splitlines():
            record = json.loads(line)
            record["mdr"]["wirelength"] = [
                int(wl * 1.10) + 1
                for wl in record["mdr"]["wirelength"]
            ]
            drifted.append(json.dumps(record))
        bad = tmp_path / "drifted.jsonl"
        bad.write_text("\n".join(drifted) + "\n")
        assert main([
            "trend", "ingest", str(bad), "--db", db,
            "--commit", "night-bad",
        ]) == 0
        assert main([
            "trend", "gate", "--db", db, "--window", "7"
        ]) == 1
        assert "mdr_wirelength" in capsys.readouterr().err
        report = tmp_path / "report.md"
        assert main([
            "trend", "report", "--db", db, "-o", str(report)
        ]) == 0
        assert "**FAIL**" in report.read_text()

    def test_gate_and_report_on_empty_db(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "empty.db")
        assert main(["trend", "gate", "--db", db]) == 2
        assert "empty" in capsys.readouterr().err

    def test_ingest_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "trend", "ingest", str(tmp_path / "nope.jsonl"),
            "--db", str(tmp_path / "t.db"),
        ]) == 2
        assert "error" in capsys.readouterr().err
