"""Property-based tests for the extension modules.

Covers the mode-register encodings, the routed delay model, the
minimum-width search contract, and the VPR interop round-trips.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.core.modes import ENCODING_STYLES, ModeEncoding, gray_code
from repro.interop import parse_place_file, write_place_file
from repro.place.placer import Placement
from repro.timing import DelayModel

_styles = st.sampled_from(ENCODING_STYLES)


class TestEncodingProperties:
    @given(n=st.integers(1, 10), style=_styles)
    @settings(max_examples=60, deadline=None)
    def test_codes_distinct_and_in_range(self, n, style):
        enc = ModeEncoding(n, style=style)
        codes = enc.used_codes()
        assert len(set(codes)) == n
        assert all(0 <= c < (1 << enc.n_bits) for c in codes)

    @given(n=st.integers(2, 10), style=_styles,
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_products_select_exactly_one_mode(self, n, style, data):
        enc = ModeEncoding(n, style=style)
        mode = data.draw(st.integers(0, n - 1))
        for other in range(n):
            assert enc.evaluate_product(
                mode, enc.code(other)
            ) == (other == mode)

    @given(n=st.integers(2, 10), style=_styles, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_register_hamming_is_metric_like(self, n, style, data):
        enc = ModeEncoding(n, style=style)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        assert enc.register_hamming(a, b) == enc.register_hamming(
            b, a
        )
        assert (enc.register_hamming(a, b) == 0) == (a == b)

    @given(k=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_gray_code_bijective_and_adjacent(self, k):
        codes = [gray_code(i) for i in range(1 << k)]
        assert len(set(codes)) == len(codes)
        for a, b in zip(codes, codes[1:]):
            assert bin(a ^ b).count("1") == 1


class TestDelayModelProperties:
    @given(
        wire=st.floats(0, 2), switch=st.floats(0, 2),
        pin=st.floats(0, 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_path_delay_monotone_in_parameters(self, wire, switch,
                                               pin):
        arch = FpgaArchitecture(nx=3, ny=3, channel_width=4, k=4)
        rrg = build_rrg(arch)
        # A deterministic path: OPIN -> wire -> IPIN -> SINK.
        opin = rrg.clb_opin[(1, 1)]
        wire_node, bit0 = rrg.adjacency[opin][0]
        ipin = next(
            (dst, b) for dst, b in rrg.adjacency[wire_node]
            if rrg.node_kind[dst] == 1
        )
        edges = [
            (opin, wire_node, bit0),
            (wire_node, ipin[0], ipin[1]),
        ]
        base = DelayModel(
            wire_delay=wire, switch_delay=switch, pin_delay=pin
        )
        bumped = DelayModel(
            wire_delay=wire + 0.1, switch_delay=switch + 0.1,
            pin_delay=pin + 0.1,
        )
        assert base.path_delay(rrg, edges) >= 0
        assert bumped.path_delay(rrg, edges) > base.path_delay(
            rrg, edges
        )

    @given(st.floats(min_value=-10, max_value=-0.01))
    @settings(max_examples=10, deadline=None)
    def test_negative_delays_rejected(self, bad):
        with pytest.raises(ValueError):
            DelayModel(wire_delay=bad).validate()


class TestPlaceFileProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_placement_roundtrip(self, seed):
        rng = random.Random(seed)
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=6, k=4)
        clb_sites = arch.clb_sites()
        pad_sites = arch.pad_sites()
        rng.shuffle(clb_sites)
        rng.shuffle(pad_sites)
        n_cells = rng.randint(1, len(clb_sites))
        n_pads = rng.randint(1, min(6, len(pad_sites)))
        sites = {}
        for i in range(n_cells):
            sites[f"c{i}"] = clb_sites[i]
        for i in range(n_pads):
            sites[f"pad:s{i}"] = pad_sites[i]
        placement = Placement(arch=arch, sites=sites, cost=0.0)
        parsed = parse_place_file(
            write_place_file(placement), arch
        )
        assert parsed.sites == placement.sites
