"""Tests for the routing-resource graph."""

import pytest

from repro.arch.architecture import FpgaArchitecture, Site
from repro.arch.rrg import IPIN, OPIN, WIRE, build_rrg


@pytest.fixture(scope="module")
def small():
    arch = FpgaArchitecture(nx=3, ny=3, channel_width=4, k=4)
    return arch, build_rrg(arch)


class TestStructure:
    def test_wire_count(self, small):
        arch, g = small
        n_wires = sum(1 for k in g.node_kind if k == WIRE)
        assert n_wires == arch.n_channel_segments() * arch.channel_width

    def test_clb_pin_count(self, small):
        arch, g = small
        assert len(g.clb_opin) == arch.n_clbs
        assert len(g.clb_sink) == arch.n_clbs
        assert len(g.clb_ipin) == arch.n_clbs * arch.k

    def test_pad_pin_count(self, small):
        arch, g = small
        assert len(g.pad_opin) == arch.n_pads
        assert len(g.pad_sink) == arch.n_pads

    def test_sink_capacity(self, small):
        arch, g = small
        sink = g.clb_sink[(1, 1)]
        assert g.node_capacity[sink] == arch.k
        pad_sink = next(iter(g.pad_sink.values()))
        assert g.node_capacity[pad_sink] == 1

    def test_every_bit_unique_per_directed_pair(self, small):
        _arch, g = small
        # Every configurable edge has a bit in range; bidirectional
        # pairs share a bit.
        seen = {}
        for src, adj in enumerate(g.adjacency):
            for dst, bit in adj:
                if bit < 0:
                    continue
                assert 0 <= bit < g.n_bits
                seen.setdefault(bit, []).append((src, dst))
        for bit, edges in seen.items():
            assert len(edges) in (1, 2)
            if len(edges) == 2:
                assert edges[0] == (edges[1][1], edges[1][0])

    def test_ipin_to_sink_edges_are_internal(self, small):
        arch, g = small
        for (x, y, pin), ipin in g.clb_ipin.items():
            targets = g.adjacency[ipin]
            assert (g.clb_sink[(x, y)], -1) in targets


class TestConnectivity:
    def test_opin_reaches_wires(self, small):
        _arch, g = small
        opin = g.clb_opin[(2, 2)]
        assert all(
            g.node_kind[dst] == WIRE for dst, _ in g.adjacency[opin]
        )
        assert len(g.adjacency[opin]) > 0

    def test_wire_reaches_neighbours(self, small):
        _arch, g = small
        wire = g.chanx[(2, 1, 0)]
        kinds = {g.node_kind[dst] for dst, _ in g.adjacency[wire]}
        assert WIRE in kinds  # switch-box neighbours
        assert IPIN in kinds  # connection-block pin

    def test_full_fabric_reachability(self, small):
        """Every CLB sink is reachable from every CLB opin (BFS)."""
        _arch, g = small
        from collections import deque

        start = g.clb_opin[(1, 1)]
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for dst, _bit in g.adjacency[node]:
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        for sink in g.clb_sink.values():
            assert sink in seen
        for sink in g.pad_sink.values():
            assert sink in seen

    def test_source_sink_lookup(self, small):
        _arch, g = small
        clb = Site("clb", 1, 2)
        assert g.source_node(clb) == g.clb_opin[(1, 2)]
        assert g.sink_node(clb) == g.clb_sink[(1, 2)]
        pad = Site("pad", 0, 1, 1)
        assert g.source_node(pad) == g.pad_opin[(0, 1, 1)]
        assert g.sink_node(pad) == g.pad_sink[(0, 1, 1)]

    def test_describe(self, small):
        _arch, g = small
        text = g.describe(g.clb_opin[(1, 1)])
        assert "OPIN" in text and "(1,1)" in text


class TestScaling:
    def test_bits_grow_with_width(self):
        arch4 = FpgaArchitecture(nx=2, ny=2, channel_width=4)
        arch8 = FpgaArchitecture(nx=2, ny=2, channel_width=8)
        assert build_rrg(arch8).n_bits > build_rrg(arch4).n_bits
