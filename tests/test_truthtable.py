"""Unit and property tests for repro.netlist.truthtable."""

import pytest
from hypothesis import given, strategies as st

from repro.netlist.truthtable import (
    TruthTable,
    cube_to_minterms,
    minterms_to_cubes,
    table_pair_merge_bits,
)


def tables(max_vars=4):
    return st.integers(0, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable,
            st.just(n),
            st.integers(0, (1 << (1 << n)) - 1),
        )
    )


class TestConstruction:
    def test_const_false(self):
        t = TruthTable.const(False, 3)
        assert all(not v for v in t.values())

    def test_const_true(self):
        t = TruthTable.const(True, 2)
        assert all(t.values())

    def test_var_projection(self):
        t = TruthTable.var(1, 3)
        for a in range(8):
            assert t.evaluate_index(a) == bool(a & 2)

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.var(3, 3)

    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable(1, 16)

    def test_from_function_majority(self):
        maj = TruthTable.from_function(
            3, lambda a, b, c: (a + b + c) >= 2
        )
        assert maj.evaluate([True, True, False])
        assert not maj.evaluate([True, False, False])

    def test_from_values_roundtrip(self):
        vals = [True, False, False, True]
        t = TruthTable.from_values(vals)
        assert t.values() == vals

    def test_from_values_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([True, False, True])


class TestQueries:
    def test_evaluate_wrong_arity(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2).evaluate([True])

    def test_is_const(self):
        assert TruthTable.const(True, 2).is_const()
        assert not TruthTable.var(0, 2).is_const()

    def test_const_value_raises_on_nonconst(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 1).const_value()

    def test_support_detects_dead_var(self):
        # f(a, b) = a: support is {0} only.
        t = TruthTable.var(0, 2)
        assert t.support() == [0]

    def test_support_full(self):
        t = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
        assert t.support() == [0, 1]


class TestAlgebra:
    def test_and_or_de_morgan(self):
        a = TruthTable.var(0, 2)
        b = TruthTable.var(1, 2)
        assert ~(a & b) == (~a | ~b)

    def test_xor_self_is_zero(self):
        a = TruthTable.var(0, 3)
        assert (a ^ a) == TruthTable.const(False, 3)

    def test_mixed_arity_raises(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2) & TruthTable.var(0, 3)

    @given(tables(3))
    def test_double_negation(self, t):
        assert ~~t == t

    @given(tables(3))
    def test_or_with_complement_is_true(self, t):
        assert (t | ~t) == TruthTable.const(True, t.n_vars)


class TestStructural:
    def test_cofactor_fixes_variable(self):
        t = TruthTable.from_function(2, lambda a, b: a and b)
        assert t.cofactor(0, True) == TruthTable.var(1, 2)

    def test_restrict_drops_variable(self):
        t = TruthTable.from_function(2, lambda a, b: a and b)
        r = t.restrict(0, True)
        assert r.n_vars == 1
        assert r == TruthTable.var(0, 1)

    def test_permute_swap(self):
        t = TruthTable.from_function(2, lambda a, b: a and not b)
        swapped = t.permute([1, 0])
        assert swapped == TruthTable.from_function(
            2, lambda a, b: b and not a
        )

    def test_expand_is_independent_of_new_vars(self):
        t = TruthTable.var(0, 1)
        e = t.expand([2], 3)
        assert e.support() == [2]

    def test_compose_identity(self):
        t = TruthTable.from_function(2, lambda a, b: a ^ b)
        subs = [TruthTable.var(0, 2), TruthTable.var(1, 2)]
        assert t.compose(subs) == t

    def test_compose_constants(self):
        t = TruthTable.from_function(2, lambda a, b: a and b)
        subs = [TruthTable.const(True, 1), TruthTable.var(0, 1)]
        assert t.compose(subs) == TruthTable.var(0, 1)

    @given(tables(3), st.integers(0, 2), st.booleans())
    def test_shannon_expansion(self, t, var, value):
        if var >= t.n_vars:
            return
        # f = x.f_x + ~x.f_~x
        x = TruthTable.var(var, t.n_vars)
        recomposed = (x & t.cofactor(var, True)) | (
            ~x & t.cofactor(var, False)
        )
        assert recomposed == t


class TestCubes:
    def test_cube_expansion(self):
        assert sorted(cube_to_minterms("1-")) == [1, 3]

    def test_cube_bad_char(self):
        with pytest.raises(ValueError):
            list(cube_to_minterms("1x"))

    def test_minterms_to_cubes_roundtrip(self):
        t = TruthTable.from_function(2, lambda a, b: a or b)
        cubes = minterms_to_cubes(t)
        minterms = set()
        for c in cubes:
            minterms.update(cube_to_minterms(c))
        assert minterms == {1, 2, 3}

    def test_merge_bits_rows(self):
        a = TruthTable.var(0, 1)
        b = ~TruthTable.var(0, 1)
        rows = table_pair_merge_bits([a, b])
        assert rows == [(0, 1), (1, 0)]

    def test_merge_bits_arity_mismatch(self):
        with pytest.raises(ValueError):
            table_pair_merge_bits(
                [TruthTable.var(0, 1), TruthTable.var(0, 2)]
            )
