"""Property-based tests on the router: random feasible workloads must
route legally and validate."""

import random

from hypothesis import given, settings, strategies as st

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.route.router import (
    PathFinderRouter,
    RouteRequest,
    validate_routing,
)

ARCH = FpgaArchitecture(nx=5, ny=5, channel_width=5, fc_in=0.5,
                        fc_out=0.5)
RRG = build_rrg(ARCH)


def feasible_workload(seed: int, n_modes: int):
    """Random workload respecting netlist realities: one net per
    source block, per-(sink, mode) demand within sink capacity."""
    rng = random.Random(seed)
    sources = {
        f"net_{x}_{y}": RRG.clb_opin[(x, y)]
        for x in range(1, 6)
        for y in range(1, 6)
    }
    names = sorted(sources)
    demand = {}
    requests = []
    cid = 0
    for _ in range(rng.randint(5, 30)):
        net = names[rng.randrange(len(names))]
        tx, ty = rng.randint(1, 5), rng.randint(1, 5)
        sink = RRG.clb_sink[(tx, ty)]
        modes = frozenset(
            rng.sample(range(n_modes), rng.randint(1, n_modes))
        )
        if any(
            len(demand.get((sink, m), set()) | {net}) > ARCH.k
            for m in modes
        ):
            continue
        if any(
            r.net == net and r.sink == sink for r in requests
        ):
            continue
        for m in modes:
            demand.setdefault((sink, m), set()).add(net)
        requests.append(
            RouteRequest(cid, net, sources[net], sink, modes)
        )
        cid += 1
    return requests


class TestRouterProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_single_mode_workloads_route_and_validate(self, seed):
        requests = feasible_workload(seed, n_modes=1)
        router = PathFinderRouter(RRG, n_modes=1, max_iterations=30)
        result = router.route(requests)
        assert not router.congestion()
        validate_routing(result)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_two_mode_workloads_route_and_validate(self, seed):
        requests = feasible_workload(seed, n_modes=2)
        router = PathFinderRouter(
            RRG, n_modes=2, max_iterations=30, net_affinity=0.5
        )
        result = router.route(requests)
        assert not router.congestion()
        validate_routing(result)
        # Bit accounting identities.
        bits0, bits1 = result.bits_on(0), result.bits_on(1)
        static_on = bits0 & bits1
        for route in result.routes.values():
            if route.request.modes == frozenset((0, 1)):
                assert route.bits() <= static_on

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_occupancy_bookkeeping_consistent(self, seed):
        """occ[m][node] must equal the number of distinct nets whose
        refcounts cover the node after routing."""
        requests = feasible_workload(seed, n_modes=2)
        router = PathFinderRouter(RRG, n_modes=2, max_iterations=30)
        router.route(requests)
        expected = {}
        for (net, mode), refs in router._net_mode_refs.items():
            for node, count in refs.items():
                assert count > 0
                expected.setdefault((mode, node), set()).add(net)
        for mode in range(2):
            for node in range(RRG.n_nodes):
                want = len(expected.get((mode, node), ()))
                assert router._occ[mode][node] == want
