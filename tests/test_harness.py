"""Tests for the experiment harness (suite assembly + aggregation).

The heavy flow runs are covered by integration tests and the benchmark
suite; here the aggregation, printers and suite construction are
exercised with lightweight stand-ins.
"""

from dataclasses import dataclass

import pytest

from repro.bench.harness import (
    EFFORT_PROFILES,
    ExperimentHarness,
    PairOutcome,
    _aggregate,
)
from repro.core.merge import MergeStrategy
from repro.core.reconfig import ReconfigCost


@dataclass
class _FakeMdr:
    cost: ReconfigCost
    diff: ReconfigCost


@dataclass
class _FakeDcs:
    cost: ReconfigCost


class _FakeResult:
    """Quacks like MultiModeResult for the aggregation methods."""

    def __init__(self, mdr_total, dcs_totals, wl_ratios,
                 lut_bits=100, diff_routing=50):
        self.mdr = _FakeMdr(
            ReconfigCost(lut_bits, mdr_total - lut_bits),
            ReconfigCost(lut_bits, diff_routing),
        )
        self.dcs = {
            s: _FakeDcs(ReconfigCost(lut_bits, t - lut_bits))
            for s, t in dcs_totals.items()
        }
        self._wl = wl_ratios

    def speedup(self, strategy):
        return self.mdr.cost.total / self.dcs[strategy].cost.total

    def wirelength_ratio(self, strategy):
        return self._wl[strategy]


def fake_outcomes(suite="RegExp"):
    out = []
    for i, (mdr_total, em_total, wl_total) in enumerate([
        (1000, 220, 200), (1200, 220, 260), (900, 190, 170),
    ]):
        result = _FakeResult(
            mdr_total,
            {
                MergeStrategy.EDGE_MATCHING: em_total,
                MergeStrategy.WIRE_LENGTH: wl_total,
            },
            {
                MergeStrategy.EDGE_MATCHING: 1.5 + 0.1 * i,
                MergeStrategy.WIRE_LENGTH: 1.1 + 0.05 * i,
            },
        )
        out.append(PairOutcome(suite, f"{suite.lower()}_{i}", result))
    return out


class TestAggregation:
    def test_aggregate(self):
        low, mean, high = _aggregate([3.0, 1.0, 2.0])
        assert (low, high) == (1.0, 3.0)
        assert mean == pytest.approx(2.0)

    def test_figure5_rows(self):
        harness = ExperimentHarness(effort="quick")
        outcomes = {"RegExp": fake_outcomes()}
        rows = harness.figure5(outcomes)
        assert len(rows) == 2
        wl = next(r for r in rows if "Wire" in r["variant"])
        assert wl["min"] <= wl["mean"] <= wl["max"]
        assert wl["mean"] > 1.0
        text = harness.print_figure5(rows)
        assert "MDR (base)" in text
        assert "DCS-Wire length" in text

    def test_figure7_rows(self):
        harness = ExperimentHarness(effort="quick")
        rows = harness.figure7({"FIR": fake_outcomes("FIR")})
        wl = next(r for r in rows if "Wire" in r["variant"])
        assert wl["mean"] == pytest.approx(
            100 * (1.1 + 1.15 + 1.2) / 3
        )
        assert "100.0" in harness.print_figure7(rows)

    def test_figure6_rows(self):
        harness = ExperimentHarness(effort="quick")
        rows = harness.figure6(fake_outcomes())
        assert [r["label"] for r in rows] == [
            "RegExp-MDR", "RegExp-Diff", "RegExp-DCS",
        ]
        mdr = rows[0]
        assert mdr["lut_pct_of_mdr"] + mdr["routing_pct_of_mdr"] == (
            pytest.approx(100.0)
        )
        # Diff routing bits (50) < MDR routing bits.
        assert rows[1]["routing_bits"] < rows[0]["routing_bits"]
        text = harness.print_figure6(rows)
        assert "region effect" in text

    def test_table1_printer(self):
        harness = ExperimentHarness(effort="quick")
        rows = [
            {"suite": "RegExp", "minimum": 222, "average": 232,
             "maximum": 253},
        ]
        text = harness.print_table1(rows)
        assert "TABLE I" in text and "222" in text

    def test_area_printer(self):
        harness = ExperimentHarness(effort="quick")
        rows = [{
            "suite": "FIR", "baseline": "generic FIR filter",
            "area_pct": 33.0, "min": 30.0, "max": 40.0,
        }]
        text = harness.print_area_table(rows)
        assert "33.0" in text


class TestSuiteAssembly:
    def test_effort_profiles_exist(self):
        assert {"quick", "default", "paper"} <= set(EFFORT_PROFILES)
        assert EFFORT_PROFILES["paper"].pairs_per_suite is None

    def test_bad_effort_rejected(self):
        with pytest.raises(ValueError):
            ExperimentHarness(effort="warp")

    def test_pair_structure_regexp(self):
        harness = ExperimentHarness(effort="quick")
        pairs = harness.suite_pairs("RegExp")
        assert len(pairs) == 2  # quick truncates C(5,2)=10 to 2
        for name, modes in pairs:
            assert name.startswith("regexp_")
            assert len(modes) == 2
            assert modes[0].name != modes[1].name

    def test_pair_structure_fir(self):
        harness = ExperimentHarness(effort="quick")
        pairs = harness.suite_pairs("FIR")
        for _name, (lp, hp) in pairs:
            assert "lp" in lp.name and "hp" in hp.name
            # Shared IO names so the pads merge.
            assert set(lp.inputs) == set(hp.inputs)

    def test_unknown_suite(self):
        harness = ExperimentHarness(effort="quick")
        with pytest.raises(ValueError):
            harness.suite_pairs("Crypto")

    def test_suites_are_cached(self):
        harness = ExperimentHarness(effort="quick")
        a = harness.regexp_circuits()
        b = harness.regexp_circuits()
        assert a is b

    @pytest.mark.slow
    def test_table1_real_sizes(self):
        harness = ExperimentHarness(effort="quick")
        rows = harness.table1()
        by_suite = {r["suite"]: r for r in rows}
        assert 190 <= by_suite["RegExp"]["minimum"]
        assert by_suite["MCNC"]["maximum"] <= 465


class TestStaTable:
    def test_sta_table_rows(self):
        from repro.bench.harness import ExperimentHarness

        harness = ExperimentHarness(effort="quick", seed=0)
        # Reuse one tiny synthetic pair instead of the full suite:
        # monkey-patch the suite to keep this unit-level.
        from repro.netlist.lutcircuit import LutCircuit
        from repro.netlist.truthtable import TruthTable

        def chain(name, n):
            c = LutCircuit(name, 4)
            c.add_input("a")
            c.add_input("b")
            prev = ("a", "b")
            t = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
            for i in range(n):
                c.add_block(f"{name}n{i}", prev, t)
                prev = (f"{name}n{i}", "a" if i % 2 else "b")
            c.add_output(f"{name}n{n - 1}")
            return c

        pair = [chain("a", 5), chain("b", 7)]
        harness.suite_pairs = lambda suite: [("tiny", pair)]
        outcomes = {"RegExp": harness.run_suite("RegExp")}
        rows = harness.sta_table(outcomes)
        assert len(rows) == 2  # both strategies
        for row in rows:
            assert row["min"] <= row["mean"] <= row["max"]
            assert 0.2 < row["mean"] < 5.0
        text = harness.print_sta_table(rows)
        assert "routed critical-path" in text
        assert "DCS-Wire length" in text

        # Same outcomes feed the Fmax table (the paper's speed
        # comparison): positive frequencies, ratio aggregates ordered,
        # and the frequency ratio consistent with the STA-delay ratio
        # (fmax_mdr / fmax_dcs == delay_dcs / delay_mdr per mode).
        fmax_rows = harness.fmax_table(outcomes)
        assert len(fmax_rows) == 2
        by_variant = {r["variant"]: r for r in fmax_rows}
        sta_by_variant = {r["variant"]: r for r in rows}
        for variant, row in by_variant.items():
            assert row["mdr_fmax"] > 0
            assert row["dcs_fmax"] > 0
            assert (
                row["ratio_min"] <= row["ratio_mean"]
                <= row["ratio_max"]
            )
            assert row["ratio_mean"] == pytest.approx(
                sta_by_variant[variant]["mean"]
            )
        text = harness.print_fmax_table(fmax_rows)
        assert "MDR:DCS frequency ratio" in text
        assert "DCS-Wire length" in text
