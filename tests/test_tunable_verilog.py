"""Tests for the parameterised (Tunable) Verilog export."""

import re

import pytest

from repro.core.merge import merge_by_index
from repro.core.modes import ModeEncoding
from repro.core.verilog_export import write_tunable_verilog
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable


def _xor2():
    return TruthTable.var(0, 2) ^ TruthTable.var(1, 2)


def _mode(name, registered=False):
    c = LutCircuit(name, 4)
    c.add_input("a")
    c.add_input("b")
    c.add_block(f"{name}_n0", ("a", "b"), _xor2(),
                registered=registered)
    c.add_block(f"{name}_n1", (f"{name}_n0", "a"),
                TruthTable.var(0, 2) & TruthTable.var(1, 2))
    c.add_output(f"{name}_n1")
    return c


@pytest.fixture(scope="module")
def merged():
    return merge_by_index("vx", [_mode("p"), _mode("q", True)])


class TestTunableVerilog:
    def test_module_structure(self, merged):
        text = write_tunable_verilog(merged)
        assert text.count("module ") == 1
        assert text.count("endmodule") == 1
        assert "input [0:0] mode" in text
        assert "input clk" in text  # mode q has a register

    def test_one_case_per_tlut(self, merged):
        text = write_tunable_verilog(merged)
        assert text.count("always @(*) case (mode)") == len(
            merged.tluts
        )

    def test_init_constants_match_aligned_tables(self, merged):
        text = write_tunable_verilog(merged)
        pattern = re.compile(
            r"1'd(\d+): begin (\w+)_init = 16'h([0-9a-f]+);"
        )
        found = 0
        by_wire = {}
        for code, wire, bits in pattern.findall(text):
            by_wire.setdefault(wire, {})[int(code)] = int(bits, 16)
            found += 1
        assert found >= 2  # at least both modes of one TLUT
        # Names are sanitised, so compare the multiset of all INIT
        # constants against the multiset of all aligned tables.
        all_inits = sorted(
            bits
            for inits in by_wire.values()
            for bits in inits.values()
        )
        expected = sorted(
            tlut.aligned_table(mode).bits
            for tlut in merged.tluts.values()
            for mode in tlut.members
        )
        assert all_inits == expected

    def test_outputs_assigned(self, merged):
        text = write_tunable_verilog(merged)
        assert text.count("assign ") == len(
            [p for p in merged.pads.values() if p.direction == "out"]
        )

    def test_registered_member_gets_select(self, merged):
        text = write_tunable_verilog(merged)
        # Mode q's n0 is registered: a case arm sets _sel = 1'b1.
        assert "_sel = 1'b1" in text
        assert "always @(posedge clk)" in text

    def test_encoding_mismatch_rejected(self, merged):
        with pytest.raises(ValueError, match="mode count"):
            write_tunable_verilog(merged, ModeEncoding(3))

    def test_onehot_encoding_widens_port(self, merged):
        text = write_tunable_verilog(
            merged, ModeEncoding(2, style="onehot")
        )
        assert "input [1:0] mode" in text
        assert "2'd1" in text and "2'd2" in text

    def test_combinational_pair_has_no_clk(self):
        merged = merge_by_index(
            "comb", [_mode("p"), _mode("r")]
        )
        text = write_tunable_verilog(merged)
        assert "input clk" not in text
        assert "posedge" not in text
