"""Tests for the logic-network representation."""

import pytest

from repro.netlist.logic import LogicNetwork, fresh_namer, iter_cone
from repro.netlist.truthtable import TruthTable


def small_network():
    n = LogicNetwork("small")
    n.add_input("a")
    n.add_input("b")
    n.add_and("g1", ("a", "b"))
    n.add_not("g2", "g1")
    n.add_output("g2")
    return n


class TestConstruction:
    def test_duplicate_signal_rejected(self):
        n = LogicNetwork()
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_node("a", (), TruthTable.const(True, 0))

    def test_duplicate_output_rejected(self):
        n = small_network()
        with pytest.raises(ValueError):
            n.add_output("g2")

    def test_arity_mismatch_rejected(self):
        n = LogicNetwork()
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_node("g", ("a",), TruthTable.const(True, 2))

    def test_mux_semantics(self):
        n = LogicNetwork()
        for name in ("s", "x", "y"):
            n.add_input(name)
        n.add_mux("m", "s", "x", "y")
        table = n.nodes["m"].table
        # sel=0 -> x, sel=1 -> y (fanins are (sel, x, y)).
        assert table.evaluate([False, True, False])
        assert not table.evaluate([False, False, True])
        assert table.evaluate([True, False, True])

    def test_nary_gates(self):
        n = LogicNetwork()
        for name in "abc":
            n.add_input(name)
        n.add_and("and3", ("a", "b", "c"))
        n.add_or("or3", ("a", "b", "c"))
        n.add_xor("xor3", ("a", "b", "c"))
        assert n.nodes["and3"].table.evaluate([True, True, True])
        assert not n.nodes["and3"].table.evaluate([True, True, False])
        assert n.nodes["or3"].table.evaluate([False, False, True])
        assert n.nodes["xor3"].table.evaluate([True, True, True])
        assert not n.nodes["xor3"].table.evaluate([True, True, False])


class TestTopology:
    def test_topological_order_respects_deps(self):
        n = small_network()
        order = [node.name for node in n.topological_nodes()]
        assert order.index("g1") < order.index("g2")

    def test_cycle_detected(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_node("x", ("y", "a"),
                   TruthTable.var(0, 2) & TruthTable.var(1, 2))
        n.add_node("y", ("x",), TruthTable.var(0, 1))
        with pytest.raises(ValueError):
            n.topological_nodes()

    def test_latch_breaks_cycle(self):
        n = LogicNetwork()
        n.add_input("en")
        n.add_latch("q", "d")
        n.add_xor("d", ("q", "en"))
        n.add_output("q")
        n.validate()  # toggling FF: no combinational cycle

    def test_undriven_fanin_detected(self):
        n = LogicNetwork()
        n.add_node("g", ("ghost",), TruthTable.var(0, 1))
        with pytest.raises(ValueError):
            n.topological_nodes()

    def test_undriven_output_detected(self):
        n = LogicNetwork()
        n.add_output("nothing")
        with pytest.raises(ValueError):
            n.validate()

    def test_fanouts(self):
        n = small_network()
        fo = n.fanouts()
        assert fo["a"] == ["g1"]
        assert fo["g1"] == ["g2"]
        assert fo["g2"] == []

    def test_iter_cone_stops_at_inputs(self):
        n = small_network()
        cone = iter_cone(n, ["g2"])
        assert cone == {"a", "b", "g1", "g2"}

    def test_stats(self):
        n = small_network()
        s = n.stats()
        assert s["inputs"] == 2
        assert s["nodes"] == 2
        assert s["max_fanin"] == 2


class TestUtilities:
    def test_fresh_namer_avoids_existing(self):
        n = LogicNetwork()
        n.add_input("_t0")
        namer = fresh_namer(n, "_t")
        assert namer() == "_t1"

    def test_copy_is_independent(self):
        n = small_network()
        dup = n.copy()
        dup.add_input("c")
        assert "c" not in n.inputs

    def test_driver_kind(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_latch("q", "a")
        n.add_buf("b", "a")
        assert n.driver_kind("a") == "input"
        assert n.driver_kind("q") == "latch"
        assert n.driver_kind("b") == "node"
        with pytest.raises(KeyError):
            n.driver_kind("zz")
