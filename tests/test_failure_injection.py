"""Failure-injection tests: every stage must fail loudly and early.

EDA flows are long pipelines; a stage that silently absorbs an
impossible input produces a wrong chip hours later.  These tests pin
the error behaviour of each stage on malformed or infeasible inputs.
"""

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.core.activation import ActivationFunction
from repro.core.merge import merge_by_index
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.placer import place_circuit
from repro.route.router import (
    PathFinderRouter,
    RouteRequest,
    RoutingError,
)


def _xor2():
    return TruthTable.var(0, 2) ^ TruthTable.var(1, 2)


def _chain(name, n, k=4):
    c = LutCircuit(name, k)
    c.add_input("a")
    c.add_input("b")
    prev = ("a", "b")
    for i in range(n):
        c.add_block(f"{name}n{i}", prev, _xor2())
        prev = (f"{name}n{i}", "a" if i % 2 else "b")
    c.add_output(f"{name}n{n - 1}")
    return c


class TestPlacementFailures:
    def test_grid_too_small_for_blocks(self):
        arch = FpgaArchitecture(nx=2, ny=2, channel_width=4, k=4)
        with pytest.raises(ValueError, match="exceed"):
            place_circuit(_chain("big", 9), arch, seed=0)

    def test_pad_overflow(self):
        arch = FpgaArchitecture(
            nx=2, ny=2, channel_width=4, k=4, io_rat=1
        )
        c = LutCircuit("io_heavy", 4)
        for i in range(20):
            c.add_input(f"i{i}")
        c.add_block("n0", ("i0", "i1"), _xor2())
        c.add_output("n0")
        # 21 IOs vs 8 pad locations * io_rat 1.
        with pytest.raises(ValueError, match="exceed"):
            place_circuit(c, arch, seed=0)


class TestMergeFailures:
    def test_single_mode_rejected(self):
        with pytest.raises(ValueError, match=">= 2 modes"):
            merge_by_index("solo", [_chain("a", 3)])

    def test_k_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same LUT size"):
            merge_by_index(
                "kk", [_chain("a", 3, k=4), _chain("b", 3, k=6)]
            )

    def test_empty_activation_rejected(self):
        with pytest.raises(ValueError):
            ActivationFunction.of(set(), 2)

    def test_activation_mode_out_of_range(self):
        with pytest.raises(ValueError):
            ActivationFunction.of({5}, 2)


class TestRoutingFailures:
    def test_zero_capacity_region_unroutable(self):
        arch = FpgaArchitecture(nx=2, ny=2, channel_width=1, k=4)
        g = build_rrg(arch)
        # Saturate the single track with conflicting nets.
        reqs = [
            RouteRequest(i, f"n{i}", g.clb_opin[(1 + i % 2, 1)],
                         g.clb_sink[(2 - i % 2, 2)],
                         frozenset((0,)))
            for i in range(4)
        ]
        router = PathFinderRouter(g, max_iterations=4)
        with pytest.raises(RoutingError, match="unroutable"):
            router.route(reqs)

    def test_mode_out_of_router_range(self):
        arch = FpgaArchitecture(nx=2, ny=2, channel_width=4, k=4)
        g = build_rrg(arch)
        req = RouteRequest(
            0, "n", g.clb_opin[(1, 1)], g.clb_sink[(2, 2)],
            frozenset((3,)),
        )
        with pytest.raises(ValueError, match="n_modes"):
            PathFinderRouter(g, n_modes=2).route([req])


class TestNetlistFailures:
    def test_duplicate_block_rejected(self):
        c = LutCircuit("dup", 4)
        c.add_input("a")
        c.add_block("n0", ("a",), TruthTable.var(0, 1))
        with pytest.raises(ValueError):
            c.add_block("n0", ("a",), TruthTable.var(0, 1))

    def test_too_many_inputs_rejected(self):
        c = LutCircuit("fat", 4)
        for i in range(5):
            c.add_input(f"i{i}")
        with pytest.raises(ValueError):
            c.add_block(
                "n0", tuple(f"i{i}" for i in range(5)),
                TruthTable.const(True, 5),
            )

    def test_undriven_output_fails_validation(self):
        c = LutCircuit("dangling", 4)
        c.add_input("a")
        c.add_block("n0", ("a",), TruthTable.var(0, 1))
        c.add_output("ghost")
        with pytest.raises((ValueError, KeyError)):
            c.validate()

    def test_combinational_loop_detected(self):
        c = LutCircuit("loop", 4)
        c.add_input("a")
        c.add_block("x", ("y", "a"), _xor2())
        c.add_block("y", ("x", "a"), _xor2())
        c.add_output("x")
        with pytest.raises(ValueError, match="[Cc]ycl|loop"):
            c.topological_blocks()


class TestArchitectureFailures:
    def test_degenerate_grid_rejected(self):
        with pytest.raises(ValueError, match="grid"):
            FpgaArchitecture(nx=0, ny=3, channel_width=4, k=4)

    def test_zero_channel_rejected(self):
        with pytest.raises(ValueError, match="channel"):
            FpgaArchitecture(nx=2, ny=2, channel_width=0, k=4)

    def test_fc_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="Fc"):
            FpgaArchitecture(
                nx=2, ny=2, channel_width=4, k=4, fc_in=0.0
            )
