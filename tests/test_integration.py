"""Cross-module integration tests.

These run the complete pipeline — generator front-end, synthesis,
mapping, combined placement, merge, TRoute, bit accounting — on small
workloads and check *functional* end-to-end properties, not just
structural ones.
"""

import pytest

from repro.bench.regex import (
    compile_regex_circuit,
    reference_match_positions,
)
from repro.core.flow import (
    DcsFlow,
    FlowOptions,
    MdrFlow,
    implement_multi_mode,
)
from repro.core.manager import (
    ParameterizedConfiguration,
    ReconfigurationManager,
)
from repro.core.merge import MergeStrategy
from repro.netlist.simulate import simulate_lut
from repro.route.router import validate_routing

PATTERNS = [r"ab+c", r"(x|y)z"]
TRAFFIC = b"zabbc xz yz abc"


def run_matcher(circuit, data: bytes):
    seq = []
    for byte in data:
        inputs = {f"ch[{i}]": bool(byte >> i & 1) for i in range(8)}
        inputs["valid"] = True
        seq.append(inputs)
    seq.append({**{f"ch[{i}]": False for i in range(8)},
                "valid": False})
    trace = simulate_lut(circuit, seq)
    return [i for i, out in enumerate(trace) if out["match"]]


@pytest.fixture(scope="module")
def regex_result():
    modes = [
        compile_regex_circuit(p, name=f"eng{i}")
        for i, p in enumerate(PATTERNS)
    ]
    result = implement_multi_mode(
        "int_regex", modes, FlowOptions(inner_num=0.2),
    )
    return modes, result


class TestRegexEndToEnd:
    def test_specialized_engines_match_traffic(self, regex_result):
        """The merged circuit, specialised per mode, must behave
        byte-for-byte like the software oracle."""
        _modes, result = regex_result
        tunable = result.dcs[MergeStrategy.WIRE_LENGTH].tunable
        for mode, pattern in enumerate(PATTERNS):
            expected = reference_match_positions(pattern, TRAFFIC)
            got = run_matcher(tunable.specialize(mode), TRAFFIC)
            assert got == expected

    def test_routings_are_legal(self, regex_result):
        _modes, result = regex_result
        for impl in result.mdr.implementations:
            validate_routing(impl.routing)
        for dcs in result.dcs.values():
            validate_routing(dcs.routing)

    def test_manager_agrees_with_cost_model(self, regex_result):
        _modes, result = regex_result
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        config = ParameterizedConfiguration.from_routing(
            dcs.routing, result.mdr.cost.routing_bits
        )
        manager = ReconfigurationManager(config)
        manager.load_initial(0)
        record = manager.switch(1)
        assert record.bits_written == dcs.cost.routing_bits
        manager.verify()

    def test_shared_connections_have_static_bits(self, regex_result):
        """Every always-active tunable connection contributes no
        parameterised bits (its path is identical in all modes)."""
        _modes, result = regex_result
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        routing = dcs.routing
        param = set()
        bit_sets = [routing.bits_on(m) for m in range(2)]
        param = bit_sets[0] ^ bit_sets[1]
        for route in routing.routes.values():
            if len(route.request.modes) == 2:
                assert not (route.bits() & param & (
                    bit_sets[0] - bit_sets[1]
                ))

    def test_determinism(self, regex_result):
        modes, first = regex_result
        second = implement_multi_mode(
            "int_regex", modes, FlowOptions(inner_num=0.2),
        )
        assert (
            first.mdr.cost.total == second.mdr.cost.total
        )
        for strategy in first.dcs:
            assert (
                first.dcs[strategy].cost.total
                == second.dcs[strategy].cost.total
            )


class TestWidthRetry:
    def test_flow_grows_width_until_routable(self):
        """Force an absurdly small channel width; the driver must
        retry wider instead of failing."""
        modes = [
            compile_regex_circuit(p, name=f"w{i}")
            for i, p in enumerate((r"abc", r"xyz"))
        ]
        result = implement_multi_mode(
            "narrow", modes,
            FlowOptions(inner_num=0.2, channel_width=2,
                        max_width_retries=6),
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )
        assert result.arch.channel_width > 2


class TestFlowPieces:
    def test_mdr_and_dcs_share_architecture(self):
        from repro.arch.architecture import FpgaArchitecture
        from repro.arch.rrg import build_rrg

        modes = [
            compile_regex_circuit(p, name=f"s{i}")
            for i, p in enumerate((r"ab", r"cd"))
        ]
        arch = FpgaArchitecture(nx=6, ny=6, channel_width=8)
        rrg = build_rrg(arch)
        options = FlowOptions(inner_num=0.2)
        mdr = MdrFlow(options).run(modes, arch, rrg)
        dcs = DcsFlow(options).run(
            "shared", modes, arch, MergeStrategy.WIRE_LENGTH, rrg
        )
        assert mdr.cost.lut_bits == dcs.cost.lut_bits
        assert dcs.cost.routing_bits <= mdr.cost.routing_bits
