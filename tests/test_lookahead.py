"""Router lookahead + partial rip-up (the PR's QoR-gated opt-ins).

Three contracts:

* **Admissibility** — for sampled ``(node, sink)`` pairs across every
  generator family plus the classic architecture, the lookahead's
  cost (and delay) lower bound never exceeds the true cheapest
  entering-cost path in the concrete RRG, and ``+inf`` entries only
  ever mark genuinely unreachable pairs (sound pruning).
* **Bit-identity between exact cores** — the lookahead changes
  results *versus the Manhattan default* (tighter bounds, different
  tie-breaks), never between the scalar and vectorized cores: with
  it enabled (alone or with partial rip-up) both cores must stay
  byte-identical across untimed, timing-driven and TRoute paths.
* **Legality + caching** — partial rip-up results pass
  ``validate_routing``; the tables are deterministic, picklable, and
  memoized under the ``"lookahead"`` exec-cache stage (hits after the
  first build, surviving a generous LRU prune).
"""

import heapq
import os
import pickle

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import SINK, build_rrg
from repro.core.combined_placement import merge_with_combined_placement
from repro.core.merge import MergeStrategy
from repro.core.flow import FlowOptions
from repro.route.lookahead import (
    RouterLookahead,
    build_lookahead,
)
from repro.route.router import validate_routing
from repro.route.troute import (
    route_lut_circuit,
    route_tunable_circuit,
)
from repro.timing.delay import DelayModel

from tests.test_router_equivalence import (
    FAMILIES,
    _assert_identical,
    _pair_fixture,
)

_INF = float("inf")


def _true_costs_to(rrg, sink, weight):
    """Reference: exact entering-cost distance to *sink* per node.

    ``dist[u]`` is the minimum over real paths ``u -> ... -> sink`` of
    the sum of ``weight`` over every node after ``u`` — the quantity
    an admissible A* heuristic must lower-bound (``g`` already covers
    entering ``u``).  Deliberately independent of the module under
    test: plain Dijkstra over the reversed concrete adjacency.
    """
    rev = [[] for _ in range(rrg.n_nodes)]
    for u in range(rrg.n_nodes):
        for v, _bit in rrg.adjacency[u]:
            rev[v].append(u)
    dist = [_INF] * rrg.n_nodes
    dist[sink] = 0.0
    heap = [(0.0, sink)]
    while heap:
        d, w = heapq.heappop(heap)
        if d > dist[w]:
            continue
        nd = d + weight[w]
        for u in rev[w]:
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


def _sample_sinks(rrg, limit=3):
    sinks = [
        i for i in range(rrg.n_nodes) if rrg.node_kind[i] == SINK
    ]
    step = max(1, len(sinks) // limit)
    return sinks[::step][:limit]


def _assert_admissible(rrg, model=None):
    tables = build_lookahead(rrg, model)
    lookahead = RouterLookahead(rrg, tables)
    base = rrg.base_cost_array()
    delays = (
        [model.node_delay(rrg, i) for i in range(rrg.n_nodes)]
        if model is not None
        else None
    )
    for sink in _sample_sinks(rrg):
        bound = lookahead.cost_array(sink)
        true = _true_costs_to(rrg, sink, base)
        for node in range(rrg.n_nodes):
            assert bound[node] <= true[node] + 1e-9, (
                f"cost bound {bound[node]} exceeds true "
                f"{true[node]} for node {node} -> sink {sink}"
            )
            if bound[node] == _INF:
                # Sound pruning: +inf only on provably dead pairs.
                assert true[node] == _INF
        if delays is not None:
            dbound = lookahead.delay_array(sink)
            dtrue = _true_costs_to(rrg, sink, delays)
            for node in range(rrg.n_nodes):
                assert dbound[node] <= dtrue[node] + 1e-9


class TestAdmissibility:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_generator_families(self, family):
        _n, _m, _a, rrg, _p, _s = _pair_fixture(family)
        _assert_admissible(rrg, DelayModel())

    def test_classic_arch(self):
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=4, k=4)
        _assert_admissible(build_rrg(arch), DelayModel())

    def test_tighter_than_zero_and_finite_on_routable(self):
        """On a routable fabric the bound is finite wherever a path
        exists and strictly positive away from the sink's own class
        (the heuristic actually prices the OPIN/IPIN hops Manhattan
        ignores)."""
        _n, _m, _a, rrg, _p, _s = _pair_fixture("xbar")
        lookahead = RouterLookahead(rrg, build_lookahead(rrg))
        sink = _sample_sinks(rrg, limit=1)[0]
        bound = lookahead.cost_array(sink)
        finite = [b for b in bound if b != _INF]
        assert finite, "every node priced unreachable"
        assert max(finite) > 0.0


class TestDeterminismAndPickle:
    def test_build_is_deterministic(self):
        _n, _m, _a, rrg, _p, _s = _pair_fixture("fsm")
        a = build_lookahead(rrg, DelayModel())
        b = build_lookahead(rrg, DelayModel())
        assert a.offx == b.offx and a.offy == b.offy
        assert a.cost.keys() == b.cost.keys()
        for kind in a.cost:
            assert (a.cost[kind] == b.cost[kind]).all()
            assert (a.delay[kind] == b.delay[kind]).all()

    def test_tables_pickle_roundtrip(self):
        """The stage cache stores raw tables; the router wraps them."""
        _n, _m, _a, rrg, _p, _s = _pair_fixture("datapath")
        tables = build_lookahead(rrg, DelayModel())
        restored = pickle.loads(pickle.dumps(tables))
        for kind in tables.cost:
            assert (
                restored.cost[kind] == tables.cost[kind]
            ).all()
        sink = _sample_sinks(rrg, limit=1)[0]
        assert (
            RouterLookahead(rrg, restored).cost_array(sink)
            == RouterLookahead(rrg, tables).cost_array(sink)
        ).all()

    def test_delay_tables_required_for_timed(self):
        _n, _m, _a, rrg, _p, _s = _pair_fixture("datapath")
        lookahead = RouterLookahead(rrg, build_lookahead(rrg))
        with pytest.raises(ValueError, match="delay model"):
            lookahead.delay_array(_sample_sinks(rrg, limit=1)[0])


class TestCoreEquivalence:
    """Scalar+lookahead == vectorized+lookahead, bit for bit."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_untimed(self, family, monkeypatch):
        _n, modes, _a, rrg, placements, _s = _pair_fixture(family)
        tables = build_lookahead(rrg)
        for circuit, placement in zip(modes, placements):
            monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
            scalar = route_lut_circuit(
                circuit, placement, rrg, lookahead=tables
            )
            monkeypatch.delenv("REPRO_SCALAR_ROUTER")
            vector = route_lut_circuit(
                circuit, placement, rrg, lookahead=tables
            )
            _assert_identical(scalar, vector)
            validate_routing(vector)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_timing_driven(self, family, monkeypatch):
        timing = FlowOptions(
            seed=0, inner_num=0.1, timing_driven=True
        ).criticality()
        _n, modes, _a, rrg, placements, _s = _pair_fixture(family)
        tables = build_lookahead(rrg, timing.model)
        for circuit, placement in zip(modes, placements):
            monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
            scalar = route_lut_circuit(
                circuit, placement, rrg, timing=timing,
                lookahead=tables,
            )
            monkeypatch.delenv("REPRO_SCALAR_ROUTER")
            vector = route_lut_circuit(
                circuit, placement, rrg, timing=timing,
                lookahead=tables,
            )
            _assert_identical(scalar, vector)

    @pytest.mark.parametrize("family", ("datapath", "klut"))
    def test_troute(self, family, monkeypatch):
        name, modes, arch, rrg, _p, schedule = _pair_fixture(family)
        tunable, _ = merge_with_combined_placement(
            name, modes, arch,
            strategy=MergeStrategy.WIRE_LENGTH, seed=0,
            schedule=schedule,
        )
        conns = tunable.site_connections()
        tables = build_lookahead(rrg)
        kwargs = dict(
            net_affinity=0.5, bit_affinity=0.3, sharing_passes=2,
            lookahead=tables,
        )
        monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
        scalar = route_tunable_circuit(
            rrg, conns, len(modes), **kwargs
        )
        monkeypatch.delenv("REPRO_SCALAR_ROUTER")
        vector = route_tunable_circuit(
            rrg, conns, len(modes), **kwargs
        )
        _assert_identical(scalar, vector)
        validate_routing(vector)


class TestPartialRipup:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_legal_and_identical_across_cores(
        self, family, monkeypatch
    ):
        _n, modes, _a, rrg, placements, _s = _pair_fixture(family)
        tables = build_lookahead(rrg)
        for circuit, placement in zip(modes, placements):
            monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
            scalar = route_lut_circuit(
                circuit, placement, rrg, lookahead=tables,
                partial_ripup=True,
            )
            monkeypatch.delenv("REPRO_SCALAR_ROUTER")
            vector = route_lut_circuit(
                circuit, placement, rrg, lookahead=tables,
                partial_ripup=True,
            )
            _assert_identical(scalar, vector)
            validate_routing(vector)

    def test_troute_multi_mode_legal(self, monkeypatch):
        """Partial rip-up must preserve the per-mode trunk-anchoring
        contract ``validate_routing`` checks on multi-mode trees."""
        name, modes, arch, rrg, _p, schedule = _pair_fixture("xbar")
        tunable, _ = merge_with_combined_placement(
            name, modes, arch,
            strategy=MergeStrategy.WIRE_LENGTH, seed=0,
            schedule=schedule,
        )
        conns = tunable.site_connections()
        result = route_tunable_circuit(
            rrg, conns, len(modes),
            net_affinity=0.5, bit_affinity=0.3, sharing_passes=2,
            partial_ripup=True,
        )
        validate_routing(result)

    def test_batched_core_accepts_flag_as_noop(self):
        """The batched core documents partial_ripup as a no-op: the
        flag must not change its (deterministic) result."""
        if os.environ.get("REPRO_SCALAR_ROUTER"):
            pytest.skip(
                "REPRO_SCALAR_ROUTER overrides batched dispatch; "
                "the scalar core does honour partial_ripup"
            )
        _n, modes, _a, rrg, placements, _s = _pair_fixture("fsm")
        circuit, placement = modes[0], placements[0]
        base = route_lut_circuit(
            circuit, placement, rrg, batched=True
        )
        flagged = route_lut_circuit(
            circuit, placement, rrg, batched=True,
            partial_ripup=True,
        )
        _assert_identical(base, flagged)


class TestFlowIntegration:
    def test_flow_option_routes_through_lookahead(self, tmp_path):
        """A flow with ``router_lookahead=True`` memoizes the tables
        under the ``lookahead`` stage (second run hits), survives an
        in-budget LRU prune, and stays deterministic."""
        from repro.core.flow import implement_multi_mode
        from repro.exec.cache import StageCache

        _n, modes, _a, _r, _p, _s = _pair_fixture("datapath")
        options = FlowOptions(
            seed=0, inner_num=0.1, router_lookahead=True,
            partial_ripup=True,
        )
        cache = StageCache(str(tmp_path))
        first = implement_multi_mode(
            "lk", modes, options, cache=cache
        )
        entries = list(
            (tmp_path / "lookahead").rglob("*.pkl")
        )
        assert entries, "lookahead tables were not cached"

        # A generous prune (the CI workflows' 512 MiB budget dwarfs
        # these tables) must keep the entry hitting.
        cache.prune(512 * 1024 * 1024)
        cache2 = StageCache(str(tmp_path))
        stats_before = cache2.stats.hits
        second = implement_multi_mode(
            "lk", modes, options, cache=cache2
        )
        assert cache2.stats.hits > stats_before
        assert list((tmp_path / "lookahead").rglob("*.pkl"))
        assert (
            first.mdr.cost.total == second.mdr.cost.total
        )
        for strategy, dcs in first.dcs.items():
            assert (
                dcs.cost.total == second.dcs[strategy].cost.total
            )

    def test_lookahead_differs_only_in_tiebreaks(self):
        """QoR sanity at tiny scale: enabling the lookahead keeps
        wirelength within the campaign gate's 5% tolerance of the
        Manhattan default (it changes tie-breaks, not quality)."""
        _n, modes, _a, rrg, placements, _s = _pair_fixture("klut")
        tables = build_lookahead(rrg)
        circuit, placement = modes[0], placements[0]
        base = route_lut_circuit(circuit, placement, rrg)
        lk = route_lut_circuit(
            circuit, placement, rrg, lookahead=tables
        )
        wl0 = base.total_wirelength(0)
        wl1 = lk.total_wirelength(0)
        assert wl1 <= wl0 * 1.05
