"""Tests for mode encoding and activation functions."""

import pytest

from repro.core.activation import ActivationFunction
from repro.core.modes import ModeEncoding


class TestModeEncoding:
    def test_bit_counts(self):
        assert ModeEncoding(2).n_bits == 1
        assert ModeEncoding(3).n_bits == 2
        assert ModeEncoding(4).n_bits == 2
        assert ModeEncoding(5).n_bits == 3

    def test_single_mode_edge_case(self):
        enc = ModeEncoding(1)
        assert enc.n_bits == 1
        assert enc.expression([0]) == "1"

    def test_mode_products_two_modes(self):
        enc = ModeEncoding(2)
        assert enc.mode_product(0) == "~m0"
        assert enc.mode_product(1) == "m0"

    def test_mode_products_three_modes(self):
        enc = ModeEncoding(3)
        assert enc.mode_product(2) == "m1.~m0"

    def test_unused_codes(self):
        assert ModeEncoding(3).unused_codes() == [3]
        assert ModeEncoding(4).unused_codes() == []

    def test_expression_simplifies_full_set(self):
        # Paper Fig. 3: m0 + ~m0 simplifies to 1.
        enc = ModeEncoding(2)
        assert enc.expression([0, 1]) == "1"

    def test_expression_single(self):
        enc = ModeEncoding(2)
        assert enc.expression([1]) == "m0"

    def test_expression_uses_dont_cares(self):
        # 3 modes: {1} should not need the m1 literal excluded by the
        # unused code 3: on={1}, dc={3} -> m0 covers 1 and 3 and no
        # other used mode.
        enc = ModeEncoding(3)
        assert enc.expression([1]) == "m0"

    def test_expression_correct_on_all_modes(self):
        enc = ModeEncoding(3)
        from repro.utils.qm import evaluate_terms  # noqa: F401

        expr_modes = [0, 2]
        text = enc.expression(expr_modes)
        assert text not in ("0", "1")

    def test_out_of_range(self):
        enc = ModeEncoding(2)
        with pytest.raises(ValueError):
            enc.mode_product(2)
        with pytest.raises(ValueError):
            enc.expression([5])

    def test_rejects_zero_modes(self):
        with pytest.raises(ValueError):
            ModeEncoding(0)


class TestActivation:
    def test_or_merges(self):
        a = ActivationFunction.single(0, 2)
        b = ActivationFunction.single(1, 2)
        merged = a | b
        assert merged.is_always()
        assert merged.expression() == "1"

    def test_single_expression(self):
        assert ActivationFunction.single(1, 2).expression() == "m0"

    def test_membership(self):
        act = ActivationFunction.of([0, 2], 3)
        assert 0 in act and 2 in act and 1 not in act
        assert list(act) == [0, 2]
        assert len(act) == 2

    def test_always(self):
        act = ActivationFunction.always(3)
        assert act.is_always()
        assert act.is_active(2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ActivationFunction.of([], 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ActivationFunction.of([2], 2)

    def test_mismatched_or_rejected(self):
        with pytest.raises(ValueError):
            ActivationFunction.single(0, 2) | ActivationFunction.single(
                0, 3
            )

    def test_str_is_expression(self):
        assert str(ActivationFunction.single(1, 2)) == "m0"


class TestEncodingStyles:
    def test_gray_codes_adjacent_differ_one_bit(self):
        from repro.core.modes import gray_code

        enc = ModeEncoding(8, style="gray")
        for m in range(7):
            assert enc.register_hamming(m, m + 1) == 1
        assert gray_code(0) == 0

    def test_gray_width_matches_binary(self):
        assert ModeEncoding(5, style="gray").n_bits == 3
        assert ModeEncoding(5, style="binary").n_bits == 3

    def test_onehot_width_is_mode_count(self):
        assert ModeEncoding(5, style="onehot").n_bits == 5

    def test_onehot_products_single_literal(self):
        enc = ModeEncoding(3, style="onehot")
        for m in range(3):
            product = enc.mode_product(m)
            # one positive literal + (n-1) negated ones
            assert f"m{m}" in product

    def test_codes_are_distinct(self):
        for style in ("binary", "gray", "onehot"):
            enc = ModeEncoding(6, style=style)
            codes = enc.used_codes()
            assert len(set(codes)) == 6

    def test_expression_correct_for_all_styles(self):
        for style in ("binary", "gray", "onehot"):
            enc = ModeEncoding(4, style=style)
            for subset in ({0}, {1, 2}, {0, 3}, {1, 2, 3}):
                expr = enc.expression(subset)
                # Exercise the defensive evaluation path indirectly:
                # the rendered expression must accept exactly `subset`.
                from repro.utils.qm import (
                    evaluate_terms,
                    minimize_boolean,
                )

                for mode in range(4):
                    code = enc.code(mode)
                    # Recompute the cover the expression came from.
                    on = [enc.code(m) for m in subset]
                    terms = minimize_boolean(
                        on + enc.unused_codes(), enc.n_bits
                    )
                    if evaluate_terms(terms, code) != (
                        mode in subset
                    ):
                        terms = minimize_boolean(on, enc.n_bits)
                    assert evaluate_terms(terms, code) == (
                        mode in subset
                    )

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError, match="style"):
            ModeEncoding(2, style="thermometer")

    def test_evaluate_product_uses_code(self):
        enc = ModeEncoding(4, style="gray")
        for m in range(4):
            assert enc.evaluate_product(m, enc.code(m))
            assert not enc.evaluate_product(m, enc.code((m + 1) % 4))

    def test_register_hamming_binary_vs_gray(self):
        binary = ModeEncoding(4, style="binary")
        gray = ModeEncoding(4, style="gray")
        # Binary 1 -> 2 flips two bits; Gray flips one.
        assert binary.register_hamming(1, 2) == 2
        assert gray.register_hamming(1, 2) == 1

    def test_onehot_hamming_always_two(self):
        enc = ModeEncoding(5, style="onehot")
        for a in range(5):
            for b in range(5):
                if a != b:
                    assert enc.register_hamming(a, b) == 2
