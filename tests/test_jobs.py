"""Tests of the transport-agnostic job-graph core (``repro.exec.jobs``).

The job graph carries the determinism contract every client (the
``Scheduler`` facade, the campaign runner, ``repro serve``) inherits:
submission-order results, incremental ``on_result``, first-failure-wins
— exercised here under the inline, thread, and process executors.
"""

import os
import threading
import time

import pytest

from repro.exec.jobs import (
    InlineExecutor,
    JobGraph,
    JobState,
    ProcessJobExecutor,
    Task,
    ThreadJobExecutor,
    executor_for,
    resolve_workers,
    run_tasks,
)
from repro.exec.scheduler import Scheduler


# Module-level so the process executor can pickle them by reference.

def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _sleepy_square(x, seconds=0.05):
    time.sleep(seconds)
    return x * x


def _pid(_x):
    return os.getpid()


def make_executor(kind, workers=2):
    return {
        "inline": InlineExecutor,
        "thread": ThreadJobExecutor,
        "process": ProcessJobExecutor,
    }[kind](*(() if kind == "inline" else (workers,)))


EXECUTORS = ("inline", "thread", "process")


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    @pytest.mark.smoke
    def test_inline_states(self):
        graph = JobGraph(InlineExecutor())
        seen = []
        job = graph.submit(_square, 3)
        job.on_state(lambda j, s: seen.append(s))
        assert job.state is JobState.PENDING
        assert job.result() == 9
        assert job.state is JobState.DONE
        assert seen == [JobState.RUNNING, JobState.DONE]
        graph.shutdown()

    def test_listener_after_terminal_fires_immediately(self):
        graph = JobGraph(InlineExecutor())
        job = graph.submit(_square, 2)
        assert job.result() == 4
        seen = []
        job.on_state(lambda j, s: seen.append(s))
        assert seen == [JobState.DONE]
        graph.shutdown()

    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_failed_state_and_exception(self, kind):
        graph = JobGraph(make_executor(kind))
        job = graph.submit(_boom, 7)
        with pytest.raises(ValueError, match="boom 7"):
            job.result()
        assert job.state is JobState.FAILED
        graph.shutdown()

    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_results_in_submission_order(self, kind):
        graph = JobGraph(make_executor(kind))
        jobs = [graph.submit(_square, i) for i in range(8)]
        assert graph.wait(jobs) == [i * i for i in range(8)]
        assert all(j.state is JobState.DONE for j in jobs)
        graph.shutdown()


# ---------------------------------------------------------------------------
# cancellation
# ---------------------------------------------------------------------------


class TestCancellation:
    @pytest.mark.parametrize("kind", ("thread", "process"))
    def test_pending_job_cancels(self, kind):
        # One worker, the first job blocks the pool long enough for
        # the queued second job to be cancelled before dispatch.
        graph = JobGraph(make_executor(kind, workers=1))
        first = graph.submit(_sleepy_square, 5, 0.3)
        second = graph.submit(_square, 6)
        assert second.cancel() is True
        assert second.state is JobState.CANCELLED
        with pytest.raises(Exception):
            second.result(timeout=1)
        assert first.result(timeout=10) == 25
        # Cancelling a finished job is a no-op.
        assert first.cancel() is False
        graph.shutdown()

    def test_running_job_does_not_cancel(self):
        graph = JobGraph(ThreadJobExecutor(1))
        started = threading.Event()
        release = threading.Event()

        def body():
            started.set()
            release.wait(5)
            return "ran"

        job = graph.submit(body)
        assert started.wait(5)
        assert job.cancel() is False
        release.set()
        assert job.result(timeout=5) == "ran"
        graph.shutdown()

    def test_cancelled_listener_fires(self):
        graph = JobGraph(ThreadJobExecutor(1))
        block = threading.Event()
        graph.submit(block.wait, 5)
        victim = graph.submit(_square, 1)
        seen = []
        victim.on_state(lambda j, s: seen.append(s))
        assert graph.cancel(victim) is True
        assert seen == [JobState.CANCELLED]
        block.set()
        graph.shutdown()


# ---------------------------------------------------------------------------
# first failure wins + on_result ordering
# ---------------------------------------------------------------------------


class TestWaitSemantics:
    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_first_failure_by_submission_order_wins(self, kind):
        graph = JobGraph(make_executor(kind))
        jobs = [
            graph.submit(_square, 0),
            graph.submit(_boom, 1),
            graph.submit(_square, 2),
            graph.submit(_boom, 3),
        ]
        with pytest.raises(ValueError, match="boom 1"):
            graph.wait(jobs)
        graph.shutdown()

    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_on_result_incremental_submission_order(self, kind):
        graph = JobGraph(make_executor(kind))
        seen = []
        jobs = [graph.submit(_square, i) for i in range(6)]
        graph.wait(jobs, on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(i, i * i) for i in range(6)]
        graph.shutdown()

    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_on_result_stops_at_first_failure(self, kind):
        graph = JobGraph(make_executor(kind))
        seen = []
        jobs = [
            graph.submit(_square, 0),
            graph.submit(_square, 1),
            graph.submit(_boom, 2),
            graph.submit(_square, 3),
        ]
        with pytest.raises(ValueError, match="boom 2"):
            graph.wait(jobs, on_result=lambda i, r: seen.append(i))
        # Only the clean prefix is checkpointed, never the suffix.
        assert seen == [0, 1]
        graph.shutdown()

    def test_failure_cancels_pending_suffix(self):
        graph = JobGraph(ThreadJobExecutor(1))
        block = threading.Event()
        jobs = [
            graph.submit(_boom, 0),
            graph.submit(block.wait, 5),
            graph.submit(_square, 2),
        ]
        with pytest.raises(ValueError, match="boom 0"):
            graph.wait(jobs)
        block.set()
        # The trailing pending job was cancelled by wait().
        assert jobs[2].state in (JobState.CANCELLED, JobState.PENDING)
        graph.shutdown()


# ---------------------------------------------------------------------------
# priority lanes, resize, drain
# ---------------------------------------------------------------------------


class TestGraphAdmin:
    def test_priority_overtakes_queued_batch(self):
        # Saturate a 1-worker pool, queue batch jobs, then submit an
        # interactive one: it must dispatch before the queued batch.
        graph = JobGraph(ThreadJobExecutor(1))
        release = threading.Event()
        order = []
        gate = graph.submit(release.wait, 5, name="gate")
        batch = [
            graph.submit(order.append, f"batch{i}", priority=0)
            for i in range(2)
        ]
        urgent = graph.submit(order.append, "urgent", priority=10)
        release.set()
        graph.wait([gate, urgent] + batch)
        assert order[0] == "urgent"
        graph.shutdown()

    def test_resize_grows_capacity(self):
        graph = JobGraph(ThreadJobExecutor(1))
        assert graph.stats()["capacity"] == 1
        assert graph.resize(3) == 3
        jobs = [graph.submit(_sleepy_square, i, 0.05) for i in range(6)]
        assert graph.wait(jobs) == [i * i for i in range(6)]
        graph.shutdown()

    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_drain_completes_work_then_refuses(self, kind):
        graph = JobGraph(make_executor(kind))
        jobs = [graph.submit(_square, i) for i in range(4)]
        assert graph.drain(timeout=30) is True
        assert graph.draining
        assert [j.result() for j in jobs] == [0, 1, 4, 9]
        with pytest.raises(RuntimeError, match="draining"):
            graph.submit(_square, 9)
        graph.shutdown()

    def test_stats_shape(self):
        graph = JobGraph(ThreadJobExecutor(2))
        stats = graph.stats()
        assert stats == {
            "pending": 0, "running": 0, "capacity": 2,
            "executor": "thread", "draining": False,
        }
        graph.shutdown()


# ---------------------------------------------------------------------------
# batch entry points
# ---------------------------------------------------------------------------


class TestRunTasks:
    def test_serial_runs_in_caller_process(self):
        pids = run_tasks([Task(_pid, (i,)) for i in range(3)], workers=1)
        assert set(pids) == {os.getpid()}

    def test_executor_for_one_worker_is_inline(self):
        assert executor_for(1, 10).kind == "inline"
        assert executor_for(4, 1).kind == "inline"
        assert executor_for(4, 4, use_threads=True).kind == "thread"

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_scheduler_facade_matches_run_tasks(self):
        tasks = [Task(_square, (i,)) for i in range(5)]
        assert Scheduler(workers=2).run(tasks) == run_tasks(
            tasks, workers=2
        )
