"""Integration tests for the end-to-end MDR and DCS flows."""

import pytest

from repro.core.flow import (
    DcsFlow,
    FlowOptions,
    MdrFlow,
    estimate_channel_width,
    implement_multi_mode,
)
from repro.core.merge import MergeStrategy
from repro.netlist.simulate import equivalent

from tests.test_tunable import two_mode_circuits

FAST = FlowOptions(inner_num=0.3, channel_width=6)


@pytest.fixture(scope="module")
def result():
    m0, m1 = two_mode_circuits()
    return implement_multi_mode(
        "mm", [m0, m1], FAST,
        strategies=(
            MergeStrategy.EDGE_MATCHING,
            MergeStrategy.WIRE_LENGTH,
        ),
    ), (m0, m1)


class TestImplementMultiMode:
    def test_runs_both_flows(self, result):
        res, _modes = result
        assert res.mdr is not None
        assert set(res.dcs) == {
            MergeStrategy.EDGE_MATCHING,
            MergeStrategy.WIRE_LENGTH,
        }

    def test_speedup_at_least_one(self, result):
        """DCS rewrites a subset of what MDR rewrites."""
        res, _modes = result
        for strategy in res.dcs:
            assert res.speedup(strategy) >= 1.0

    def test_mdr_diff_dcs_ordering(self, result):
        """Region >= Diff bits; DCS param bits ordering sane."""
        res, _modes = result
        assert res.mdr.cost.total >= res.mdr.diff.total
        for dcs in res.dcs.values():
            assert dcs.cost.total <= res.mdr.cost.total

    def test_dcs_param_bits_below_diff(self, result):
        """The combined implementation aligns the modes, so its
        parameterised bits cannot exceed the region budget and should
        generally beat independent implementations."""
        res, _modes = result
        wl = res.dcs[MergeStrategy.WIRE_LENGTH]
        assert wl.cost.routing_bits <= res.mdr.cost.routing_bits

    def test_tunable_circuit_correct(self, result):
        res, (m0, m1) = result
        for dcs in res.dcs.values():
            assert equivalent(dcs.tunable.specialize(0), m0)
            assert equivalent(dcs.tunable.specialize(1), m1)

    def test_wirelength_metrics_positive(self, result):
        res, _modes = result
        assert res.mdr.mean_wirelength() > 0
        for strategy in res.dcs:
            assert res.wirelength_ratio(strategy) > 0

    def test_lut_bits_identical_across_variants(self, result):
        """Paper Fig. 6: the LUT contribution is the same for MDR and
        DCS (all LUTs are rewritten in both)."""
        res, _modes = result
        for dcs in res.dcs.values():
            assert dcs.cost.lut_bits == res.mdr.cost.lut_bits


class TestFlowPieces:
    def test_mdr_flow_direct(self):
        from repro.arch.architecture import FpgaArchitecture

        m0, m1 = two_mode_circuits()
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=6)
        mdr = MdrFlow(FAST).run([m0, m1], arch)
        assert len(mdr.implementations) == 2
        assert mdr.cost.total > 0
        assert all(w > 0 for w in mdr.per_mode_wirelength())

    def test_dcs_flow_by_index(self):
        from repro.arch.architecture import FpgaArchitecture

        m0, m1 = two_mode_circuits()
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=6)
        dcs = DcsFlow(FAST).run(
            "mm", [m0, m1], arch, MergeStrategy.BY_INDEX
        )
        assert dcs.tunable.n_tunable_connections() > 0
        assert equivalent(dcs.tunable.specialize(0), m0)

    def test_estimate_channel_width_bounds(self):
        from repro.arch.architecture import FpgaArchitecture

        m0, m1 = two_mode_circuits()
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=6)
        w = estimate_channel_width([m0, m1], arch)
        assert 6 <= w <= 48

    def test_options_schedule(self):
        opts = FlowOptions(inner_num=0.7)
        assert opts.schedule().inner_num == 0.7


class TestSizingModes:
    def _modes(self):
        from repro.netlist.lutcircuit import LutCircuit
        from repro.netlist.truthtable import TruthTable

        def chain(name, n):
            c = LutCircuit(name, 4)
            c.add_input("a")
            c.add_input("b")
            prev = ("a", "b")
            t = TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
            for i in range(n):
                c.add_block(f"{name}n{i}", prev, t)
                prev = (f"{name}n{i}", "a" if i % 2 else "b")
            c.add_output(f"{name}n{n - 1}")
            return c

        return [chain("a", 5), chain("b", 7)]

    def test_search_sizing_completes(self):
        from repro.core.flow import FlowOptions, implement_multi_mode
        from repro.core.merge import MergeStrategy

        result = implement_multi_mode(
            "sized",
            self._modes(),
            FlowOptions(seed=0, inner_num=0.1, sizing="search"),
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )
        assert result.speedup(MergeStrategy.WIRE_LENGTH) > 1.0

    def test_unknown_sizing_rejected(self):
        from repro.core.flow import FlowOptions, implement_multi_mode

        with pytest.raises(ValueError, match="sizing"):
            implement_multi_mode(
                "bad",
                self._modes(),
                FlowOptions(seed=0, inner_num=0.1,
                            sizing="guesswork"),
            )

    def test_explicit_width_bypasses_sizing(self):
        from repro.core.flow import FlowOptions, implement_multi_mode
        from repro.core.merge import MergeStrategy

        result = implement_multi_mode(
            "fixed",
            self._modes(),
            FlowOptions(seed=0, inner_num=0.1, channel_width=9,
                        sizing="guesswork"),  # ignored: width given
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )
        assert result.arch.channel_width == 9
