"""Tests for the circuit-similarity analysis module."""

import pytest

from repro.bench.similarity import (
    circuit_graph,
    connection_match_bound,
    degree_profile_similarity,
    similarity_report,
)
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable


def small(name="c", xor_variant=False):
    c = LutCircuit(name, 4)
    c.add_input("a")
    c.add_input("b")
    table = (
        TruthTable.var(0, 2) ^ TruthTable.var(1, 2)
        if xor_variant
        else TruthTable.var(0, 2) & TruthTable.var(1, 2)
    )
    c.add_block("u", ("a", "b"), table)
    c.add_block("v", ("u", "a"),
                TruthTable.var(0, 2) | TruthTable.var(1, 2))
    c.add_output("v")
    return c


def dissimilar(name="d"):
    """A deeper, register-heavy circuit with different IO shape."""
    c = LutCircuit(name, 4)
    c.add_input("a")
    c.add_input("b")
    prev = "a"
    for i in range(6):
        c.add_block(
            f"r{i}", (prev,), TruthTable.var(0, 1),
            registered=True,
        )
        prev = f"r{i}"
    c.add_block("o", (prev, "b"),
                TruthTable.var(0, 2) & TruthTable.var(1, 2))
    c.add_output("o")
    return c


class TestCircuitGraph:
    def test_node_inventory(self):
        g = circuit_graph(small())
        kinds = [d["kind"] for _n, d in g.nodes(data=True)]
        assert kinds.count("ipad") == 2
        assert kinds.count("lut") == 2
        assert kinds.count("opad") == 1

    def test_edges_follow_signal_flow(self):
        g = circuit_graph(small())
        assert g.has_edge("pad:a", "u")
        assert g.has_edge("u", "v")
        assert g.has_edge("v", "opad:v")


class TestMatchBound:
    def test_identical_circuits_fully_matchable(self):
        a, b = small("a"), small("b")
        assert connection_match_bound(a, b) == pytest.approx(1.0)

    def test_bound_in_unit_interval(self):
        a, b = small(), dissimilar()
        bound = connection_match_bound(a, b)
        assert 0.0 <= bound <= 1.0

    def test_dissimilar_below_identical(self):
        identical = connection_match_bound(small("a"), small("b"))
        different = connection_match_bound(small(), dissimilar())
        assert different < identical

    def test_function_variant_same_structure(self):
        """WL colours ignore the LUT function (the truth table is
        parameterised anyway), so AND vs XOR variants stay fully
        matchable."""
        bound = connection_match_bound(
            small("a"), small("b", xor_variant=True)
        )
        assert bound == pytest.approx(1.0)


class TestDegreeSimilarity:
    def test_self_similarity(self):
        assert degree_profile_similarity(
            small("a"), small("b")
        ) == pytest.approx(1.0)

    def test_symmetry(self):
        a, b = small(), dissimilar()
        assert degree_profile_similarity(a, b) == pytest.approx(
            degree_profile_similarity(b, a)
        )

    def test_range(self):
        value = degree_profile_similarity(small(), dissimilar())
        assert 0.0 <= value <= 1.0


class TestReport:
    def test_keys_and_ranges(self):
        report = similarity_report(small(), dissimilar())
        assert set(report) == {
            "size_ratio", "match_bound", "degree_similarity",
        }
        for value in report.values():
            assert 0.0 <= value <= 1.0

    def test_fir_pair_more_similar_than_random(self):
        """The paper's narrative: FIR lp/hp twins are structurally
        close; dissimilar circuits are not."""
        from repro.bench.fir import generate_fir_circuit

        lp = generate_fir_circuit("lowpass", seed=0, n_taps=4,
                                  n_nonzero=2)
        hp = generate_fir_circuit("highpass", seed=0, n_taps=4,
                                  n_nonzero=2)
        twins = similarity_report(lp, hp)
        odd = similarity_report(lp, dissimilar())
        assert twins["degree_similarity"] > odd["degree_similarity"]
