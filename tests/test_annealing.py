"""Edge-case tests for the annealing engine."""


from repro.place.annealing import AnnealingSchedule, anneal
from repro.utils.rng import make_rng


class _NullProblem:
    """No legal moves at all: the engine must terminate cleanly."""

    def initial_cost(self):
        return 10.0

    def size(self):
        return 4

    def n_nets(self):
        return 2

    def max_rlim(self):
        return 3

    def propose(self, rlim, rng):
        return None

    def delta_cost(self, move):  # pragma: no cover
        raise AssertionError("must not be called")

    def commit(self, move):  # pragma: no cover
        raise AssertionError("must not be called")


class _ZeroCostProblem:
    """Cost hits zero: the engine must stop early, not loop."""

    def __init__(self):
        self.cost = 4.0

    def initial_cost(self):
        return self.cost

    def size(self):
        return 2

    def n_nets(self):
        return 1

    def max_rlim(self):
        return 2

    def propose(self, rlim, rng):
        return "down"

    def delta_cost(self, move):
        return -1.0 if self.cost > 0 else 0.0

    def commit(self, move):
        self.cost = max(0.0, self.cost - 1.0)


class TestAnnealingEdgeCases:
    def test_no_moves_terminates(self):
        stats = anneal(
            _NullProblem(), make_rng(0),
            AnnealingSchedule(inner_num=0.5, max_temperatures=5),
        )
        assert stats.final_cost == stats.initial_cost
        assert stats.n_accepted == 0

    def test_zero_cost_exits(self):
        stats = anneal(
            _ZeroCostProblem(), make_rng(0),
            AnnealingSchedule(inner_num=1.0, max_temperatures=50),
        )
        assert stats.final_cost <= 0.0

    def test_max_temperatures_bounds_runtime(self):
        class Jitter(_ZeroCostProblem):
            def delta_cost(self, move):
                return 0.5

            def commit(self, move):
                self.cost += 0.5

        stats = anneal(
            Jitter(), make_rng(1),
            AnnealingSchedule(
                inner_num=0.5, max_temperatures=3, min_moves=4,
            ),
        )
        assert stats.n_temperatures <= 3

    def test_schedule_defaults(self):
        schedule = AnnealingSchedule()
        assert schedule.inner_num == 1.0
        assert 0 < schedule.exit_ratio < 1
