"""Tests for the annealing engine and the single-circuit placer."""


import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.annealing import AnnealingSchedule, anneal
from repro.place.cost import (
    bounding_box,
    net_bounding_box_cost,
    q_factor,
)
from repro.place.placer import (
    circuit_cells,
    circuit_nets,
    pad_cell,
    place_circuit,
)
from repro.utils.rng import make_rng


def chain_circuit(n_blocks=12, k=4):
    """A LUT chain: in -> b0 -> b1 -> ... -> out."""
    c = LutCircuit("chain", k)
    c.add_input("in")
    prev = "in"
    for i in range(n_blocks):
        c.add_block(f"b{i}", (prev,), TruthTable.var(0, 1))
        prev = f"b{i}"
    c.add_output(prev)
    return c


class TestCost:
    def test_q_factor_monotone(self):
        values = [q_factor(i) for i in range(1, 80)]
        assert values == sorted(values)

    def test_q_factor_small_nets(self):
        assert q_factor(2) == 1.0
        assert q_factor(3) == 1.0
        assert q_factor(4) > 1.0

    def test_bounding_box(self):
        assert bounding_box([(1, 5), (3, 2)]) == (1, 2, 3, 5)

    def test_two_terminal_cost_is_half_perimeter(self):
        assert net_bounding_box_cost([(0, 0), (3, 4)]) == 7.0

    def test_single_terminal_is_free(self):
        assert net_bounding_box_cost([(2, 2)]) == 0.0


class TestNets:
    def test_chain_nets(self):
        c = chain_circuit(3)
        nets = circuit_nets(c)
        by_name = {n.name: n.cells for n in nets}
        assert by_name["in"] == [pad_cell("in"), "b0"]
        assert by_name["b2"] == ["b2", pad_cell("b2")]

    def test_fanout_net_deduplicated(self):
        c = LutCircuit("fan", 4)
        c.add_input("a")
        c.add_block("x", ("a",), TruthTable.var(0, 1))
        c.add_block(
            "y", ("a", "x"),
            TruthTable.var(0, 2) & TruthTable.var(1, 2),
        )
        c.add_output("y")
        nets = {n.name: n.cells for n in circuit_nets(c)}
        assert nets["a"] == [pad_cell("a"), "x", "y"]

    def test_cells(self):
        c = chain_circuit(2)
        logic, pads = circuit_cells(c)
        assert logic == ["b0", "b1"]
        assert set(pads) == {pad_cell("in"), pad_cell("b1")}


class TestPlacer:
    def test_legal_placement(self):
        c = chain_circuit(10)
        arch = FpgaArchitecture(nx=5, ny=5, channel_width=4)
        placement = place_circuit(c, arch, seed=1)
        # Every cell placed, no overlaps, right site kinds.
        sites = list(placement.sites.values())
        assert len(sites) == len(set(sites))
        for cell, site in placement.sites.items():
            if cell.startswith("pad:"):
                assert site.kind == "pad"
            else:
                assert site.kind == "clb"

    def test_improves_over_random(self):
        c = chain_circuit(16)
        arch = FpgaArchitecture(nx=6, ny=6, channel_width=4)
        placement = place_circuit(
            c, arch, seed=3,
            schedule=AnnealingSchedule(inner_num=1.0),
        )
        assert placement.stats is not None
        assert placement.cost <= placement.stats.initial_cost

    def test_chain_cost_near_optimal(self):
        """A 12-LUT chain should place with cost close to its length."""
        c = chain_circuit(12)
        arch = FpgaArchitecture(nx=5, ny=5, channel_width=4)
        placement = place_circuit(
            c, arch, seed=7,
            schedule=AnnealingSchedule(inner_num=2.0),
        )
        # 13 two-terminal nets; perfect snake = cost 13. Accept 3x.
        assert placement.cost <= 39

    def test_deterministic_for_seed(self):
        c = chain_circuit(8)
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=4)
        p1 = place_circuit(c, arch, seed=42)
        p2 = place_circuit(c, arch, seed=42)
        assert p1.sites == p2.sites

    def test_too_big_rejected(self):
        c = chain_circuit(30)
        arch = FpgaArchitecture(nx=3, ny=3, channel_width=4)
        with pytest.raises(ValueError):
            place_circuit(c, arch)


class TestAnnealingEngine:
    def test_anneal_reduces_simple_problem(self):
        """Toy problem: cells on a line, cost = sum of pair distances."""

        class LineProblem:
            def __init__(self, rng):
                self.pos = list(range(20))
                rng.shuffle(self.pos)

            def initial_cost(self):
                return float(
                    sum(
                        abs(self.pos[i] - self.pos[i + 1])
                        for i in range(19)
                    )
                )

            def size(self):
                return 20

            def n_nets(self):
                return 19

            def max_rlim(self):
                return 20

            def propose(self, rlim, rng):
                i = rng.randrange(20)
                j = rng.randrange(20)
                if i == j:
                    return None
                return (i, j)

            def _cost_around(self, idx):
                total = 0.0
                for i in (idx - 1, idx):
                    if 0 <= i < 19:
                        total += abs(self.pos[i] - self.pos[i + 1])
                return total

            def delta_cost(self, move):
                i, j = move
                before = self._cost_around(i) + self._cost_around(j)
                self.pos[i], self.pos[j] = self.pos[j], self.pos[i]
                after = self._cost_around(i) + self._cost_around(j)
                self.pos[i], self.pos[j] = self.pos[j], self.pos[i]
                return after - before

            def commit(self, move):
                i, j = move
                self.pos[i], self.pos[j] = self.pos[j], self.pos[i]

        rng = make_rng(5)
        problem = LineProblem(rng)
        stats = anneal(
            problem, rng, AnnealingSchedule(inner_num=3.0)
        )
        assert stats.final_cost < stats.initial_cost
        assert stats.n_temperatures > 0
        # delta bookkeeping must agree with a from-scratch recompute
        assert abs(problem.initial_cost() - stats.final_cost) < 1e-9
