"""Tests for the netlist simulators."""

import random

import pytest

from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.simulate import (
    equivalent,
    random_vectors,
    simulate_logic,
    simulate_lut,
)
from repro.netlist.truthtable import TruthTable


def toggle_network():
    """A T-flip-flop: q toggles when en is high."""
    n = LogicNetwork("toggle")
    n.add_input("en")
    n.add_latch("q", "d")
    n.add_xor("d", ("q", "en"))
    n.add_output("q")
    return n


def toggle_lut_circuit():
    c = LutCircuit("toggle", k=4)
    c.add_input("en")
    c.add_block(
        "q", ("q", "en"),
        TruthTable.var(0, 2) ^ TruthTable.var(1, 2),
        registered=True,
    )
    c.add_output("q")
    return c


class TestLogicSimulation:
    def test_combinational(self):
        n = LogicNetwork()
        n.add_input("a")
        n.add_input("b")
        n.add_and("y", ("a", "b"))
        n.add_output("y")
        trace = simulate_logic(
            n, [{"a": True, "b": True}, {"a": True, "b": False}]
        )
        assert trace == [{"y": True}, {"y": False}]

    def test_sequential_toggle(self):
        n = toggle_network()
        trace = simulate_logic(n, [{"en": True}] * 4)
        assert [t["q"] for t in trace] == [False, True, False, True]

    def test_latch_init_value(self):
        n = LogicNetwork()
        n.add_input("d")
        n.add_latch("q", "d", init=True)
        n.add_output("q")
        trace = simulate_logic(n, [{"d": False}, {"d": False}])
        assert [t["q"] for t in trace] == [True, False]

    def test_missing_input_raises(self):
        n = toggle_network()
        with pytest.raises(KeyError):
            simulate_logic(n, [{}])


class TestLutSimulation:
    def test_sequential_toggle(self):
        c = toggle_lut_circuit()
        trace = simulate_lut(c, [{"en": True}] * 4)
        assert [t["q"] for t in trace] == [False, True, False, True]

    def test_enable_low_holds_state(self):
        c = toggle_lut_circuit()
        trace = simulate_lut(
            c, [{"en": True}, {"en": False}, {"en": False}]
        )
        assert [t["q"] for t in trace] == [False, True, True]

    def test_combinational_block(self):
        c = LutCircuit("comb")
        c.add_input("a")
        c.add_block("y", ("a",), ~TruthTable.var(0, 1))
        c.add_output("y")
        assert simulate_lut(c, [{"a": False}]) == [{"y": True}]


class TestEquivalence:
    def test_logic_vs_lut_equivalent(self):
        assert equivalent(toggle_network(), toggle_lut_circuit())

    def test_detects_difference(self):
        n = toggle_network()
        c = toggle_lut_circuit()
        # Sabotage: make the LUT an OR instead of XOR.
        c2 = LutCircuit("toggle", k=4)
        c2.add_input("en")
        c2.add_block(
            "q", ("q", "en"),
            TruthTable.var(0, 2) | TruthTable.var(1, 2),
            registered=True,
        )
        c2.add_output("q")
        assert not equivalent(n, c2)
        assert equivalent(n, c)

    def test_mismatched_interfaces_raise(self):
        n = toggle_network()
        c = LutCircuit("other")
        c.add_input("x")
        with pytest.raises(ValueError):
            equivalent(n, c)

    def test_random_vectors_shape(self):
        rng = random.Random(1)
        vecs = random_vectors(["a", "b"], 5, rng)
        assert len(vecs) == 5
        assert all(set(v) == {"a", "b"} for v in vecs)
