"""Property-based tests (hypothesis) on the core flow invariants.

These generate random mode circuits and check the invariants the whole
tool flow rests on:

* Fig. 4 bit algebra: the Tunable LUT's parameterised bits evaluated at
  any mode value reproduce that mode's member LUT exactly;
* merge correctness: specialising a merged Tunable circuit at mode *i*
  is simulation-equivalent to mode *i*'s input circuit;
* activation algebra: merged connections are active exactly in the
  union of their constituents' modes;
* the synthesis pipeline (optimise + map) preserves functionality.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.merge import merge_by_index
from repro.core.modes import ModeEncoding
from repro.core.tunable import TunableLut
from repro.netlist.lutcircuit import LutBlock, LutCircuit
from repro.netlist.simulate import equivalent
from repro.netlist.truthtable import TruthTable
from repro.synth.optimize import optimize_network
from repro.synth.techmap import tech_map
from repro.utils.qm import evaluate_terms, minimize_boolean


def random_lut_circuit(rng: random.Random, name: str,
                       io_names=None) -> LutCircuit:
    """A random small LUT circuit (shared IO names across modes)."""
    k = 4
    c = LutCircuit(name, k)
    n_inputs = 3
    inputs = io_names[0] if io_names else [
        f"i{j}" for j in range(n_inputs)
    ]
    for s in inputs:
        c.add_input(s)
    signals = list(inputs)
    n_blocks = rng.randint(2, 7)
    for b in range(n_blocks):
        arity = rng.randint(1, min(3, len(signals)))
        fanins = rng.sample(signals, arity)
        bits = rng.getrandbits(1 << arity)
        registered = rng.random() < 0.3
        name_b = f"{name}_b{b}"
        c.add_block(
            name_b, fanins, TruthTable(arity, bits),
            registered=registered,
        )
        signals.append(name_b)
    out_names = io_names[1] if io_names else ["o0"]
    # Buffer blocks give the outputs mode-independent names.
    for i, out in enumerate(out_names):
        src = signals[-(i + 1)] if len(signals) > i else signals[-1]
        c.add_block(out, (src,), TruthTable.var(0, 1))
        c.add_output(out)
    return c


class TestTunableLutAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 4),  # n_modes
        st.integers(0, 2**32 - 1),
    )
    def test_specialize_recovers_every_member(self, n_modes, seed):
        rng = random.Random(seed)
        k = rng.randint(2, 4)
        tlut = TunableLut("t", k, n_modes)
        members = {}
        for mode in range(n_modes):
            if rng.random() < 0.25 and members:
                continue  # leave some modes unoccupied
            arity = rng.randint(1, k)
            table = TruthTable(arity, rng.getrandbits(1 << arity))
            block = LutBlock(
                f"m{mode}",
                tuple(f"s{mode}_{j}" for j in range(arity)),
                table,
                registered=rng.random() < 0.5,
            )
            tlut.add_member(mode, block)
            members[mode] = block
        for mode in range(n_modes):
            bits, registered = tlut.specialize(mode)
            if mode in members:
                block = members[mode]
                aligned = block.table.expand(
                    list(range(block.table.n_vars)), k
                )
                assert TruthTable(k, bits) == aligned
                assert registered == block.registered
            else:
                assert bits == 0 and registered is False

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 4), st.integers(0, 2**32 - 1))
    def test_bit_expressions_evaluate_to_bits(self, n_modes, seed):
        """Rendering through QM and evaluating at the mode register
        value must agree with the raw bit sets (Fig. 4)."""
        rng = random.Random(seed)
        tlut = TunableLut("t", 2, n_modes)
        for mode in range(n_modes):
            tlut.add_member(
                mode,
                LutBlock(
                    f"m{mode}", ("a", "b"),
                    TruthTable(2, rng.getrandbits(4)),
                ),
            )
        encoding = ModeEncoding(n_modes)
        bit_modes = tlut.bit_modes()
        for row, modes in enumerate(bit_modes):
            terms = minimize_boolean(
                sorted(modes) + encoding.unused_codes(),
                encoding.n_bits,
            ) if modes else []
            for mode in range(n_modes):
                assert evaluate_terms(terms, mode) == (
                    mode in modes
                ), (row, mode)


class TestMergeProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(2, 3))
    def test_merge_by_index_specialization(self, seed, n_modes):
        rng = random.Random(seed)
        io_names = ([f"i{j}" for j in range(3)], ["o0"])
        modes = [
            random_lut_circuit(rng, f"m{i}", io_names)
            for i in range(n_modes)
        ]
        tunable = merge_by_index("prop", modes)
        for i, circuit in enumerate(modes):
            assert equivalent(
                tunable.specialize(i), circuit,
                n_cycles=12, n_runs=2,
            )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_activation_union(self, seed):
        rng = random.Random(seed)
        io_names = ([f"i{j}" for j in range(3)], ["o0"])
        modes = [
            random_lut_circuit(rng, f"m{i}", io_names)
            for i in range(2)
        ]
        tunable = merge_by_index("prop", modes)
        # Rebuild the expected per-mode cell connection sets.
        for conn in tunable.connections:
            for mode in range(2):
                # activation says mode active <=> the connection
                # exists in that mode's cell-level netlist.
                exists = _connection_exists(
                    tunable, modes[mode], mode,
                    conn.source, conn.sink,
                )
                assert conn.activation.is_active(mode) == exists


def _connection_exists(tunable, circuit, mode, source, sink) -> bool:

    def cell_of(signal: str) -> str:
        key = (mode, signal)
        if key in tunable.cell_of_signal:
            return tunable.cell_of_signal[key]
        return ""

    for block in circuit.blocks.values():
        sink_cell = cell_of(block.name)
        for src in block.inputs:
            if cell_of(src) == source and sink_cell == sink:
                return True
    for out in circuit.outputs:
        for pad in tunable.pads.values():
            if pad.signals.get(mode) == out and (
                pad.direction == "out"
            ):
                if cell_of(out) == source and pad.name == sink:
                    return True
    return False


class TestSynthesisPipelineProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_optimize_plus_map_preserve_function(self, seed):
        from repro.netlist.blif import logic_from_lut_circuit

        rng = random.Random(seed)
        circuit = random_lut_circuit(rng, "s")
        network = logic_from_lut_circuit(circuit)
        mapped = tech_map(optimize_network(network), k=4)
        assert equivalent(
            network, mapped, n_cycles=12, n_runs=2
        )
