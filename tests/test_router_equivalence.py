"""Scalar / vectorized router equivalence (the PR's bit-identity
contract).

The vectorized negotiation core (:mod:`repro.route.vectorized`) must
make byte-identical decisions to the scalar reference in
:mod:`repro.route.router`: identical edge lists, wirelength,
iteration counts and bit sets, across circuit families, pricing modes
(untimed, timing-driven), affinity settings and multi-mode activation
shapes.  These tests route the same workloads through both cores
explicitly (bypassing the ``REPRO_SCALAR_ROUTER`` dispatch) and
compare results field by field.
"""

import os

import pytest

from repro.arch.architecture import size_for_circuits
from repro.arch.rrg import build_rrg
from repro.core.combined_placement import merge_with_combined_placement
from repro.core.merge import MergeStrategy
from repro.core.flow import FlowOptions
from repro.gen.spec import build_circuit
from repro.gen.suites import suite_pair_specs
from repro.place.placer import place_circuit
from repro.route.router import (
    PathFinderRouter,
    RoutingError,
    ScalarPathFinderRouter,
    scalar_router_forced,
)
from repro.route.troute import (
    lut_circuit_connections,
    requests_from_connections,
    route_lut_circuit,
    route_tunable_circuit,
)
from repro.route.vectorized import VectorizedPathFinderRouter

FAMILIES = ("datapath", "fsm", "xbar", "klut")


def _assert_identical(a, b):
    """Two RoutingResults must match bit for bit."""
    assert a.iterations == b.iterations
    assert a.n_modes == b.n_modes
    assert a.routes.keys() == b.routes.keys()
    for conn_id in a.routes:
        ra, rb = a.routes[conn_id], b.routes[conn_id]
        assert ra.request == rb.request
        assert ra.edges == rb.edges, f"connection {conn_id} diverged"
    for mode in range(a.n_modes):
        assert a.bits_on(mode) == b.bits_on(mode)
        assert a.total_wirelength(mode) == b.total_wirelength(mode)


def _pair_fixture(family, seed=0):
    pair_name, specs = suite_pair_specs(
        family, seed=seed, k=4, scale="tiny", limit=1
    )[0]
    modes = [build_circuit(spec) for spec in specs]
    ios = set()
    for circuit in modes:
        ios.update(circuit.inputs)
        ios.update(circuit.outputs)
    arch = size_for_circuits(
        max(c.n_luts() for c in modes), len(ios), k=4,
        channel_width=8, slack=1.2,
    )
    rrg = build_rrg(arch)
    schedule = FlowOptions(seed=seed, inner_num=0.1).schedule()
    placements = [
        place_circuit(c, arch, seed=seed + i, schedule=schedule)
        for i, c in enumerate(modes)
    ]
    return pair_name, modes, arch, rrg, placements, schedule


class TestDispatch:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALAR_ROUTER", raising=False)
        _n, _m, _a, rrg, _p, _s = _pair_fixture("xbar")
        assert isinstance(
            PathFinderRouter(rrg), VectorizedPathFinderRouter
        )
        assert not scalar_router_forced()

    def test_env_escape_hatch_selects_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
        _n, _m, _a, rrg, _p, _s = _pair_fixture("xbar")
        router = PathFinderRouter(rrg)
        assert type(router) is PathFinderRouter
        assert scalar_router_forced()

    def test_explicit_classes_ignore_env(self, monkeypatch):
        _n, _m, _a, rrg, _p, _s = _pair_fixture("xbar")
        monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
        assert isinstance(
            VectorizedPathFinderRouter(rrg),
            VectorizedPathFinderRouter,
        )
        monkeypatch.delenv("REPRO_SCALAR_ROUTER")
        assert type(ScalarPathFinderRouter(rrg)) is (
            ScalarPathFinderRouter
        )


class TestLutEquivalence:
    """Single-mode (MDR-style) routing, untimed and timing-driven."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_untimed(self, family, monkeypatch):
        _n, modes, _arch, rrg, placements, _s = _pair_fixture(family)
        for circuit, placement in zip(modes, placements):
            monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
            scalar = route_lut_circuit(circuit, placement, rrg)
            monkeypatch.delenv("REPRO_SCALAR_ROUTER")
            vector = route_lut_circuit(circuit, placement, rrg)
            _assert_identical(scalar, vector)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_timing_driven(self, family, monkeypatch):
        timing = FlowOptions(
            seed=0, inner_num=0.1, timing_driven=True
        ).criticality()
        _n, modes, _arch, rrg, placements, _s = _pair_fixture(family)
        for circuit, placement in zip(modes, placements):
            monkeypatch.setenv("REPRO_SCALAR_ROUTER", "1")
            scalar = route_lut_circuit(
                circuit, placement, rrg, timing=timing
            )
            monkeypatch.delenv("REPRO_SCALAR_ROUTER")
            vector = route_lut_circuit(
                circuit, placement, rrg, timing=timing
            )
            _assert_identical(scalar, vector)


class TestTunableEquivalence:
    """Multi-mode TRoute with net/bit affinities and sharing sweeps —
    the pricing paths the scalar reference exercises per edge."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_troute(self, family):
        name, modes, arch, rrg, _p, schedule = _pair_fixture(family)
        tunable, _ = merge_with_combined_placement(
            name, modes, arch,
            strategy=MergeStrategy.WIRE_LENGTH, seed=0,
            schedule=schedule,
        )
        conns = tunable.site_connections()
        kwargs = dict(
            net_affinity=0.5, bit_affinity=0.3, sharing_passes=2
        )
        os.environ["REPRO_SCALAR_ROUTER"] = "1"
        try:
            scalar = route_tunable_circuit(
                rrg, conns, len(modes), **kwargs
            )
        finally:
            os.environ.pop("REPRO_SCALAR_ROUTER", None)
        vector = route_tunable_circuit(
            rrg, conns, len(modes), **kwargs
        )
        _assert_identical(scalar, vector)

    def test_mixed_activation_sets(self):
        """Connections with {0}, {1} and {0, 1} activation sets of
        the *same* nets stress the price-entry subset invalidation."""
        name, modes, arch, rrg, placements, _s = _pair_fixture(
            "datapath"
        )
        conns = []
        for mode, (circuit, placement) in enumerate(
            zip(modes, placements)
        ):
            for net, src, dst, _m in lut_circuit_connections(
                circuit, placement, mode=mode
            ):
                # Fold per-mode nets onto shared names so one net
                # carries different activation sets.
                shared = net.split(":", 1)[1]
                conns.append((shared, src, dst, frozenset((mode,))))
        requests = requests_from_connections(rrg, conns)
        scalar = ScalarPathFinderRouter(
            rrg, n_modes=2, net_affinity=0.6, bit_affinity=0.4,
            sharing_passes=1,
        ).route(requests)
        vector = VectorizedPathFinderRouter(
            rrg, n_modes=2, net_affinity=0.6, bit_affinity=0.4,
            sharing_passes=1,
        ).route(requests)
        _assert_identical(scalar, vector)

    def test_constant_pres_fac_history_invalidation(self):
        """With pres_fac_mult=1.0 the present-cost factor never
        changes, so only the _history_updated hook keeps the price
        cache from serving vectors built against stale history costs
        (regression: the cache key alone relied on pres_fac moving
        with every history bump)."""
        from repro.arch.architecture import FpgaArchitecture
        from repro.route.router import RouteRequest

        # A congested crossing that needs several negotiation
        # iterations (history must accumulate).
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=4, k=4)
        g = build_rrg(arch)
        reqs = []
        cid = 0
        for x in range(1, 5):
            reqs.append(RouteRequest(
                cid, f"d{cid}", g.clb_opin[(x, 1)],
                g.clb_sink[(5 - x, 4)], frozenset((0,)),
            ))
            cid += 1
            reqs.append(RouteRequest(
                cid, f"d{cid}", g.clb_opin[(x, 4)],
                g.clb_sink[(5 - x, 1)], frozenset((0,)),
            ))
            cid += 1
        kwargs = dict(pres_fac_mult=1.0, pres_fac_first=1.0,
                      acc_fac=2.0, max_iterations=40)
        scalar = ScalarPathFinderRouter(g, **kwargs).route(reqs)
        vector = VectorizedPathFinderRouter(g, **kwargs).route(reqs)
        assert scalar.iterations > 1  # history actually negotiated
        _assert_identical(scalar, vector)

    def test_unroutable_raises_in_both(self):
        from repro.arch.architecture import FpgaArchitecture
        from repro.route.router import RouteRequest

        arch = FpgaArchitecture(nx=2, ny=2, channel_width=1, k=4)
        g = build_rrg(arch)
        reqs = [
            RouteRequest(i, f"n{i}", g.clb_opin[(1 + i % 2, 1)],
                         g.clb_sink[(2, 2)], frozenset((0,)))
            for i in range(4)
        ] + [
            RouteRequest(4, "p", g.pad_opin[(1, 0, 0)],
                         g.clb_sink[(2, 2)], frozenset((0,))),
        ]
        with pytest.raises(RoutingError):
            ScalarPathFinderRouter(g, max_iterations=4).route(reqs)
        with pytest.raises(RoutingError):
            VectorizedPathFinderRouter(
                g, max_iterations=4
            ).route(reqs)
