"""Tests for the regex-to-hardware compiler."""

import pytest

from repro.bench.regex import (
    DEFAULT_PATTERNS,
    RegexSyntaxError,
    compile_regex_circuit,
    parse_regex,
    reference_match_positions,
    regex_to_network,
)
from repro.netlist.simulate import simulate_logic, simulate_lut


def run_matcher(netlist, data: bytes):
    """Feed bytes through a compiled matcher; return match positions."""
    seq = []
    for byte in data:
        inputs = {f"ch[{i}]": bool(byte >> i & 1) for i in range(8)}
        inputs["valid"] = True
        seq.append(inputs)
    # One flush cycle: the accept FF registers the final character's
    # match at the end of the last data cycle, visible one cycle later.
    seq.append({**{f"ch[{i}]": False for i in range(8)},
                "valid": False})
    sim = (
        simulate_lut if hasattr(netlist, "blocks") else simulate_logic
    )
    trace = sim(netlist, seq)
    # match observed in cycle i refers to the character consumed in
    # cycle i-1, i.e. 1-based text position i.
    hits = []
    for i, out in enumerate(trace):
        if out["match"]:
            hits.append(i)
    return hits


class TestParser:
    def test_literal(self):
        ast = parse_regex("ab")
        assert ast.kind == "concat"

    def test_alternation_and_groups(self):
        ast = parse_regex("a(b|c)d")
        assert ast.kind == "concat"

    def test_char_class_range(self):
        ast = parse_regex("[a-c]")
        assert ast.chars == frozenset({97, 98, 99})

    def test_negated_class(self):
        ast = parse_regex("[^a]")
        assert 97 not in ast.chars
        assert 98 in ast.chars
        assert len(ast.chars) == 255

    def test_escapes(self):
        assert parse_regex(r"\x41").chars == frozenset({0x41})
        assert parse_regex(r"\d").chars == frozenset(
            ord(c) for c in "0123456789"
        )
        assert parse_regex(r"\.").chars == frozenset({ord(".")})

    def test_dot(self):
        assert len(parse_regex(".").chars) == 256

    def test_errors(self):
        for bad in ("a(", "[", "a)", "*a", "a|*", r"\x4"):
            with pytest.raises(RegexSyntaxError):
                parse_regex(bad)


class TestNfaOracle:
    @pytest.mark.parametrize("pattern,text,expected", [
        ("abc", b"xxabcx", [5]),
        ("abc", b"abcabc", [3, 6]),
        ("a+", b"caaab", [2, 3, 4]),
        ("a*b", b"aab", [3]),
        ("(ab|cd)e", b"zcde", [4]),
        ("colou?r", b"color colour", [5, 12]),
    ])
    def test_search(self, pattern, text, expected):
        assert reference_match_positions(pattern, text) == expected

    def test_no_match(self):
        assert reference_match_positions("xyz", b"abcabc") == []


class TestHardwareMatcher:
    @pytest.mark.parametrize("pattern,text", [
        ("abc", b"xxabcxabc"),
        ("a+b", b"aaab aab b"),
        ("(ab|cd)+e", b"ababe cde xx"),
        ("[0-9]+x", b"12x 9x ax"),
        ("colou?r", b"color colour"),
    ])
    def test_network_matches_oracle(self, pattern, text):
        network = regex_to_network(pattern)
        expected = reference_match_positions(pattern, text)
        assert run_matcher(network, text) == expected

    def test_mapped_circuit_matches_oracle(self):
        pattern = "(ab|cd)+e"
        text = b"abcde ababe!"
        circuit = compile_regex_circuit(pattern)
        expected = reference_match_positions(pattern, text)
        assert run_matcher(circuit, text) == expected

    def test_valid_low_freezes_matcher(self):
        network = regex_to_network("ab")
        seq = [
            {"valid": True, **{f"ch[{i}]": bool(ord("a") >> i & 1)
                               for i in range(8)}},
            {"valid": False, **{f"ch[{i}]": bool(ord("b") >> i & 1)
                                for i in range(8)}},
        ]
        trace = simulate_logic(network, seq)
        assert not any(t["match"] for t in trace)

    def test_default_patterns_compile(self):
        for pattern in DEFAULT_PATTERNS:
            circuit = compile_regex_circuit(pattern)
            assert circuit.n_luts() > 0
            assert "match" in circuit.outputs
