"""Tests for the visualisation / reporting module."""

import xml.etree.ElementTree as ET

import pytest

from repro.arch.architecture import FpgaArchitecture
from repro.arch.rrg import build_rrg
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.placer import place_circuit
from repro.route.router import PathFinderRouter, RouteRequest
from repro.route.troute import route_lut_circuit
from repro.viz import (
    channel_heatmap,
    implementation_report,
    placement_floorplan,
    routing_svg,
    tunable_occupancy,
)


def _xor2():
    return TruthTable.var(0, 2) ^ TruthTable.var(1, 2)


def _circuit(n_blocks=6):
    c = LutCircuit("viz", 4)
    c.add_input("a")
    c.add_input("b")
    prev = ("a", "b")
    for i in range(n_blocks):
        c.add_block(f"n{i}", prev, _xor2())
        prev = (f"n{i}", "a" if i % 2 else "b")
    c.add_output(f"n{n_blocks - 1}")
    return c


@pytest.fixture(scope="module")
def implemented():
    arch = FpgaArchitecture(nx=4, ny=4, channel_width=6, k=4)
    circuit = _circuit()
    placement = place_circuit(circuit, arch, seed=4)
    rrg = build_rrg(arch)
    routing = route_lut_circuit(circuit, placement, rrg)
    return arch, circuit, placement, rrg, routing


class TestFloorplan:
    def test_dimensions(self, implemented):
        arch, _c, placement, *_ = implemented
        art = placement_floorplan(placement)
        grid_lines = art.splitlines()[:-1]
        assert len(grid_lines) == arch.ny + 2
        assert all(len(line) == arch.nx + 2 for line in grid_lines)

    def test_occupancy_count(self, implemented):
        _arch, circuit, placement, *_ = implemented
        art = placement_floorplan(placement)
        assert art.count("#") == circuit.n_luts()
        assert f"{circuit.n_luts()} used" in art

    def test_pads_drawn_on_perimeter(self, implemented):
        _arch, circuit, placement, *_ = implemented
        art = placement_floorplan(placement)
        n_ios = len(circuit.inputs) + len(circuit.outputs)
        assert art.count("o") >= 1
        # Pad markers can share locations (io_rat 2), so at least
        # ceil(n_ios / io_rat) marks appear.
        assert art.count("o") >= (n_ios + 1) // 2


class TestTunableOccupancy:
    def test_merged_tiles_marked(self):
        from repro.core.combined_placement import (
            merge_with_combined_placement,
        )
        from repro.core.merge import MergeStrategy

        modes = [_circuit(5), _circuit(7)]
        modes[1] = modes[1].copy(name="viz2")
        arch = FpgaArchitecture(nx=4, ny=4, channel_width=8, k=4)
        tunable, _ = merge_with_combined_placement(
            "occ", modes, arch,
            strategy=MergeStrategy.WIRE_LENGTH, seed=0,
        )
        art = tunable_occupancy(tunable)
        assert "2" in art  # at least one merged tile
        assert "carrying" in art

    def test_unplaced_rejected(self):
        from repro.core.merge import merge_by_index

        modes = [_circuit(3), _circuit(4).copy(name="viz2")]
        tunable = merge_by_index("x", modes)
        with pytest.raises(ValueError, match="no sites"):
            tunable_occupancy(tunable)


class TestHeatmap:
    def test_shape_and_peak(self, implemented):
        arch, _c, _p, _rrg, routing = implemented
        art = channel_heatmap(routing, 0, "x")
        lines = art.splitlines()
        assert lines[0].startswith("chanx utilisation")
        # chanx rows: ny+1 y-positions.
        assert len(lines) == 1 + (arch.ny + 1) + 1
        assert "peak" in lines[-1]

    def test_orientation_validated(self, implemented):
        *_rest, routing = implemented
        with pytest.raises(ValueError, match="orientation"):
            channel_heatmap(routing, 0, "diagonal")

    def test_unused_mode_is_blank(self, implemented):
        _arch, _c, _p, rrg, _routing = implemented
        reqs = [RouteRequest(
            0, "n", rrg.clb_opin[(1, 1)], rrg.clb_sink[(2, 2)],
            frozenset((0,)),
        )]
        result = PathFinderRouter(rrg, n_modes=2).route(reqs)
        art = channel_heatmap(result, 1, "x")
        assert art.splitlines()[-1] == "peak 0/6 tracks"


class TestRoutingSvg:
    def test_well_formed_xml(self, implemented):
        *_rest, routing = implemented
        svg = routing_svg(routing)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_wires_and_legend(self, implemented):
        *_rest, routing = implemented
        svg = routing_svg(routing, title="t&lt;")
        assert svg.count("<line") == len(routing.wires_used(0))
        assert "mode 0" in svg
        assert "shared" in svg

    def test_shared_wires_darker(self, implemented):
        _arch, _c, _p, rrg, _routing = implemented
        reqs = [
            RouteRequest(0, "a", rrg.clb_opin[(1, 1)],
                         rrg.clb_sink[(4, 4)], frozenset((0, 1))),
        ]
        result = PathFinderRouter(rrg, n_modes=2).route(reqs)
        svg = routing_svg(result)
        assert '#222222' in svg  # wires shared by both modes


class TestReport:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.core.flow import (
            FlowOptions,
            implement_multi_mode,
        )
        from repro.core.merge import MergeStrategy

        modes = [_circuit(5), _circuit(7).copy(name="viz2")]
        return implement_multi_mode(
            "report", modes,
            FlowOptions(seed=0, inner_num=0.1),
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )

    def test_report_sections(self, result):
        text = implementation_report(result)
        for heading in (
            "# Multi-mode implementation report",
            "## Region",
            "## Reconfiguration cost",
            "## Merged (Tunable) circuit",
            "## Per-mode wire usage",
        ):
            assert heading in text

    def test_report_numbers_consistent(self, result):
        from repro.core.merge import MergeStrategy

        text = implementation_report(result)
        assert str(result.mdr.cost.total) in text
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        assert str(dcs.cost.total) in text
        speedup = result.speedup(MergeStrategy.WIRE_LENGTH)
        assert f"{speedup:.2f}x" in text

    def test_tables_are_markdown(self, result):
        text = implementation_report(result)
        assert "| variant | LUT bits |" in text
        assert "|---|" in text
