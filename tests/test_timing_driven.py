"""System-level tests of the timing-driven flow.

Mirrors the execution-subsystem guarantees of ``tests/test_exec.py``
for ``timing_driven=True``: bit-identical results across worker counts
and across warm/cold caches, the ``criticality_exponent=0`` degrade
(pure congestion — bit-identical to the wirelength-driven flow), the
fully-critical single-path edge case, and — in the slow tier — the
acceptance check that the FIR pair workload's post-route critical path
improves under the timing-driven flow.
"""

import pytest

from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.exec.cache import StageCache
from repro.exec.progress import ProgressLog
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable

from tests.test_exec import result_signature, tiny_circuit

TIMED = FlowOptions(inner_num=0.2, timing_driven=True)


def _run_tiny(options, workers=None, cache=None, progress=None):
    modes = [tiny_circuit("a"), tiny_circuit("b", flip=True)]
    return implement_multi_mode(
        "tiny",
        modes,
        options,
        workers=workers,
        cache=cache,
        progress=progress,
    )


def single_path_circuit(n=4):
    """in -> b0 -> ... -> b(n-1) -> out: every connection critical."""
    c = LutCircuit("path", 4)
    c.add_input("in")
    prev = "in"
    for i in range(n):
        c.add_block(f"b{i}", (prev,), TruthTable.var(0, 1))
        prev = f"b{i}"
    c.add_output(prev)
    return c


class TestTimingDrivenDeterminism:
    @pytest.mark.smoke
    def test_worker_count_determinism(self):
        """Timing-driven results identical for every worker count."""
        serial = _run_tiny(TIMED, workers=1)
        four = _run_tiny(TIMED, workers=4)
        assert result_signature(serial) == result_signature(four)

    def test_warm_cache_bit_identical(self, tmp_path):
        cold = _run_tiny(TIMED, cache=StageCache(tmp_path))
        warm_progress = ProgressLog()
        warm = _run_tiny(
            TIMED,
            cache=StageCache(tmp_path),
            progress=warm_progress,
        )
        assert result_signature(cold) == result_signature(warm)
        hits = [r for r in warm_progress.records if r.cache_hit]
        assert hits and hits[0].stage == "multimode"

    def test_timed_and_untimed_share_a_cache(self, tmp_path):
        """Both flavours memoize side by side without aliasing."""
        untimed = FlowOptions(inner_num=0.2)
        base = _run_tiny(untimed, cache=StageCache(tmp_path))
        timed = _run_tiny(TIMED, cache=StageCache(tmp_path))
        # Warm reruns return each flavour's own result.
        base_again = _run_tiny(untimed, cache=StageCache(tmp_path))
        timed_again = _run_tiny(TIMED, cache=StageCache(tmp_path))
        assert result_signature(base) == result_signature(base_again)
        assert result_signature(timed) == result_signature(
            timed_again
        )

    def test_timing_changes_the_trajectory(self):
        """The timing term must actually reach the optimisers."""
        base = _run_tiny(FlowOptions(inner_num=0.2))
        timed = _run_tiny(TIMED)
        assert result_signature(base) != result_signature(timed)


class TestExponentZeroDegrade:
    def test_exponent_zero_is_pure_congestion(self):
        """criticality_exponent=0 defines the timing term away, so a
        'timing-driven' run is bit-identical to the wirelength flow."""
        base = _run_tiny(FlowOptions(inner_num=0.2))
        degraded = _run_tiny(
            FlowOptions(
                inner_num=0.2,
                timing_driven=True,
                criticality_exponent=0.0,
            )
        )
        assert result_signature(base) == result_signature(degraded)

    def test_exponent_zero_yields_no_config(self):
        options = FlowOptions(
            timing_driven=True, criticality_exponent=0.0
        )
        assert options.criticality() is None
        assert FlowOptions().criticality() is None
        assert FlowOptions(timing_driven=True).criticality() \
            is not None


class TestFullyCriticalSinglePath:
    def test_single_path_pair_routes_legally(self):
        """Every connection at the criticality cap still converges."""
        modes = [single_path_circuit(4), single_path_circuit(5)]
        result = implement_multi_mode(
            "path", modes, FlowOptions(
                inner_num=0.2, timing_driven=True,
                criticality_exponent=2.0,
            ),
        )
        from repro.route.router import validate_routing

        for impl in result.mdr.implementations:
            validate_routing(impl.routing)
        for dcs in result.dcs.values():
            validate_routing(dcs.routing)
        delays = result.mdr.per_mode_critical_delay()
        assert all(d > 0 for d in delays)

    def test_single_path_criticalities_at_cap(self):
        from repro.arch.architecture import size_for_circuits
        from repro.arch.rrg import build_rrg
        from repro.place.placer import place_circuit
        from repro.timing.criticality import (
            CriticalityConfig,
            lut_connection_criticalities,
        )

        circuit = single_path_circuit(4)
        arch = size_for_circuits(
            circuit.n_luts(), 2, channel_width=8
        )
        placement = place_circuit(circuit, arch, seed=0)
        config = CriticalityConfig()
        crit = lut_connection_criticalities(
            circuit, placement, build_rrg(arch), config
        )
        assert crit
        assert all(
            w == pytest.approx(config.max_criticality)
            for w in crit.values()
        )


class TestFmaxReporting:
    def test_frequency_ratios_shape(self):
        result = _run_tiny(TIMED)
        for strategy in (
            MergeStrategy.EDGE_MATCHING,
            MergeStrategy.WIRE_LENGTH,
        ):
            ratios = result.frequency_ratios(strategy)
            assert len(ratios) == 2
            assert all(r > 0 for r in ratios)
            assert result.mean_frequency_ratio(
                strategy
            ) == pytest.approx(sum(ratios) / len(ratios))
        fmax = result.mdr.per_mode_fmax()
        delays = result.mdr.per_mode_critical_delay()
        assert fmax == pytest.approx([1 / d for d in delays])


@pytest.mark.slow
class TestFirImprovement:
    def test_fir_pair_critical_path_improves(self):
        """Acceptance: the FIR pair workload's post-route critical
        path improves under the timing-driven flow."""
        from repro.bench.fir import generate_fir_circuit

        lp = generate_fir_circuit(
            "lowpass", seed=0, n_taps=2, n_nonzero=2, k=4,
            name="fir_lp",
        )
        hp = generate_fir_circuit(
            "highpass", seed=0, n_taps=2, n_nonzero=2, k=4,
            name="fir_hp",
        )
        base = implement_multi_mode(
            "fir", [lp, hp], FlowOptions(inner_num=0.1)
        )
        timed = implement_multi_mode(
            "fir", [lp, hp],
            FlowOptions(inner_num=0.1, timing_driven=True),
        )
        base_delays = base.mdr.per_mode_critical_delay()
        timed_delays = timed.mdr.per_mode_critical_delay()
        assert sum(timed_delays) < sum(base_delays)
