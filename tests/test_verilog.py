"""Tests for the structural Verilog writer."""

import re

from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.netlist.verilog import write_verilog


def sample_circuit():
    c = LutCircuit("top[0]", k=4)
    c.add_input("in[0]")
    c.add_input("in[1]")
    c.add_block(
        "and$1", ("in[0]", "in[1]"),
        TruthTable.var(0, 2) & TruthTable.var(1, 2),
    )
    c.add_block(
        "state", ("state", "and$1"),
        TruthTable.var(0, 2) ^ TruthTable.var(1, 2),
        registered=True, init=True,
    )
    c.add_block("const1", (), TruthTable.const(True, 0))
    c.add_block(
        "y", ("state", "const1"),
        TruthTable.var(0, 2) | TruthTable.var(1, 2),
    )
    c.add_output("y")
    return c


class TestVerilogWriter:
    def test_module_structure(self):
        text = write_verilog(sample_circuit())
        assert text.count("module ") >= 3  # top + LUTs + DFF
        assert "module top_0" in text
        assert "endmodule" in text

    def test_identifiers_sanitised(self):
        text = write_verilog(sample_circuit())
        assert "in[0]" not in text
        assert "and$1" not in text
        assert "in_0_" in text or "in_0" in text

    def test_lut_instances(self):
        text = write_verilog(sample_circuit())
        instances = re.findall(
            r"^    LUT\d #\(", text, flags=re.MULTILINE
        )
        assert len(instances) == 4
        assert "DFF #(" in text

    def test_registered_block_gets_dff_and_init(self):
        text = write_verilog(sample_circuit())
        assert ".INIT(1'b1)" in text
        assert "state_ff" in text
        assert "state_d" in text

    def test_clk_port_only_when_sequential(self):
        c = LutCircuit("comb", k=4)
        c.add_input("a")
        c.add_block("y", ("a",), ~TruthTable.var(0, 1))
        c.add_output("y")
        text = write_verilog(c)
        assert "input clk" not in text

    def test_init_parameters_match_tables(self):
        c = LutCircuit("init", k=4)
        c.add_input("a")
        c.add_input("b")
        table = TruthTable.var(0, 2) & TruthTable.var(1, 2)
        c.add_block("y", ("a", "b"), table)
        c.add_output("y")
        text = write_verilog(c)
        assert f"4'h{table.bits:x}" in text

    def test_constant_block_uses_zero_wire(self):
        text = write_verilog(sample_circuit())
        assert "const_zero" in text

    def test_name_collision_resolved(self):
        c = LutCircuit("col", k=4)
        c.add_input("a$b")
        c.add_input("a_b")
        c.add_block(
            "y", ("a$b", "a_b"),
            TruthTable.var(0, 2) | TruthTable.var(1, 2),
        )
        c.add_output("y")
        text = write_verilog(c)
        # Both inputs must appear as distinct identifiers.
        assert "a_b" in text and "a_b_1" in text
