"""Tests for merging LUT circuits into Tunable circuits."""

import pytest

from repro.arch.architecture import Site
from repro.core.merge import (
    MergeStrategy,
    merge_by_index,
    merge_from_placement,
)
from repro.netlist.simulate import equivalent

from tests.test_tunable import two_mode_circuits


class TestMergeByIndex:
    def test_tlut_count_is_max_mode_size(self):
        m0, m1 = two_mode_circuits()
        tc = merge_by_index("mm", [m0, m1])
        assert len(tc.tluts) == max(m0.n_luts(), m1.n_luts())

    def test_shared_pads_merged_by_name(self):
        m0, m1 = two_mode_circuits()
        tc = merge_by_index("mm", [m0, m1])
        # i0 and i1 shared; outputs v and z distinct -> 4 pads.
        assert len(tc.pads) == 4
        in_pads = [p for p in tc.pads.values() if p.direction == "in"]
        assert all(len(p.signals) == 2 for p in in_pads)

    def test_specialization_is_equivalent(self):
        """The core correctness invariant: specialising the merged
        circuit at each mode reproduces that mode's circuit."""
        m0, m1 = two_mode_circuits()
        tc = merge_by_index("mm", [m0, m1])
        assert equivalent(tc.specialize(0), m0)
        assert equivalent(tc.specialize(1), m1)

    def test_single_mode_rejected(self):
        m0, _ = two_mode_circuits()
        with pytest.raises(ValueError):
            merge_by_index("mm", [m0])

    def test_mixed_k_rejected(self):
        m0, m1 = two_mode_circuits()
        m1.k = 5
        with pytest.raises(ValueError):
            merge_by_index("mm", [m0, m1])


class TestMergeFromPlacement:
    def _placed(self):
        m0, m1 = two_mode_circuits()
        # Co-locate u/w on (1,1), v/z on (2,1).
        block_sites = {
            (0, "u"): Site("clb", 1, 1),
            (0, "v"): Site("clb", 2, 1),
            (1, "w"): Site("clb", 1, 1),
            (1, "z"): Site("clb", 2, 1),
        }
        pad_sites = {
            "pad:i0": Site("pad", 0, 1, 0),
            "pad:i1": Site("pad", 0, 2, 0),
            "pad:v": Site("pad", 3, 0, 0),
            "pad:z": Site("pad", 3, 3, 0),
        }
        return m0, m1, block_sites, pad_sites

    def test_colocated_blocks_share_tlut(self):
        m0, m1, bs, ps = self._placed()
        tc = merge_from_placement("mm", [m0, m1], bs, ps)
        assert len(tc.tluts) == 2
        t = tc.tluts["tl1_1"]
        assert t.members[0].name == "u"
        assert t.members[1].name == "w"
        assert t.site == Site("clb", 1, 1)

    def test_connection_merging(self):
        """Connections with the same physical endpoints merge and get
        activation 1; mode-specific ones keep their mode product."""
        m0, m1, bs, ps = self._placed()
        tc = merge_from_placement("mm", [m0, m1], bs, ps)
        by_endpoints = {
            (c.source, c.sink): c.activation for c in tc.connections
        }
        # i0 -> tl1_1 exists in both modes: merged, always active.
        act = by_endpoints[("pad0_1_0", "tl1_1")]
        assert act.is_always()
        # i1 -> tl2_1 only exists in mode 0 (v reads i1, z does not).
        act = by_endpoints[("pad0_2_0", "tl2_1")]
        assert set(act.modes) == {0}

    def test_specialization_after_placement_merge(self):
        m0, m1, bs, ps = self._placed()
        tc = merge_from_placement("mm", [m0, m1], bs, ps)
        assert equivalent(tc.specialize(0), m0)
        assert equivalent(tc.specialize(1), m1)

    def test_site_connections_carry_activations(self):
        m0, m1, bs, ps = self._placed()
        tc = merge_from_placement("mm", [m0, m1], bs, ps)
        conns = tc.site_connections()
        assert all(len(c) == 4 for c in conns)
        modes_seen = {c[3] for c in conns}
        assert frozenset((0, 1)) in modes_seen

    def test_same_mode_collision_rejected(self):
        """Two blocks of the same mode cannot share a tile."""
        m0, m1, bs, ps = self._placed()
        bs[(0, "v")] = Site("clb", 1, 1)  # collide with (0, "u")
        with pytest.raises(ValueError):
            merge_from_placement("mm", [m0, m1], bs, ps)

    def test_block_on_pad_site_rejected(self):
        m0, m1, bs, ps = self._placed()
        bs[(0, "u")] = Site("pad", 0, 1, 1)
        with pytest.raises(ValueError):
            merge_from_placement("mm", [m0, m1], bs, ps)


class TestMergeStrategyEnum:
    def test_values(self):
        assert MergeStrategy("wire_length") is MergeStrategy.WIRE_LENGTH
        assert MergeStrategy("edge_matching") is (
            MergeStrategy.EDGE_MATCHING
        )
        assert MergeStrategy("by_index") is MergeStrategy.BY_INDEX
