"""Tests for the parameterised configuration and the
reconfiguration manager."""

import pytest

from repro.core.manager import (
    ParameterizedConfiguration,
    ReconfigurationManager,
)


def small_config():
    """3 static-on bits, 3 parameterised bits over 2 modes."""
    return ParameterizedConfiguration(
        n_modes=2,
        n_bits_total=100,
        static_on=frozenset({10, 11, 12}),
        parameterized={
            20: frozenset({0}),       # on only in mode 0
            21: frozenset({1}),       # on only in mode 1
            22: frozenset({0, 1}),    # would be static; kept to test
        },
    )


class TestParameterizedConfiguration:
    def test_bit_values(self):
        config = small_config()
        assert config.bit_value(10, 0) and config.bit_value(10, 1)
        assert config.bit_value(20, 0) and not config.bit_value(20, 1)
        assert not config.bit_value(99, 0)  # static zero

    def test_bits_on(self):
        config = small_config()
        assert config.bits_on(0) == {10, 11, 12, 20, 22}
        assert config.bits_on(1) == {10, 11, 12, 21, 22}

    def test_expressions(self):
        config = small_config()
        assert config.bit_expression(10) == "1"
        assert config.bit_expression(99) == "0"
        assert config.bit_expression(20) == "~m0"
        assert config.bit_expression(21) == "m0"
        assert config.bit_expression(22) == "1"

    def test_from_routing(self):
        from repro.arch.architecture import FpgaArchitecture
        from repro.arch.rrg import build_rrg
        from repro.route.router import PathFinderRouter, RouteRequest

        arch = FpgaArchitecture(nx=3, ny=3, channel_width=4)
        rrg = build_rrg(arch)
        reqs = [
            RouteRequest(0, "a", rrg.clb_opin[(1, 1)],
                         rrg.clb_sink[(3, 3)], frozenset((0, 1))),
            RouteRequest(1, "b", rrg.clb_opin[(1, 3)],
                         rrg.clb_sink[(3, 1)], frozenset((0,))),
        ]
        result = PathFinderRouter(rrg, n_modes=2).route(reqs)
        config = ParameterizedConfiguration.from_routing(
            result, rrg.n_bits
        )
        # Connection "a" is static-on, "b" parameterised.
        assert config.static_on
        assert config.n_parameterized() > 0
        assert config.bits_on(0) == result.bits_on(0)
        assert config.bits_on(1) == result.bits_on(1)


class TestManager:
    def test_initial_load_writes_everything(self):
        manager = ReconfigurationManager(small_config())
        record = manager.load_initial(0)
        assert record.bits_written == 100
        manager.verify()

    def test_switch_writes_parameterized_only(self):
        manager = ReconfigurationManager(small_config())
        manager.load_initial(0)
        record = manager.switch(1)
        # evaluate policy: all 3 parameterised bits rewritten.
        assert record.bits_written == 3
        manager.verify()

    def test_minimal_policy_writes_changes_only(self):
        manager = ReconfigurationManager(
            small_config(), policy="minimal"
        )
        manager.load_initial(0)
        record = manager.switch(1)
        # Bits 20 and 21 change; bit 22 is one in both modes.
        assert record.bits_written == 2
        manager.verify()

    def test_switch_sequence_stays_consistent(self):
        manager = ReconfigurationManager(small_config())
        manager.load_initial(1)
        for mode in (0, 1, 1, 0, 0, 1):
            manager.switch(mode)
            manager.verify()
        assert len(manager.history) == 7

    def test_first_switch_is_full_load(self):
        manager = ReconfigurationManager(small_config())
        record = manager.switch(1)
        assert record.from_mode is None
        assert record.bits_written == 100

    def test_mode_out_of_range(self):
        manager = ReconfigurationManager(small_config())
        with pytest.raises(ValueError):
            manager.switch(5)

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            ReconfigurationManager(small_config(), policy="magic")

    def test_verify_detects_corruption(self):
        manager = ReconfigurationManager(small_config())
        manager.load_initial(0)
        manager.memory.discard(10)
        with pytest.raises(AssertionError):
            manager.verify()

    def test_end_to_end_with_flow_result(self):
        """Manager replay must agree with the flow's DCS bit count."""
        from repro.core.flow import FlowOptions, implement_multi_mode
        from repro.core.merge import MergeStrategy
        from tests.test_tunable import two_mode_circuits

        m0, m1 = two_mode_circuits()
        result = implement_multi_mode(
            "mgr", [m0, m1],
            FlowOptions(inner_num=0.3, channel_width=6),
            strategies=(MergeStrategy.WIRE_LENGTH,),
        )
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        config = ParameterizedConfiguration.from_routing(
            dcs.routing, result.mdr.cost.routing_bits
        )
        assert config.n_parameterized() == dcs.cost.routing_bits
        manager = ReconfigurationManager(config)
        manager.load_initial(0)
        record = manager.switch(1)
        assert record.bits_written == dcs.cost.routing_bits
        manager.verify()
