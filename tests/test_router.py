"""Tests for the PathFinder router and TRoute workloads."""

import pytest

from repro.arch.architecture import FpgaArchitecture, Site
from repro.arch.rrg import build_rrg
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.place.placer import place_circuit
from repro.route.router import (
    PathFinderRouter,
    RouteRequest,
    RoutingError,
)
from repro.route.troute import (
    parameterized_routing_bits,
    requests_from_connections,
    route_lut_circuit,
)


@pytest.fixture(scope="module")
def fabric():
    arch = FpgaArchitecture(nx=4, ny=4, channel_width=6, k=4)
    return arch, build_rrg(arch)


def _connected(route):
    """Path edges must chain source -> ... -> sink."""
    nodes = route.nodes()
    for (u, v, _b), a, b in zip(route.edges, nodes, nodes[1:]):
        assert (u, v) == (a, b)


class TestSingleMode:
    def test_single_connection(self, fabric):
        _arch, g = fabric
        req = RouteRequest(
            0, "n0",
            g.clb_opin[(1, 1)], g.clb_sink[(4, 4)], frozenset((0,)),
        )
        result = PathFinderRouter(g).route([req])
        route = result.routes[0]
        _connected(route)
        assert route.edges[0][0] == req.source
        assert route.edges[-1][1] == req.sink
        assert route.bits()  # switches were turned on

    def test_multi_sink_net_shares_trunk(self, fabric):
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "n0", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 4)], frozenset((0,))),
            RouteRequest(1, "n0", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 3)], frozenset((0,))),
        ]
        result = PathFinderRouter(g).route(reqs)
        wires0 = result.routes[0].wire_nodes(g)
        wires1 = result.routes[1].wire_nodes(g)
        # Same net: overlap allowed (and encouraged by the discount).
        assert result.wires_used(0) == wires0 | wires1

    def test_congestion_negotiated(self, fabric):
        """Many nets through a narrow region must all become legal."""
        _arch, g = fabric
        reqs = []
        cid = 0
        for x in range(1, 5):
            reqs.append(RouteRequest(
                cid, f"n{cid}", g.clb_opin[(x, 1)],
                g.clb_sink[(x, 4)], frozenset((0,)),
            ))
            cid += 1
            reqs.append(RouteRequest(
                cid, f"n{cid}", g.clb_opin[(x, 4)],
                g.clb_sink[(x, 1)], frozenset((0,)),
            ))
            cid += 1
        router = PathFinderRouter(g)
        result = router.route(reqs)
        assert not router._congested_nodes()
        assert len(result.routes) == len(reqs)

    def test_unroutable_raises(self):
        arch = FpgaArchitecture(nx=2, ny=2, channel_width=1, k=4)
        g = build_rrg(arch)
        # Two different nets into the same block: only k ipins but
        # channel width 1 makes wires the bottleneck.
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(2, 2)], frozenset((0,))),
            RouteRequest(1, "b", g.clb_opin[(1, 2)],
                         g.clb_sink[(2, 2)], frozenset((0,))),
            RouteRequest(2, "c", g.clb_opin[(2, 1)],
                         g.clb_sink[(2, 2)], frozenset((0,))),
            RouteRequest(3, "d", g.pad_opin[(1, 0, 0)],
                         g.clb_sink[(2, 2)], frozenset((0,))),
            RouteRequest(4, "e", g.pad_opin[(0, 1, 0)],
                         g.clb_sink[(2, 2)], frozenset((0,))),
        ]
        router = PathFinderRouter(g, max_iterations=6)
        with pytest.raises(RoutingError):
            router.route(reqs)

    def test_mode_out_of_range_rejected(self, fabric):
        _arch, g = fabric
        req = RouteRequest(0, "n", g.clb_opin[(1, 1)],
                           g.clb_sink[(2, 2)], frozenset((1,)))
        with pytest.raises(ValueError):
            PathFinderRouter(g, n_modes=1).route([req])


class TestMultiMode:
    def test_different_modes_share_wires(self, fabric):
        """Two modes may use the same wire without conflict."""
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 1)], frozenset((0,))),
            RouteRequest(1, "b", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 1)], frozenset((1,))),
        ]
        router = PathFinderRouter(g, n_modes=2)
        result = router.route(reqs)
        assert not router._congested_nodes()

    def test_shared_connection_has_no_param_bits(self, fabric):
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(3, 3)], frozenset((0, 1))),
        ]
        result = PathFinderRouter(g, n_modes=2).route(reqs)
        assert parameterized_routing_bits(result) == set()
        assert result.bits_on(0) == result.bits_on(1)

    def test_mode_specific_bits_are_parameterized(self, fabric):
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(3, 3)], frozenset((0,))),
            RouteRequest(1, "b", g.clb_opin[(2, 1)],
                         g.clb_sink[(3, 2)], frozenset((1,))),
        ]
        result = PathFinderRouter(g, n_modes=2).route(reqs)
        params = parameterized_routing_bits(result)
        assert params == result.bits_on(0) ^ result.bits_on(1)
        assert params

    def test_wires_used_per_mode(self, fabric):
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 4)], frozenset((0, 1))),
            RouteRequest(1, "b", g.clb_opin[(1, 4)],
                         g.clb_sink[(4, 1)], frozenset((1,))),
        ]
        result = PathFinderRouter(g, n_modes=2).route(reqs)
        assert result.wires_used(1) >= result.wires_used(0)
        assert result.total_wirelength(1) > result.total_wirelength(0) - 1


class TestTrouteHelpers:
    def test_requests_merge_duplicates(self, fabric):
        _arch, g = fabric
        a = Site("clb", 1, 1)
        b = Site("clb", 2, 2)
        conns = [
            ("n", a, b, frozenset((0,))),
            ("n", a, b, frozenset((1,))),
        ]
        reqs = requests_from_connections(g, conns)
        assert len(reqs) == 1
        assert reqs[0].modes == frozenset((0, 1))

    def test_route_lut_circuit_end_to_end(self, fabric):
        arch, g = fabric
        c = LutCircuit("tiny", 4)
        c.add_input("a")
        c.add_input("b")
        c.add_block("x", ("a", "b"),
                    TruthTable.var(0, 2) & TruthTable.var(1, 2))
        c.add_block("y", ("x", "a"),
                    TruthTable.var(0, 2) | TruthTable.var(1, 2))
        c.add_output("y")
        placement = place_circuit(c, arch, seed=2)
        result = route_lut_circuit(c, placement, g)
        # Connections: x(2 pins) + y(2 pins) + PO tap = 5.
        assert len(result.routes) == 5
        for route in result.routes.values():
            _connected(route)


class TestValidation:
    def test_validate_clean_routing(self, fabric):
        from repro.route.router import validate_routing

        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 4)], frozenset((0, 1))),
            RouteRequest(1, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 2)], frozenset((0,))),
            RouteRequest(2, "b", g.clb_opin[(2, 3)],
                         g.clb_sink[(4, 4)], frozenset((1,))),
        ]
        result = PathFinderRouter(g, n_modes=2).route(reqs)
        validate_routing(result)

    def test_validate_detects_stranded_path(self, fabric):
        from repro.route.router import validate_routing

        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(3, 3)], frozenset((0,))),
        ]
        result = PathFinderRouter(g).route(reqs)
        # Sabotage: chop off the first edge so the path no longer
        # starts at the source.
        route = result.routes[0]
        route.edges.pop(0)
        with pytest.raises(AssertionError):
            validate_routing(result)

    def test_full_circuit_routing_validates(self, fabric):
        from repro.route.router import validate_routing

        arch, g = fabric
        c = LutCircuit("v", 4)
        c.add_input("a")
        c.add_input("b")
        prev = ("a", "b")
        for i in range(8):
            c.add_block(
                f"n{i}", prev,
                TruthTable.var(0, 2) ^ TruthTable.var(1, 2),
            )
            prev = (f"n{i}", "a" if i % 2 else "b")
        c.add_output("n7")
        placement = place_circuit(c, arch, seed=5)
        result = route_lut_circuit(c, placement, g)
        validate_routing(result)


class TestBitSharing:
    """Bit-level affinity: steering connections onto switches already
    on in the other modes so their bits become static."""

    def test_bit_affinity_validation(self, fabric):
        _arch, g = fabric
        with pytest.raises(ValueError):
            PathFinderRouter(g, bit_affinity=0.0)
        with pytest.raises(ValueError):
            PathFinderRouter(g, bit_affinity=1.5)
        with pytest.raises(ValueError):
            PathFinderRouter(g, sharing_passes=-1)

    def test_bit_refs_bookkeeping(self, fabric):
        _arch, g = fabric
        req = RouteRequest(
            0, "a", g.clb_opin[(1, 1)], g.clb_sink[(3, 3)],
            frozenset((1,)),
        )
        router = PathFinderRouter(g, n_modes=2)
        result = router.route([req])
        bits = result.routes[0].bits()
        assert bits
        for bit in bits:
            # On in mode 1, so turning it on in mode 0 makes it static.
            assert router._bit_becomes_static(bit, frozenset((0,)))
        # A bit no route uses stays mode-dependent.
        unused = next(
            b for b in range(g.n_bits) if b not in bits
        )
        assert not router._bit_becomes_static(unused, frozenset((0,)))

    def test_identical_endpoints_share_all_switches(self, fabric):
        """Different nets of different modes with the same endpoints
        end up on the same switches, leaving zero parameterised bits."""
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 4)], frozenset((0,))),
            RouteRequest(1, "b", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 4)], frozenset((1,))),
        ]
        router = PathFinderRouter(
            g, n_modes=2, bit_affinity=0.3, sharing_passes=3
        )
        result = router.route(reqs)
        assert parameterized_routing_bits(result) == set()

    def test_sharing_never_increases_param_bits(self, fabric):
        """Same workload with and without sharing passes: the sweeps
        only keep strictly better legal solutions."""
        _arch, g = fabric
        reqs = []
        cid = 0
        for mode in (0, 1):
            for x in range(1, 5):
                reqs.append(RouteRequest(
                    cid, f"m{mode}n{x}", g.clb_opin[(x, 1)],
                    g.clb_sink[(5 - x, 4)], frozenset((mode,)),
                ))
                cid += 1
        base = PathFinderRouter(
            g, n_modes=2, bit_affinity=0.3, sharing_passes=0
        ).route(reqs)
        swept = PathFinderRouter(
            g, n_modes=2, bit_affinity=0.3, sharing_passes=3
        ).route(reqs)
        assert len(parameterized_routing_bits(swept)) <= len(
            parameterized_routing_bits(base)
        )

    def test_sharing_passes_keep_legality(self, fabric):
        from repro.route.router import validate_routing

        _arch, g = fabric
        reqs = []
        cid = 0
        for mode in (0, 1):
            for x in range(1, 5):
                for y in (1, 2):
                    reqs.append(RouteRequest(
                        cid, f"m{mode}n{cid}", g.clb_opin[(x, y)],
                        g.clb_sink[(5 - x, 4 - y)],
                        frozenset((mode,)),
                    ))
                    cid += 1
        router = PathFinderRouter(
            g, n_modes=2, bit_affinity=0.2, sharing_passes=4
        )
        result = router.route(reqs)
        validate_routing(result)

    def test_shared_connection_gets_no_discount_everywhere(self, fabric):
        """A connection active in every mode cannot create
        parameterised bits, so sharing leaves it alone."""
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(4, 4)], frozenset((0, 1))),
        ]
        router = PathFinderRouter(
            g, n_modes=2, bit_affinity=0.3, sharing_passes=3
        )
        result = router.route(reqs)
        assert parameterized_routing_bits(result) == set()

    def test_rebuild_state_roundtrip(self, fabric):
        """_rebuild_state reproduces occupancy exactly."""
        _arch, g = fabric
        reqs = [
            RouteRequest(0, "a", g.clb_opin[(1, 1)],
                         g.clb_sink[(3, 3)], frozenset((0,))),
            RouteRequest(1, "b", g.clb_opin[(2, 2)],
                         g.clb_sink[(4, 4)], frozenset((1,))),
        ]
        router = PathFinderRouter(g, n_modes=2)
        result = router.route(reqs)
        # _occ rows are plain lists in the scalar core and numpy
        # arrays in the vectorized one; compare values, not types.
        occ_before = [list(map(int, row)) for row in router._occ]
        bit_refs_before = [dict(r) for r in router._bit_refs]
        router._rebuild_state(result.routes)
        assert [list(map(int, row)) for row in router._occ] == occ_before
        assert router._bit_refs == bit_refs_before
