#!/usr/bin/env bash
# Local end-to-end exercise of the nightly trend pipeline
# (campaign -> checkpoint resume -> trend ingest/gate/report) on a
# tiny workload, in a scratch directory.  Use it to sanity-check the
# pipeline after touching repro.bench.campaign / repro.bench.trend /
# the CLI, or to see what the nightly trend-gate job actually does.
#
# Usage: scripts/trend-smoke.sh   (NIGHTS=5 WINDOW=3 to override)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

NIGHTS="${NIGHTS:-4}"
WINDOW="${WINDOW:-7}"
work="$(mktemp -d -t repro-trend-smoke.XXXXXX)"
trap 'rm -rf "$work"' EXIT
echo "== scratch dir: $work"

run_campaign() {
  python -m repro campaign --suites klut --scale tiny \
    --pairs-per-suite 2 --effort 0.05 --name trend-smoke \
    --cache-dir "$work/stage-cache" \
    --jsonl "$work/records.jsonl" --summary "$work/summary.json" "$@"
}

echo "== cold campaign (writes the JSONL checkpoint)"
run_campaign

echo "== kill simulation: truncate the checkpoint mid-line, resume"
head -c "$(($(wc -c <"$work/records.jsonl") / 2))" \
  "$work/records.jsonl" >"$work/torn.jsonl"
mv "$work/torn.jsonl" "$work/records.jsonl"
run_campaign --resume

echo "== ingest $NIGHTS simulated nightlies"
for night in $(seq 1 "$NIGHTS"); do
  python -m repro trend ingest "$work/records.jsonl" \
    --db "$work/qor_trend.db" --commit "night-$night" \
    --label "smoke night $night"
done

echo "== gate + report (window $WINDOW)"
python -m repro trend gate --db "$work/qor_trend.db" \
  --window "$WINDOW"
python -m repro trend report --db "$work/qor_trend.db" \
  --window "$WINDOW" -o "$work/trend_report.md"
sed -n '1,8p' "$work/trend_report.md"

echo "== trend pipeline OK"
