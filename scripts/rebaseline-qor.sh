#!/usr/bin/env bash
# Intentionally refresh the committed QoR baseline the CI qor-gate
# compares against.  Run after a change that legitimately moves QoR
# (a better placer, a new cost model, resized ci-smoke workloads) and
# commit the updated BENCH_qor_baseline.json together with the change.
#
# Usage: scripts/rebaseline-qor.sh        (WORKERS=N to override)
set -euo pipefail
cd "$(dirname "$0")/.."

# A throwaway cache dir forces a cold run: the baseline's "seconds"
# is the runtime reference the CI gate bounds (5x), so a warm replay
# here would bake in a near-zero wall-clock and fail every PR.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro campaign \
  --preset ci-smoke --workers "${WORKERS:-4}" \
  --cache-dir "$(mktemp -d -t repro-rebaseline.XXXXXX)" \
  --jsonl "$(mktemp -t campaign_ci_smoke.XXXXXX.jsonl)" \
  --summary "$(mktemp -t BENCH_campaign.XXXXXX.json)" \
  --write-baseline BENCH_qor_baseline.json

echo "BENCH_qor_baseline.json refreshed — review the diff and commit"
echo "it with the change that moved QoR."
