#!/usr/bin/env python
"""End-to-end smoke of the compile service (the CI ``serve-smoke`` job).

Boots a real ``repro serve`` process on a free port with a scratch
stage cache, submits the tiny FIR pair twice (the second response must
report dedup against the in-flight first), waits for the QoR payload,
exercises the ``repro submit/status/result`` client subcommands, then
drains with ``stop`` and requires a clean process exit.

Usage: PYTHONPATH=src python scripts/serve-smoke.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.serve.client import ServeClient, pair_submission  # noqa: E402


def check(ok, label):
    print(("ok  " if ok else "FAIL") + f" {label}")
    if not ok:
        raise SystemExit(f"serve-smoke: {label} failed")


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=ROOT,
    )
    print(f"$ repro {' '.join(args)}\n{proc.stdout}", end="")
    return proc


def main():
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke.") as work:
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--use-threads", "--workers", "2",
                "--cache-dir", os.path.join(work, "stage-cache"),
            ],
            stdout=subprocess.PIPE, text=True,
            env={**os.environ, "PYTHONPATH": os.path.join(ROOT, "src")},
            cwd=ROOT,
        )
        try:
            # The serve banner announces the bound port (we asked for 0).
            url = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                line = server.stdout.readline()
                match = re.search(r"listening on (http://\S+)", line or "")
                if match:
                    url = match.group(1)
                    break
            check(url is not None, "server announced its URL")
            print(f"==  server at {url}")
            client = ServeClient(url, timeout=120)
            client.wait_ready(timeout=30)

            body = pair_submission(
                "fir", scale="tiny", options={"inner_num": 0.1}
            )
            first = client.submit(body)
            second = client.submit(body)
            check(first["deduped"] is False, "first submission executes")
            check(
                second["deduped"] is True
                and second["id"] == first["id"],
                "second identical submission dedups to the same flow",
            )

            status = client.wait(first["id"], timeout=240)
            check(status["state"] == "done", "flow completed")
            result = client.result(first["id"])
            check(
                "arch" in result["result"]
                and result["fingerprint"] == first["fingerprint"],
                "result payload carries the QoR under the same "
                "fingerprint",
            )
            stats = client.stats()
            check(
                stats["executed"] == 1 and stats["deduped"] == 1,
                "server executed the pair exactly once",
            )

            # The client subcommands speak the same protocol: an
            # identical CLI submission must dedup against the
            # completed flow and print its QoR summary.
            proc = run_cli(
                "submit", "--url", url, "--suite", "fir",
                "--scale", "tiny", "--effort", "0.1", "--wait",
            )
            check(
                proc.returncode == 0 and "(deduped)" in proc.stdout,
                "repro submit dedups against the completed flow",
            )
            proc = run_cli("status", "--url", url)
            check(
                proc.returncode == 0 and first["id"] in proc.stdout,
                "repro status lists the flow",
            )
            out_path = os.path.join(work, "result.json")
            proc = run_cli(
                "result", first["id"], "--url", url, "-o", out_path
            )
            with open(out_path, encoding="utf-8") as handle:
                saved = json.load(handle)
            check(
                proc.returncode == 0
                and saved["result"] == result["result"],
                "repro result fetches the identical payload",
            )

            drained = client.drain(stop=True)
            check(
                drained == {"drained": True, "stopped": True},
                "drain reported quiescence",
            )
            check(
                server.wait(timeout=30) == 0,
                "server exited cleanly after drain --stop",
            )
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)
    print("== serve smoke OK")


if __name__ == "__main__":
    main()
