"""Command-line interface for the multi-mode tool flow.

Subcommands mirror the stages of the paper's flow:

``repro map``
    Map a BLIF circuit to K-LUTs and write the mapped BLIF.
``repro implement``
    Run the full multi-mode flow (MDR + DCS) on two or more BLIF mode
    circuits and print the reconfiguration report.
``repro experiments``
    Regenerate the paper's tables and figures (same as
    ``examples/run_paper_experiments.py``).
``repro info``
    Print statistics of a BLIF circuit (size before/after mapping).
``repro export``
    Implement one BLIF circuit in a reconfigurable region and write
    the VPR-format artefacts (``.net``, ``.place``, ``.route``) plus
    the architecture file.
``repro report``
    Run the multi-mode flow on BLIF mode circuits and write the
    Markdown implementation report (optionally an SVG of the merged
    routing).
``repro campaign``
    Run a declarative sweep (suites x flow variants x seeds) over the
    workload registry (:mod:`repro.gen`), writing deterministic
    per-run JSONL records plus a summary JSON; ``--gate`` checks the
    summary against a committed QoR baseline (the CI ``qor-gate``)
    and ``--write-baseline`` re-baselines intentionally.  The JSONL
    is appended atomically as runs finish and doubles as a
    checkpoint: ``--resume`` continues a killed sweep from its tail.
``repro trend``
    The nightly QoR trend database (``ingest`` a campaign JSONL into
    SQLite, ``gate`` the newest run against the median of a rolling
    window of previous runs, ``report`` the Markdown drift table);
    see :mod:`repro.bench.trend`.
``repro bench-exec``
    Benchmark the execution subsystem (serial vs parallel vs warm
    cache) and write the machine-readable ``BENCH_exec.json``; the
    workload defaults to FIR pairs and ``--workload`` selects any
    registered suite.
``repro cache``
    Inspect, LRU-prune (``prune --max-size <bytes>``) or clear the
    persistent stage cache.
``repro serve``
    Run the compile service (:mod:`repro.serve`): an asyncio HTTP API
    that accepts flow submissions, dedups identical in-flight and
    completed requests by stage-cache fingerprint, and executes them
    on a resizable worker pool with priority lanes and per-tenant
    quotas.
``repro submit`` / ``repro status`` / ``repro result``
    Clients of a running ``repro serve``: submit a flow (a registered
    suite pair or an explicit ``--modes-json`` list), poll its state,
    fetch the QoR payload.

Flow-running subcommands share one option vocabulary (hoisted into
parent parsers): ``--workers N`` (pool fan-out of independent stages;
results are bit-identical to serial) and ``--cache-dir``/``--no-cache``
(persistent stage memoization; see ``repro.exec``), plus
``--timing-driven``/``--criticality-exponent``/``--timing-tradeoff``
(criticality-weighted placement and routing with per-mode Fmax and
MDR:DCS frequency ratios in the report; see
``repro.timing.criticality``).  Historical spellings
(``--n-workers``, ``--jobs``, ``--cachedir``, ``--timing``) still
parse but print a deprecation warning.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.exec import ProgressLog, StageCache
from repro.netlist.blif import read_blif_file, write_lut_blif
from repro.netlist.simulate import equivalent
from repro.synth.optimize import optimize_network
from repro.synth.techmap import tech_map


class _DeprecatedAlias(argparse.Action):
    """Old option spelling: warn on use, store into the canonical dest."""

    def __init__(self, option_strings, dest, canonical="", **kwargs):
        kwargs.setdefault("help", argparse.SUPPRESS)
        super().__init__(option_strings, dest, **kwargs)
        self.canonical = canonical

    def __call__(self, parser, namespace, values, option_string=None):
        print(
            f"warning: {option_string} is deprecated; "
            f"use {self.canonical}",
            file=sys.stderr,
        )
        setattr(
            namespace, self.dest, True if self.nargs == 0 else values
        )


def _exec_parent() -> argparse.ArgumentParser:
    """Shared ``--workers/--cache-dir/--no-cache`` group.

    A parent parser (``add_help=False``) so every flow-running
    subcommand — including ``serve`` — spells the execution knobs
    identically; historical divergent spellings survive as deprecated
    aliases that warn.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for independent flow stages "
             "(default: REPRO_WORKERS or serial)",
    )
    parent.add_argument(
        "--n-workers", "--jobs", dest="workers", type=int,
        action=_DeprecatedAlias, canonical="--workers",
    )
    parent.add_argument(
        "--cache-dir", default=None,
        help="stage-cache directory (default: REPRO_CACHE_DIR or "
             "~/.cache/repro/stages)",
    )
    parent.add_argument(
        "--cachedir", dest="cache_dir",
        action=_DeprecatedAlias, canonical="--cache-dir",
    )
    parent.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent stage cache",
    )
    return parent


def _exec_cache(args: argparse.Namespace) -> StageCache:
    return StageCache(args.cache_dir, enabled=not args.no_cache)


def _tradeoff(value: str) -> float:
    """argparse type for --timing-tradeoff: a float in [0, 1]."""
    tradeoff = float(value)
    if not 0.0 <= tradeoff <= 1.0:
        raise argparse.ArgumentTypeError(
            f"{value}: tradeoff must be in [0, 1]"
        )
    return tradeoff


def _timing_parent() -> argparse.ArgumentParser:
    """Shared timing-driven knob group (parent parser)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--timing-driven", action="store_true",
        help="optimise criticality-weighted delay in placement and "
             "routing (default: wire length / congestion only)",
    )
    parent.add_argument(
        "--timing", dest="timing_driven", nargs=0,
        action=_DeprecatedAlias, canonical="--timing-driven",
    )
    parent.add_argument(
        "--criticality-exponent", type=float, default=1.0,
        help="criticality sharpening crit**exponent (0 degrades to "
             "pure congestion; default 1.0)",
    )
    parent.add_argument(
        "--timing-tradeoff", type=_tradeoff, default=0.5,
        help="placement mix between wire length (0.0) and timing "
             "(1.0); default 0.5",
    )
    return parent


def _warn_unused_timing_args(args: argparse.Namespace) -> None:
    """Tuning knobs do nothing without --timing-driven; say so."""
    if args.timing_driven:
        return
    if (
        args.criticality_exponent != 1.0
        or args.timing_tradeoff != 0.5
    ):
        print(
            "warning: --criticality-exponent/--timing-tradeoff have "
            "no effect without --timing-driven",
            file=sys.stderr,
        )


def _cmd_map(args: argparse.Namespace) -> int:
    network = read_blif_file(args.input)
    mapped = tech_map(optimize_network(network), k=args.k)
    if args.verify and not equivalent(network, mapped):
        print("ERROR: mapped circuit is not equivalent",
              file=sys.stderr)
        return 1
    text = write_lut_blif(mapped)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"{args.input}: {mapped.n_luts()} {args.k}-LUTs "
            f"-> {args.output}"
        )
    else:
        sys.stdout.write(text)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    network = read_blif_file(args.input)
    stats = network.stats()
    print(f"model:    {network.name}")
    print(f"inputs:   {stats['inputs']}")
    print(f"outputs:  {stats['outputs']}")
    print(f"nodes:    {stats['nodes']}")
    print(f"latches:  {stats['latches']}")
    mapped = tech_map(optimize_network(network), k=args.k)
    mstats = mapped.stats()
    print(f"{args.k}-LUTs:   {mstats['luts']} "
          f"(depth {mstats['depth']}, {mstats['ffs']} registered)")
    return 0


def _cmd_implement(args: argparse.Namespace) -> int:
    modes = []
    for path in args.modes:
        network = read_blif_file(path)
        modes.append(tech_map(optimize_network(network), k=args.k))
        print(f"mode {len(modes) - 1}: {path} "
              f"-> {modes[-1].n_luts()} LUTs")
    _warn_unused_timing_args(args)
    options = FlowOptions(
        seed=args.seed,
        k=args.k,
        inner_num=args.effort,
        channel_width=args.channel_width,
        timing_driven=args.timing_driven,
        criticality_exponent=args.criticality_exponent,
        timing_tradeoff=args.timing_tradeoff,
    )
    strategies = tuple(
        MergeStrategy(s) for s in args.strategies
    )
    result = implement_multi_mode(
        "cli", modes, options, strategies=strategies,
        workers=args.workers, cache=_exec_cache(args),
        progress=ProgressLog(verbose=True),
    )
    print(
        f"\nregion: {result.arch.nx}x{result.arch.ny} CLBs, "
        f"channel width {result.arch.channel_width}"
        + (" (timing-driven)" if options.timing_driven else "")
    )
    print(f"MDR rewrites {result.mdr.cost.total} bits per switch "
          f"({result.mdr.cost.routing_bits} routing)")
    print("differing routing bits (separate implementations): "
          f"{result.mdr.diff.routing_bits}")
    mdr_fmax = result.mdr.per_mode_fmax()
    print("MDR per-mode Fmax: "
          + ", ".join(f"{f:.4f}" for f in mdr_fmax))
    for strategy in strategies:
        dcs = result.dcs[strategy]
        ratios = result.frequency_ratios(strategy)
        print(
            f"DCS [{strategy.value}]: {dcs.cost.total} bits "
            f"({dcs.cost.routing_bits} parameterised), "
            f"speed-up {result.speedup(strategy):.2f}x, "
            f"wires {100 * result.wirelength_ratio(strategy):.0f}% "
            "of MDR"
        )
        print(
            "    per-mode Fmax "
            + ", ".join(f"{f:.4f}" for f in dcs.per_mode_fmax())
            + "; MDR:DCS frequency ratio "
            + ", ".join(f"{r:.2f}" for r in ratios)
            + f" (mean {sum(ratios) / len(ratios):.2f})"
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import os

    from repro.arch.architecture import size_for_circuits
    from repro.arch.rrg import build_rrg
    from repro.interop import (
        DEFAULT_4LUT_ARCH,
        write_net_file,
        write_place_file,
        write_route_file,
    )
    from repro.place.placer import place_circuit
    from repro.route.troute import route_lut_circuit

    network = read_blif_file(args.input)
    circuit = tech_map(optimize_network(network), k=args.k)
    io_count = len(circuit.inputs) + len(circuit.outputs)
    arch = size_for_circuits(
        circuit.n_luts(), io_count, k=args.k,
        channel_width=args.channel_width,
    )
    placement = place_circuit(circuit, arch, seed=args.seed)
    routing = route_lut_circuit(circuit, placement, build_rrg(arch))

    os.makedirs(args.outdir, exist_ok=True)
    base = os.path.join(args.outdir, circuit.name)
    artefacts = {
        f"{base}.arch": DEFAULT_4LUT_ARCH,
        f"{base}.net": write_net_file(circuit),
        f"{base}.place": write_place_file(
            placement,
            netlist_file=f"{circuit.name}.net",
            arch_file=f"{circuit.name}.arch",
        ),
        f"{base}.route": write_route_file(routing),
    }
    for path, text in artefacts.items():
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.viz import implementation_report, routing_svg

    modes = []
    for path in args.modes:
        network = read_blif_file(path)
        modes.append(tech_map(optimize_network(network), k=args.k))
    _warn_unused_timing_args(args)
    options = FlowOptions(
        seed=args.seed, k=args.k, inner_num=args.effort,
        timing_driven=args.timing_driven,
        criticality_exponent=args.criticality_exponent,
        timing_tradeoff=args.timing_tradeoff,
    )
    result = implement_multi_mode(
        "report", modes, options,
        workers=args.workers, cache=_exec_cache(args),
    )
    text = implementation_report(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    if args.svg:
        dcs = result.dcs[MergeStrategy.WIRE_LENGTH]
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(routing_svg(dcs.routing))
        print(f"wrote {args.svg}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.harness import SUITES, ExperimentHarness

    if (
        args.criticality_exponent != 1.0
        or args.timing_tradeoff != 0.5
    ):
        print(
            "warning: the experiment harness uses the paper's timing "
            "defaults; --criticality-exponent/--timing-tradeoff are "
            "ignored here",
            file=sys.stderr,
        )
    harness = ExperimentHarness(
        effort=args.effort, seed=args.seed,
        workers=args.workers, cache=_exec_cache(args),
        timing_driven=args.timing_driven,
    )
    outcomes = harness.run_suites(SUITES, verbose=True)
    print()
    print(harness.print_table1(harness.table1()))
    print()
    print(harness.print_figure5(harness.figure5(outcomes)))
    print()
    print(harness.print_figure6(harness.figure6(outcomes["RegExp"])))
    print()
    print(harness.print_figure7(harness.figure7(outcomes)))
    print()
    print(harness.print_area_table(harness.area_table()))
    print()
    print(harness.print_sta_table(harness.sta_table(outcomes)))
    print()
    print(harness.print_fmax_table(harness.fmax_table(outcomes)))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.bench.campaign import (
        PRESETS,
        CampaignSpec,
        CampaignVariant,
        compare_to_baseline,
        load_baseline,
        run_campaign,
        write_baseline,
        write_summary,
    )
    from repro.gen import registered_suites

    if args.list:
        print("campaign presets:")
        for name, preset in PRESETS.items():
            print(f"  {name:16s} {preset.description}")
        print("\nregistered suites:")
        for name, suite in registered_suites().items():
            print(f"  {name:10s} {suite.description}")
        return 0

    if args.preset:
        if args.preset not in PRESETS:
            print(
                f"unknown preset {args.preset!r}; available: "
                f"{', '.join(PRESETS)}",
                file=sys.stderr,
            )
            return 2
        spec = PRESETS[args.preset]
        if args.suites:
            print(
                "warning: --suites is ignored with --preset",
                file=sys.stderr,
            )
        if (
            args.timing_driven
            or args.criticality_exponent != 1.0
            or args.timing_tradeoff != 0.5
            or args.sizing != "estimate"
        ):
            print(
                "warning: --timing-driven/--criticality-exponent/"
                "--timing-tradeoff/--sizing are ignored with "
                "--preset (presets define their own variants)",
                file=sys.stderr,
            )
    else:
        if not args.suites:
            print(
                "error: need --preset NAME or --suites SUITE "
                "[SUITE ...] (try --list)",
                file=sys.stderr,
            )
            return 2
        _warn_unused_timing_args(args)
        if args.timing_driven:
            variant = CampaignVariant(
                "timing",
                timing_driven=True,
                criticality_exponent=args.criticality_exponent,
                timing_tradeoff=args.timing_tradeoff,
                sizing=args.sizing,
            )
        else:
            variant = CampaignVariant(
                "wirelength", sizing=args.sizing
            )
        spec = CampaignSpec(
            name=args.name,
            description="ad-hoc campaign (repro campaign --suites)",
            suites=tuple(args.suites),
            scale=args.scale,
            seeds=tuple(args.seeds),
            inner_num=args.effort,
            variants=(variant,),
        )
    if args.pairs_per_suite is not None:
        spec = dataclasses.replace(
            spec, pairs_per_suite=args.pairs_per_suite
        )

    baseline = None
    if args.gate:
        # Load before the sweep: a mistyped path must fail fast, not
        # after minutes of flow runs, and never look like a QoR
        # regression.
        try:
            baseline = load_baseline(args.gate)
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"error: cannot read baseline {args.gate}: {error}",
                file=sys.stderr,
            )
            return 2

    jsonl_path = args.jsonl or f"campaign_{spec.name}.jsonl"
    try:
        result = run_campaign(
            spec,
            workers=args.workers,
            cache=_exec_cache(args),
            verbose=True,
            # The JSONL is written incrementally as runs finish (it
            # is the checkpoint a killed sweep resumes from), not in
            # one shot at the end.
            checkpoint=jsonl_path,
            resume=args.resume,
        )
    except ValueError as error:  # e.g. an unknown suite name
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"wrote {jsonl_path} ({len(result.records)} records)")
    summary_path = args.summary or "BENCH_campaign.json"
    write_summary(result.summary, summary_path)
    print(f"wrote {summary_path}")
    cache_row = result.summary["cache"]
    print(
        f"{result.summary['n_runs']} runs in "
        f"{result.summary['seconds']:.1f}s "
        f"({cache_row['resumed_records']} resumed records, "
        f"{cache_row['record_hits']} cached, "
        f"{cache_row['record_misses']} computed)"
    )

    if args.write_baseline:
        write_baseline(result.summary, args.write_baseline)
        print(f"wrote baseline {args.write_baseline}")
    if baseline is not None:
        violations = compare_to_baseline(result.summary, baseline)
        if violations:
            print(
                f"qor-gate: FAIL vs {args.gate}:", file=sys.stderr
            )
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            print(
                "re-baseline intentionally with "
                "scripts/rebaseline-qor.sh if this change is "
                "expected",
                file=sys.stderr,
            )
            return 1
        print(f"qor-gate: OK vs {args.gate}")
    return 0


def _cmd_bench_exec(args: argparse.Namespace) -> int:
    from repro.bench.exec_bench import (
        run_exec_bench,
        workload_kinds,
        write_bench_json,
    )

    if args.workload not in workload_kinds():
        print(
            f"unknown workload kind {args.workload!r}; registered: "
            f"{', '.join(workload_kinds())}",
            file=sys.stderr,
        )
        return 2
    if args.no_cache:
        print(
            "warning: --no-cache is ignored by bench-exec (the "
            "benchmark manages its own cold/warm cache phases)",
            file=sys.stderr,
        )
    report = run_exec_bench(
        workers=args.workers or 4,
        n_pairs=args.pairs,
        inner_num=args.effort,
        cache_dir=args.cache_dir,
        verbose=True,
        n_taps=args.taps,
        baseline_src=args.baseline_src,
        workload=args.workload,
        router_scale=args.router_scale,
    )
    write_bench_json(report, args.output)
    print(f"wrote {args.output}")
    cold = report["parallel_cold"]["seconds"]
    serial = report["serial_cold"]["seconds"]
    warm = report["parallel_warm"]["seconds"]
    print(
        f"serial {serial:.1f}s, cold x{report['workers']} workers "
        f"{cold:.1f}s ({serial / cold:.2f}x), warm {warm:.1f}s "
        f"({100 * warm / cold:.1f}% of cold)"
    )
    router = report["router_vectorized"]
    print(
        f"router ({router['workload']['scale']} scale): scalar "
        f"{router['scalar_seconds']:.1f}s, vectorized "
        f"{router['vectorized_seconds']:.1f}s "
        f"({router['speedup']:.2f}x, bit-identical)"
    )
    batched = report["router_batched"]
    stats = batched["stats"]
    print(
        f"router batched: {batched['seconds']:.1f}s "
        f"({batched['speedup_vs_scalar']:.2f}x vs scalar, "
        f"{batched['speedup_vs_vectorized']:.2f}x vs vectorized), "
        f"wl ratio {batched['wirelength_ratio_vs_vectorized']:.3f}, "
        f"{stats['drains']} drains "
        f"(mean frontier {stats['mean_frontier']:.1f}), "
        f"{stats['conflict_replays']} conflict replays"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = StageCache(args.cache_dir)
    if args.action == "prune":
        if args.max_size is None:
            print(
                "error: prune needs --max-size <bytes>",
                file=sys.stderr,
            )
            return 2
        removed, removed_bytes = cache.prune(args.max_size)
        print(
            f"pruned {removed} entries ({removed_bytes} bytes) from "
            f"{cache.root}; {cache.n_entries()} entries "
            f"({cache.total_bytes()} bytes) remain"
        )
        return 0
    if args.clear or args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
    else:
        print(f"cache root: {cache.root}")
        print(f"entries:    {cache.n_entries()}")
        print(f"bytes:      {cache.total_bytes()}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import ALL_RULES, write_baseline
    from repro.analysis.runner import lint_tree

    if args.list_rules:
        for rule, description in sorted(ALL_RULES.items()):
            print(f"{rule}  {description}")
        return 0

    rules = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = rules - set(ALL_RULES)
        if unknown:
            print(
                "error: unknown rule id(s): "
                + ", ".join(sorted(unknown)),
                file=sys.stderr,
            )
            return 2

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: lint root {root} is not a directory",
              file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths] or None

    baseline = Path(args.baseline) if args.baseline else None
    result = lint_tree(
        root, paths=paths, baseline_path=baseline, rules=rules
    )

    if args.write_baseline:
        # Regenerate the accepted-findings file from the current tree
        # (pragma-suppressed findings stay out: pragmas are the
        # preferred, self-documenting suppression).
        write_baseline(Path(args.write_baseline), result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(result.to_json())
    else:
        print(result.render_text())
    if result.errors:
        return 2
    return 0 if not result.findings else 1


def _default_commit() -> str:
    """Commit identity for trend ingests: $GITHUB_SHA in CI, the git
    HEAD locally, an explicit placeholder otherwise."""
    import os
    import subprocess

    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True, timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _cmd_trend(args: argparse.Namespace) -> int:
    from repro.bench.trend import (
        TrendError,
        connect,
        drift_report,
        evaluate,
        ingest,
        load_records_jsonl,
    )

    try:
        conn = connect(args.db)
    except TrendError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if args.trend_command == "ingest":
            try:
                records = load_records_jsonl(args.jsonl)
                result = ingest(
                    conn, records,
                    commit=args.commit or _default_commit(),
                    label=args.label,
                )
            except (OSError, TrendError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            n_ingests = conn.execute(
                "SELECT COUNT(*) FROM ingests"
            ).fetchone()[0]
            print(
                f"ingested {args.jsonl} as #{result.ingest_id} "
                f"(campaign {result.campaign}, commit "
                f"{result.commit[:12]}, {result.n_rows} metric rows"
                + (", replaced an earlier ingest of the same commit"
                   if result.replaced else "")
                + f"); {n_ingests} ingests in {args.db}"
            )
            return 0

        try:
            outcome = evaluate(
                conn,
                campaign=args.campaign,
                window=args.window,
                min_history=args.min_history,
            )
        except TrendError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

        if args.trend_command == "report":
            text = drift_report(
                outcome, min_history=args.min_history
            )
            if args.output:
                with open(
                    args.output, "w", encoding="utf-8"
                ) as handle:
                    handle.write(text)
                print(f"wrote {args.output}")
            else:
                sys.stdout.write(text)
            return 0

        # gate
        checked = len(outcome.drifts)
        if outcome.violations:
            print(
                f"trend-gate: FAIL — campaign {outcome.campaign}, "
                f"ingest #{outcome.ingest_id} vs "
                f"{len(outcome.window_ids)} previous run(s):",
                file=sys.stderr,
            )
            for violation in outcome.violations:
                print(f"  {violation}", file=sys.stderr)
            return 1
        print(
            f"trend-gate: OK — campaign {outcome.campaign}, ingest "
            f"#{outcome.ingest_id}, {checked} series checked "
            f"against {len(outcome.window_ids)} previous run(s) "
            f"(window {outcome.window})"
        )
        return 0
    finally:
        conn.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.exec.jobs import resolve_workers
    from repro.serve.server import main as serve_main
    from repro.serve.service import FlowService

    service = FlowService(
        workers=resolve_workers(args.workers),
        use_threads=args.use_threads,
        cache=_exec_cache(args),
        tenant_quota=args.quota,
    )
    serve_main(service, host=args.host, port=args.port)
    return 0


def _client_options(args: argparse.Namespace) -> dict:
    """FlowOptions wire payload from the shared CLI knobs."""
    options = {
        "seed": args.seed,
        "k": args.k,
        "inner_num": args.effort,
        "timing_driven": args.timing_driven,
        "criticality_exponent": args.criticality_exponent,
        "timing_tradeoff": args.timing_tradeoff,
    }
    if args.channel_width is not None:
        options["channel_width"] = args.channel_width
    return options


def _print_flow_result(result: dict) -> None:
    payload = result["result"]
    arch = payload["arch"]
    hit = result.get("stage_cache_hit")
    print(
        f"arch {arch['nx']}x{arch['ny']} CLBs, channel width "
        f"{arch['channel_width']}; campaign-stage cache hit: {hit}"
    )
    for strategy, row in payload["dcs"].items():
        print(
            f"  dcs[{strategy}]: speed-up {row['speedup']:.2f}x, "
            f"wires {100 * row['wirelength_ratio']:.0f}% of MDR"
        )


def _cmd_submit(args: argparse.Namespace) -> int:
    import json
    import urllib.error

    from repro.serve.client import ServeClient, ServeError, pair_submission

    _warn_unused_timing_args(args)
    options = _client_options(args)
    try:
        if args.modes_json:
            with open(args.modes_json, encoding="utf-8") as handle:
                modes = json.load(handle)
            submission = {
                "modes": modes,
                "options": options,
                "tenant": args.tenant,
                "priority": args.priority,
            }
            if args.name:
                submission["name"] = args.name
            if args.strategies:
                submission["strategies"] = args.strategies
        else:
            if not args.suite:
                print(
                    "error: need --suite NAME (a registered workload "
                    "suite) or --modes-json FILE",
                    file=sys.stderr,
                )
                return 2
            submission = pair_submission(
                args.suite,
                scale=args.scale,
                pair_index=args.pair_index,
                seed=args.seed,
                k=args.k,
                options=options,
                strategies=args.strategies,
                tenant=args.tenant,
                priority=args.priority,
                name=args.name,
            )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    client = ServeClient(args.url)
    try:
        response = client.submit(submission)
        print(
            f"{response['id']}: {response['state']}"
            + (" (deduped)" if response.get("deduped") else "")
            + f"  fingerprint {str(response['fingerprint'])[:16]}"
        )
        if not args.wait:
            if args.json:
                print(json.dumps(response, indent=2, sort_keys=True))
            return 0
        status = client.wait(str(response["id"]), timeout=args.timeout)
        if status.get("state") != "done":
            print(
                f"flow {response['id']} ended {status.get('state')!r}: "
                f"{status.get('error')}",
                file=sys.stderr,
            )
            return 1
        result = client.result(str(response["id"]))
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            _print_flow_result(result)
        return 0
    except (ServeError, TimeoutError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, ConnectionError, OSError) as error:
        print(
            f"error: cannot reach {args.url}: {error}", file=sys.stderr
        )
        return 1


def _cmd_status(args: argparse.Namespace) -> int:
    import json
    import urllib.error

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        body = client.status(args.id)
    except (ServeError, urllib.error.URLError, ConnectionError,
            OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.id is not None:
        print(json.dumps(body, indent=2, sort_keys=True))
        return 0
    flows = body.get("flows", [])
    if not flows:
        print("no flows")
        return 0
    print(f"{'id':14s} {'state':10s} {'subs':>4s} {'hit':>4s}  name")
    for flow in flows:
        hit = flow.get("stage_cache_hit")
        print(
            f"{flow['id']:14s} {flow['state']:10s} "
            f"{flow['n_submissions']:4d} "
            f"{'yes' if hit else '-':>4s}  {flow['name']}"
        )
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    import json
    import urllib.error

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        result = client.result(args.id)
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, ConnectionError, OSError) as error:
        print(
            f"error: cannot reach {args.url}: {error}", file=sys.stderr
        )
        return 1
    text = json.dumps(result, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multi-mode circuit tool flow with Dynamic Circuit "
            "Specialization (Al Farisi et al., DATE 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared option groups: every flow-running subcommand (including
    # serve/submit) inherits the same spellings from these parents.
    exec_parent = _exec_parent()
    timing_parent = _timing_parent()

    p_map = sub.add_parser("map", help="map BLIF to K-LUTs")
    p_map.add_argument("input")
    p_map.add_argument("-o", "--output")
    p_map.add_argument("-k", type=int, default=4)
    p_map.add_argument("--verify", action="store_true",
                       help="simulation-check the mapping")
    p_map.set_defaults(func=_cmd_map)

    p_info = sub.add_parser("info", help="circuit statistics")
    p_info.add_argument("input")
    p_info.add_argument("-k", type=int, default=4)
    p_info.set_defaults(func=_cmd_info)

    p_impl = sub.add_parser(
        "implement", help="run MDR + DCS on mode circuits",
        parents=[exec_parent, timing_parent],
    )
    p_impl.add_argument("modes", nargs="+",
                        help="BLIF file per mode (>= 2)")
    p_impl.add_argument("-k", type=int, default=4)
    p_impl.add_argument("--seed", type=int, default=0)
    p_impl.add_argument("--effort", type=float, default=0.3,
                        help="annealing inner_num")
    p_impl.add_argument("--channel-width", type=int, default=None)
    p_impl.add_argument(
        "--strategies", nargs="+",
        default=["edge_matching", "wire_length"],
        choices=[s.value for s in MergeStrategy],
    )
    p_impl.set_defaults(func=_cmd_implement)

    p_export = sub.add_parser(
        "export", help="write VPR .net/.place/.route artefacts"
    )
    p_export.add_argument("input", help="BLIF circuit")
    p_export.add_argument("-o", "--outdir", default=".")
    p_export.add_argument("-k", type=int, default=4)
    p_export.add_argument("--seed", type=int, default=0)
    p_export.add_argument("--channel-width", type=int, default=12)
    p_export.set_defaults(func=_cmd_export)

    p_report = sub.add_parser(
        "report", help="write the Markdown implementation report",
        parents=[exec_parent, timing_parent],
    )
    p_report.add_argument("modes", nargs="+",
                          help="BLIF file per mode (>= 2)")
    p_report.add_argument("-o", "--output", default=None)
    p_report.add_argument("--svg", default=None,
                          help="also write an SVG of the routing")
    p_report.add_argument("-k", type=int, default=4)
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--effort", type=float, default=0.3)
    p_report.set_defaults(func=_cmd_report)

    p_exp = sub.add_parser(
        "experiments", help="regenerate the paper's tables/figures",
        parents=[exec_parent, timing_parent],
    )
    p_exp.add_argument("--effort", default="quick",
                       choices=("quick", "default", "paper"))
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.set_defaults(func=_cmd_experiments)

    p_camp = sub.add_parser(
        "campaign",
        help="run a declarative suite x options x seed sweep, write "
             "JSONL records + summary (QoR gate for CI)",
        parents=[exec_parent, timing_parent],
    )
    p_camp.add_argument(
        "--preset", default=None,
        help="named campaign (see --list)",
    )
    p_camp.add_argument(
        "--list", action="store_true",
        help="list campaign presets and registered suites",
    )
    p_camp.add_argument(
        "--suites", nargs="+", default=None,
        help="ad-hoc campaign over these registered suites "
             "(alternative to --preset)",
    )
    p_camp.add_argument(
        "--scale", default="quick",
        choices=("tiny", "quick", "default", "medium", "paper"),
        help="workload scale of an ad-hoc campaign",
    )
    p_camp.add_argument(
        "--seeds", nargs="+", type=int, default=[0],
        help="seeds of an ad-hoc campaign",
    )
    p_camp.add_argument(
        "--name", default="custom",
        help="name of an ad-hoc campaign (labels records/outputs)",
    )
    p_camp.add_argument(
        "--effort", type=float, default=0.1,
        help="annealing inner_num of an ad-hoc campaign",
    )
    p_camp.add_argument(
        "--pairs-per-suite", type=int, default=None,
        help="truncate every suite to its first N pairs",
    )
    p_camp.add_argument(
        "--sizing", default="estimate",
        choices=("estimate", "search"),
        help="channel sizing of an ad-hoc campaign: 'estimate' "
             "(netlist statistics) or 'search' (the paper's "
             "minimum-width binary search + 20%% slack; several "
             "trial routings per run)",
    )
    p_camp.add_argument(
        "--jsonl", default=None,
        help="per-run records output "
             "(default campaign_<name>.jsonl)",
    )
    p_camp.add_argument(
        "--summary", default=None,
        help="summary JSON output (default BENCH_campaign.json)",
    )
    p_camp.add_argument(
        "--gate", default=None, metavar="BASELINE",
        help="compare the summary against a QoR baseline JSON; "
             "exit 1 on regression beyond tolerance",
    )
    p_camp.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write the run's QoR aggregates as a new baseline",
    )
    p_camp.add_argument(
        "--resume", action="store_true",
        help="resume from the JSONL checkpoint: completed records "
             "whose fingerprints still match are kept, only the "
             "missing runs execute (default: overwrite)",
    )
    p_camp.set_defaults(func=_cmd_campaign)

    p_bench = sub.add_parser(
        "bench-exec",
        help="benchmark parallel execution + stage cache, write "
             "BENCH_exec.json",
        parents=[exec_parent],
    )
    p_bench.add_argument("-o", "--output", default="BENCH_exec.json")
    p_bench.add_argument(
        "--workload", default="fir_pairs",
        help="workload kind: fir_pairs (default) or any registered "
             "suite (see `repro campaign --list`)",
    )
    p_bench.add_argument("--pairs", type=int, default=4,
                         help="independent multi-mode pairs to run")
    p_bench.add_argument("--taps", type=int, default=4,
                         help="FIR taps per mode (8 = harness size)")
    p_bench.add_argument(
        "--baseline-src", default=None,
        help="path to an older source tree to time the same workload "
             "against (serial), e.g. a checkout of the seed commit",
    )
    p_bench.add_argument("--effort", type=float, default=0.1,
                         help="annealing inner_num of the workload")
    p_bench.add_argument(
        "--router-scale", default="quick",
        choices=("tiny", "quick", "default", "medium"),
        help="workload scale of the router_vectorized A/B phase "
             "(scalar vs vectorized PathFinder core)",
    )
    p_bench.set_defaults(func=_cmd_bench_exec)

    p_cache = sub.add_parser(
        "cache",
        help="inspect, prune (LRU) or clear the persistent stage "
             "cache",
    )
    p_cache.add_argument(
        "action", nargs="?", default="info",
        choices=("info", "prune", "clear"),
        help="info (default): print root/entry count; prune: evict "
             "least-recently-used entries down to --max-size; "
             "clear: remove everything",
    )
    p_cache.add_argument("--cache-dir", default=None)
    p_cache.add_argument("--clear", action="store_true",
                         help="alias of the 'clear' action")
    p_cache.add_argument(
        "--max-size", type=int, default=None, metavar="BYTES",
        help="prune target: keep at most this many bytes of entries "
             "(most recently used kept)",
    )
    p_cache.set_defaults(func=_cmd_cache)

    p_lint = sub.add_parser(
        "lint",
        help="project-specific static analysis: determinism, "
             "fingerprint coverage and thread-safety checkers",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the whole "
             "--root tree)",
    )
    p_lint.add_argument(
        "--root", default="src",
        help="tree root anchoring finding paths and the timing "
             "allowlist (default: src)",
    )
    p_lint.add_argument(
        "--baseline", nargs="?", const="lint-baseline.json",
        default=None, metavar="FILE",
        help="suppress findings recorded in FILE (default "
             "lint-baseline.json when the flag is given bare); "
             "only new findings fail the run",
    )
    p_lint.add_argument(
        "--write-baseline", nargs="?", const="lint-baseline.json",
        default=None, metavar="FILE",
        help="accept the current findings: write them to FILE and "
             "exit 0",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output format (default text)",
    )
    p_lint.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_trend = sub.add_parser(
        "trend",
        help="QoR trend database: ingest campaign JSONLs, gate the "
             "newest run against a rolling window, report drift",
    )
    trend_sub = p_trend.add_subparsers(
        dest="trend_command", required=True
    )

    p_ingest = trend_sub.add_parser(
        "ingest",
        help="aggregate a campaign JSONL into the trend database "
             "(one row per suite/variant/seed/metric)",
    )
    p_ingest.add_argument("jsonl", help="campaign records JSONL")
    p_ingest.add_argument(
        "--db", default="qor_trend.db",
        help="trend database file (default qor_trend.db)",
    )
    p_ingest.add_argument(
        "--commit", default=None,
        help="commit identity of the run (default: $GITHUB_SHA, "
             "else git HEAD); re-ingesting a commit replaces its "
             "earlier ingest",
    )
    p_ingest.add_argument(
        "--label", default="",
        help="free-form run label stored alongside (e.g. the "
             "nightly date or run id)",
    )
    p_ingest.set_defaults(func=_cmd_trend)

    def _add_trend_query_args(sub_parser) -> None:
        sub_parser.add_argument(
            "--db", default="qor_trend.db",
            help="trend database file (default qor_trend.db)",
        )
        sub_parser.add_argument(
            "--window", type=int, default=7,
            help="rolling window: compare the newest ingest against "
                 "the median of up to this many previous ingests "
                 "(default 7)",
        )
        sub_parser.add_argument(
            "--min-history", type=int, default=2,
            help="series with fewer window points than this pass as "
                 "'new' instead of gating (default 2)",
        )
        sub_parser.add_argument(
            "--campaign", default=None,
            help="campaign to gate (default: the newest ingest's)",
        )

    p_gate = trend_sub.add_parser(
        "gate",
        help="exit 1 when the newest ingest regresses beyond "
             "tolerance against the rolling-window median",
    )
    _add_trend_query_args(p_gate)
    p_gate.set_defaults(func=_cmd_trend)

    p_treport = trend_sub.add_parser(
        "report",
        help="write the Markdown drift table of the newest ingest "
             "vs its rolling window",
    )
    _add_trend_query_args(p_treport)
    p_treport.add_argument("-o", "--output", default=None)
    p_treport.set_defaults(func=_cmd_trend)

    p_serve = sub.add_parser(
        "serve",
        help="run the compile service: an HTTP API that accepts flow "
             "submissions, dedups identical requests and executes "
             "them on a worker pool",
        parents=[exec_parent],
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8765,
        help="listening port (0 picks a free port; default 8765)",
    )
    p_serve.add_argument(
        "--use-threads", action="store_true",
        help="thread workers instead of process workers (lower "
             "start-up cost, no isolation; useful for tests)",
    )
    p_serve.add_argument(
        "--quota", type=int, default=8,
        help="max non-terminal flows per tenant (default 8)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit one flow to a running `repro serve` instance",
        parents=[timing_parent],
    )
    p_submit.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="server base URL (default http://127.0.0.1:8765)",
    )
    p_submit.add_argument(
        "--suite", default=None,
        help="registered workload suite; the pair's mode circuits "
             "become the submission (see `repro campaign --list`)",
    )
    p_submit.add_argument(
        "--scale", default="tiny",
        choices=("tiny", "quick", "default", "medium", "paper"),
        help="workload scale of --suite (default tiny)",
    )
    p_submit.add_argument(
        "--pair-index", type=int, default=0,
        help="which pair of the suite (default 0)",
    )
    p_submit.add_argument(
        "--modes-json", default=None, metavar="FILE",
        help="explicit mode list as JSON (alternative to --suite): "
             '[{"kind": ..., "name": ..., "seed": ..., "k": ..., '
             '"params": {...}}, ...]',
    )
    p_submit.add_argument("-k", type=int, default=4)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--effort", type=float, default=0.3,
                          help="annealing inner_num")
    p_submit.add_argument("--channel-width", type=int, default=None)
    p_submit.add_argument(
        "--strategies", nargs="+", default=None,
        choices=[s.value for s in MergeStrategy],
    )
    p_submit.add_argument("--name", default=None,
                          help="flow name (default: the pair's name)")
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument(
        "--priority", default="batch",
        choices=("interactive", "batch"),
        help="queue lane; interactive overtakes queued batch flows",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the flow finishes and print its result",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait timeout in seconds (default 600)",
    )
    p_submit.add_argument(
        "--json", action="store_true",
        help="print the raw JSON response",
    )
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status",
        help="list flows on a `repro serve` instance (or one flow's "
             "full status)",
    )
    p_status.add_argument("id", nargs="?", default=None,
                          help="flow id (default: list every flow)")
    p_status.add_argument("--url", default="http://127.0.0.1:8765")
    p_status.set_defaults(func=_cmd_status)

    p_result = sub.add_parser(
        "result",
        help="fetch a finished flow's QoR payload as JSON",
    )
    p_result.add_argument("id", help="flow id")
    p_result.add_argument("--url", default="http://127.0.0.1:8765")
    p_result.add_argument("-o", "--output", default=None)
    p_result.set_defaults(func=_cmd_result)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
