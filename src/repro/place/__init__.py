"""VPR-style simulated-annealing placement.

* :mod:`repro.place.annealing` — the adaptive annealing engine
  (temperature schedule, range limiting, acceptance statistics) shared
  by the conventional placer and the paper's combined placer.
* :mod:`repro.place.cost` — bounding-box wire-length estimation with
  VPR's fanout correction factors.
* :mod:`repro.place.placer` — the conventional single-circuit placer
  used by the MDR baseline and by TPlace.
"""

from repro.place.annealing import AnnealingSchedule, anneal, anneal_batched
from repro.place.cost import net_bounding_box_cost, q_factor
from repro.place.placer import Placement, place_circuit
from repro.place.timing import TimingReport, critical_path

__all__ = [
    "AnnealingSchedule",
    "anneal",
    "anneal_batched",
    "net_bounding_box_cost",
    "q_factor",
    "Placement",
    "place_circuit",
    "TimingReport",
    "critical_path",
]
