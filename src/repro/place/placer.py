"""Conventional wire-length-driven placement (single circuit).

This is the "Placement" box of the MDR tool flow (paper Fig. 2(a)): a
VPR-style simulated-annealing placer that assigns every LUT block to a
logic-block tile and every primary IO to a perimeter pad slot, while
minimising the bounding-box wire-length estimate.

The combined placer of the paper (``repro.core.combined_placement``)
extends the same machinery to several mode circuits at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.arch.architecture import FpgaArchitecture, Site
from repro.netlist.lutcircuit import LutCircuit
from repro.place.annealing import (
    AnnealingSchedule,
    AnnealingStats,
    anneal,
    anneal_batched,
)
from repro.place.cost import net_bounding_box_cost, q_factor
from repro.utils.rng import make_rng


def pad_cell(signal: str) -> str:
    """Cell name of the IO pad carrying primary IO *signal*."""
    return f"pad:{signal}"


class PlacementTimingMixin:
    """Timing-term bookkeeping shared by the annealing problems.

    A problem with a bound :class:`~repro.timing.criticality
    .PlacementTimingCost` anneals the combined cost

    ``(1 - tradeoff) * wirelength + tradeoff * tau * timing``

    where ``timing`` is the criticality-weighted connection-delay sum
    and ``tau`` rescales it into wire-length units (``tau =
    wirelength / timing``, refreshed with the criticalities at every
    temperature via the engine's ``on_temperature`` hook).  With no
    timing bound every method degrades to the plain wire-length cost
    — same floats, same RNG sequence, bit-identical placements.
    """

    _timing = None
    _lam = 0.0
    _tau = 0.0

    def _bind_timing(self, timing) -> None:
        self._timing = timing
        if timing is None:
            return
        timing.bind(self.site_of)
        self._lam = timing.config.tradeoff
        self._refresh_tau()

    def _refresh_tau(self) -> None:
        timing_cost = self._timing.cost
        self._tau = (
            sum(self.net_cost) / timing_cost
            if timing_cost > 0.0 else 0.0
        )

    def _combined_cost(self) -> float:
        base = sum(self.net_cost)
        if self._timing is None:
            return base
        return (
            (1.0 - self._lam) * base
            + self._lam * self._tau * self._timing.cost
        )

    def on_temperature(self):
        """Annealing hook: refresh criticalities, re-balance terms."""
        if self._timing is None:
            return None
        self._timing.refresh_criticalities()
        self._refresh_tau()
        return self._combined_cost()

    def _timing_keys(self, cell, other):
        return (cell,) if other is None else (cell, other)

    # -- per-move bookkeeping (shared by every problem's
    # delta_cost/commit; only called when self._timing is bound) ----------

    def _timing_before(self, keys):
        """(affected conn indices, their weighted cost) pre-move."""
        timing = self._timing
        affected = timing.conns_of(keys)
        return affected, timing.weighted(affected)

    def _timing_after(self, affected):
        """(evaluated delays, weighted cost) of *affected* — call
        while the move is tentatively applied; hand the evaluation to
        ``_commit_timing`` via ``_pending`` when the move commits."""
        evaluated = self._timing.eval_conns(affected)
        return evaluated, self._timing.weighted_eval(evaluated)

    def _timing_delta(self, base_delta, t_before, t_after):
        """Blend the base (wire-length) and timing deltas."""
        return (
            (1.0 - self._lam) * base_delta
            + self._lam * self._tau * (t_after - t_before)
        )

    def _commit_timing(self, keys, t_evaluated):
        """Fold a committed move's delays into the running timing
        cost (re-evaluating at the already-updated sites when
        delta_cost's pending evaluation is unavailable).  No-op for
        untimed problems."""
        timing = self._timing
        if timing is None:
            return
        if t_evaluated is None:
            t_evaluated = timing.eval_conns(timing.conns_of(keys))
        timing.commit(t_evaluated)


@dataclass
class Net:
    """One placement net: a source cell and its sink cells."""

    name: str
    cells: List[str]  # source first, then sinks (duplicates removed)


def circuit_nets(circuit: LutCircuit) -> List[Net]:
    """Extract placement nets from a LUT circuit.

    Each driven signal with at least one reader becomes a net.  Primary
    inputs source from their pad cell; primary outputs add the pad cell
    as a sink.
    """
    # Sorted so net order (and with it the whole annealing trajectory)
    # is identical in every process: ``signals()`` is a set of strings,
    # and string-set iteration order changes with PYTHONHASHSEED.
    readers: Dict[str, List[str]] = {
        s: [] for s in sorted(circuit.signals())
    }
    for block in circuit.blocks.values():
        for src in block.inputs:
            readers[src].append(block.name)
    for out in circuit.outputs:
        readers[out].append(pad_cell(out))

    nets = []
    for signal, sinks in readers.items():
        if not sinks:
            continue
        source = (
            pad_cell(signal) if signal in circuit.inputs else signal
        )
        seen: Set[str] = {source}
        cells = [source]
        for cell in sinks:
            if cell not in seen:
                seen.add(cell)
                cells.append(cell)
        if len(cells) >= 2:
            nets.append(Net(signal, cells))
    return nets


def circuit_cells(circuit: LutCircuit) -> Tuple[List[str], List[str]]:
    """(logic cells, pad cells) of a circuit."""
    logic = list(circuit.blocks)
    pads = [pad_cell(s) for s in circuit.inputs]
    pads += [pad_cell(s) for s in circuit.outputs]
    return logic, pads


@dataclass
class Placement:
    """A finished placement: cell name -> site."""

    arch: FpgaArchitecture
    sites: Dict[str, Site]
    cost: float
    stats: Optional[AnnealingStats] = None

    def position(self, cell: str) -> Tuple[int, int]:
        return self.sites[cell].pos()


class _SinglePlacementProblem(PlacementTimingMixin):
    """Annealing problem for one circuit; see repro.place.annealing.

    *timing* is an optional prebuilt
    :class:`~repro.timing.criticality.PlacementTimingCost` covering the
    circuit's connections (cells keyed by their names, as in
    ``site_of``); when given, moves are priced by the combined
    wire-length + criticality-weighted-delay cost.
    """

    def __init__(
        self,
        arch: FpgaArchitecture,
        logic_cells: Sequence[str],
        pad_cells: Sequence[str],
        nets: Sequence[Net],
        rng,
        timing=None,
    ) -> None:
        self.arch = arch
        self.logic_cells = list(logic_cells)
        self.pad_cells = list(pad_cells)
        self.nets = list(nets)
        clb_sites = arch.clb_sites()
        pad_sites = arch.pad_sites()
        if len(self.logic_cells) > len(clb_sites):
            raise ValueError(
                f"{len(self.logic_cells)} blocks exceed "
                f"{len(clb_sites)} logic tiles"
            )
        if len(self.pad_cells) > len(pad_sites):
            raise ValueError(
                f"{len(self.pad_cells)} IOs exceed "
                f"{len(pad_sites)} pad slots"
            )
        # Random legal initial placement.
        self.site_of: Dict[str, Site] = {}
        self.cell_at: Dict[Site, Optional[str]] = {}
        shuffled_clb = list(clb_sites)
        rng.shuffle(shuffled_clb)
        for cell, site in zip(self.logic_cells, shuffled_clb):
            self.site_of[cell] = site
        self.free_clb = shuffled_clb[len(self.logic_cells):]
        shuffled_pad = list(pad_sites)
        rng.shuffle(shuffled_pad)
        for cell, site in zip(self.pad_cells, shuffled_pad):
            self.site_of[cell] = site
        self.free_pad = shuffled_pad[len(self.pad_cells):]
        for cell, site in self.site_of.items():
            self.cell_at[site] = cell

        self.all_clb_sites = clb_sites
        self.all_pad_sites = pad_sites
        self.nets_of_cell: Dict[str, List[int]] = {}
        for i, net in enumerate(self.nets):
            for cell in net.cells:
                self.nets_of_cell.setdefault(cell, []).append(i)
        self.net_cost: List[float] = [
            self._compute_net_cost(net) for net in self.nets
        ]
        self._bind_timing(timing)

    # -- cost helpers -----------------------------------------------------

    def _compute_net_cost(self, net: Net) -> float:
        # Single-pass bounding box straight over the sites — same
        # arithmetic as net_bounding_box_cost, minus the per-call
        # position-tuple list (this is the move loop's hottest callee).
        cells = net.cells
        n = len(cells)
        if n < 2:
            return 0.0
        site_of = self.site_of
        site = site_of[cells[0]]
        xmin = xmax = site.x
        ymin = ymax = site.y
        for cell in cells:
            site = site_of[cell]
            x = site.x
            y = site.y
            if x < xmin:
                xmin = x
            elif x > xmax:
                xmax = x
            if y < ymin:
                ymin = y
            elif y > ymax:
                ymax = y
        return q_factor(n) * ((xmax - xmin) + (ymax - ymin))

    def initial_cost(self) -> float:
        return self._combined_cost()

    def size(self) -> int:
        return len(self.logic_cells) + len(self.pad_cells)

    def n_nets(self) -> int:
        return len(self.nets)

    def max_rlim(self) -> int:
        return max(self.arch.nx, self.arch.ny) + 2

    # -- moves --------------------------------------------------------------

    def propose(self, rlim: float, rng):
        """Pick a random cell and a random target site within rlim."""
        pool = (
            self.logic_cells
            if rng.random() < (
                len(self.logic_cells) / max(1, self.size())
            )
            else self.pad_cells
        )
        if not pool:
            pool = self.logic_cells or self.pad_cells
        cell = pool[rng.randrange(len(pool))]
        src_site = self.site_of[cell]
        candidates = (
            self.all_clb_sites
            if src_site.kind == "clb"
            else self.all_pad_sites
        )
        for _ in range(8):
            dst_site = candidates[rng.randrange(len(candidates))]
            if dst_site == src_site:
                continue
            if (
                abs(dst_site.x - src_site.x) > rlim
                or abs(dst_site.y - src_site.y) > rlim
            ):
                continue
            return (cell, src_site, dst_site)
        return None

    def _affected_nets(self, cell_a: str, cell_b: Optional[str]
                       ) -> List[int]:
        nets = set(self.nets_of_cell.get(cell_a, ()))
        if cell_b is not None:
            nets.update(self.nets_of_cell.get(cell_b, ()))
        return sorted(nets)

    def delta_cost(self, move) -> float:
        cell, src_site, dst_site = move
        other = self.cell_at.get(dst_site)
        affected = self._affected_nets(cell, other)
        before = sum(self.net_cost[i] for i in affected)
        timing = self._timing
        if timing is not None:
            t_affected, t_before = self._timing_before(
                self._timing_keys(cell, other)
            )
        # Tentatively move, evaluate, revert — remembering the
        # after-costs so commit() of this same move reuses them
        # (identical floats, same order).
        self.site_of[cell] = dst_site
        if other is not None:
            self.site_of[other] = src_site
        evaluated = {}
        after = 0.0
        for i in affected:
            cost = self._compute_net_cost(self.nets[i])
            evaluated[i] = cost
            after += cost
        t_evaluated = None
        if timing is not None:
            t_evaluated, t_after = self._timing_after(t_affected)
        self.site_of[cell] = src_site
        if other is not None:
            self.site_of[other] = dst_site
        self._pending = (move, evaluated, t_evaluated)
        if timing is None:
            return after - before
        return self._timing_delta(after - before, t_before, t_after)

    def commit(self, move) -> None:
        cell, src_site, dst_site = move
        other = self.cell_at.get(dst_site)
        self.site_of[cell] = dst_site
        self.cell_at[dst_site] = cell
        if other is not None:
            self.site_of[other] = src_site
            self.cell_at[src_site] = other
        else:
            self.cell_at[src_site] = None
        pending = getattr(self, "_pending", None)
        if pending is not None and pending[0] == move:
            evaluated, t_evaluated = pending[1], pending[2]
        else:
            # Batched annealing: the vector pricing memoised the
            # after-costs per move (exact for any move the engine
            # commits straight off the vector — conflicted moves are
            # re-priced through delta_cost and hit ``_pending`` above).
            evaluated = getattr(self, "_batch_pending", {}).get(move)
            t_evaluated = None
        self._pending = None
        for i in self._affected_nets(cell, other):
            self.net_cost[i] = (
                evaluated[i]
                if evaluated is not None and i in evaluated
                else self._compute_net_cost(self.nets[i])
            )
        self._commit_timing(
            self._timing_keys(cell, other), t_evaluated
        )

    # -- batched-move pricing (repro.place.annealing.anneal_batched) ------

    def _batch_arrays(self):
        ba = getattr(self, "_ba", None)
        if ba is None:
            # Cell index in site_of insertion order (logic cells then
            # pads — deterministic); nets flattened CSR-style so a
            # batch of moves gathers every member position in one shot.
            index = {c: k for k, c in enumerate(self.site_of)}
            flat: List[int] = []
            starts = [0]
            weights = []
            for net in self.nets:
                flat.extend(index[c] for c in net.cells)
                starts.append(len(flat))
                n = len(net.cells)
                weights.append(q_factor(n) if n >= 2 else 0.0)
            ba = (
                index,
                np.asarray(flat, dtype=np.int64),
                np.asarray(starts, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
            )
            self._ba = ba
        return ba

    def refresh_move(self, move):
        """Rebuild a batch proposal against the live placement.

        A move proposed at batch start names the cell's *then*
        position as the swap-back site; if an earlier commit moved the
        cell, replaying the stale tuple would clear the wrong site.
        ``None`` when the rebuilt move degenerates (cell already sits
        on the destination)."""
        cell, _stale_src, dst_site = move
        src_site = self.site_of[cell]
        if dst_site == src_site:
            return None
        return (cell, src_site, dst_site)

    def move_footprint(self, move):
        """Hashable tokens this move reads or writes (cells, sites,
        net ids — the three token kinds never compare equal, so one
        flat collection suffices).  Two moves with disjoint footprints
        have independent exact deltas; the batched engine uses the
        overlap as its conservative conflict test."""
        cell, src_site, dst_site = move
        other = self.cell_at.get(dst_site)
        tokens = [cell, src_site, dst_site]
        tokens.extend(self.nets_of_cell.get(cell, ()))
        if other is not None:
            tokens.append(other)
            tokens.extend(self.nets_of_cell.get(other, ()))
        return tokens

    def batch_delta(self, moves):
        """Wire-length delta of every move, each priced independently
        against the *current* placement.

        Vectorized twin of :meth:`delta_cost`: all affected nets of
        all moves are flattened into one ragged gather and their
        bounding boxes reduced with ``np.maximum.reduceat``; site
        coordinates are small integers, so the float64 arithmetic
        reproduces the scalar path bit for bit.  Nothing is applied
        and no ``_pending`` memo is left behind — the caller commits
        (or re-prices) each move itself.  Timing-driven problems keep
        the scalar engine (batch pricing covers the wire-length cost
        only), which ``place_circuit`` enforces.
        """
        index, net_cells, net_starts, net_w = self._batch_arrays()
        site_of = self.site_of
        n_cells = len(index)
        xs = np.empty(n_cells, dtype=np.float64)
        ys = np.empty(n_cells, dtype=np.float64)
        for cell_name, k in index.items():
            site = site_of[cell_name]
            xs[k] = site.x
            ys[k] = site.y
        # One row per (move, affected net) pair.
        pair_net: List[int] = []
        pair_move: List[int] = []
        pair_cell: List[int] = []
        pair_other: List[int] = []
        pair_dx: List[float] = []
        pair_dy: List[float] = []
        pair_sx: List[float] = []
        pair_sy: List[float] = []
        for m, (cell, src_site, dst_site) in enumerate(moves):
            other = self.cell_at.get(dst_site)
            ci = index[cell]
            oi = index[other] if other is not None else -1
            for i in self._affected_nets(cell, other):
                pair_net.append(i)
                pair_move.append(m)
                pair_cell.append(ci)
                pair_other.append(oi)
                pair_dx.append(dst_site.x)
                pair_dy.append(dst_site.y)
                pair_sx.append(src_site.x)
                pair_sy.append(src_site.y)
        if not pair_net:
            return np.zeros(len(moves), dtype=np.float64)
        pn = np.asarray(pair_net, dtype=np.int64)
        counts = net_starts[pn + 1] - net_starts[pn]
        total = int(counts.sum())
        row_start = np.zeros(pn.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=row_start[1:])
        offs = (
            np.arange(total, dtype=np.int64)
            - np.repeat(row_start, counts)
        )
        rows = net_cells[np.repeat(net_starts[pn], counts) + offs]
        rc = np.repeat(np.asarray(pair_cell, np.int64), counts)
        ro = np.repeat(np.asarray(pair_other, np.int64), counts)
        is_cell = rows == rc
        is_other = rows == ro
        gx = np.where(
            is_cell,
            np.repeat(np.asarray(pair_dx), counts),
            np.where(
                is_other, np.repeat(np.asarray(pair_sx), counts),
                xs[rows],
            ),
        )
        gy = np.where(
            is_cell,
            np.repeat(np.asarray(pair_dy), counts),
            np.where(
                is_other, np.repeat(np.asarray(pair_sy), counts),
                ys[rows],
            ),
        )
        width = (
            np.maximum.reduceat(gx, row_start)
            - np.minimum.reduceat(gx, row_start)
        )
        height = (
            np.maximum.reduceat(gy, row_start)
            - np.minimum.reduceat(gy, row_start)
        )
        after = net_w[pn] * (width + height)
        net_cost = self.net_cost
        before = np.fromiter(
            (net_cost[i] for i in pair_net), np.float64, len(pair_net)
        )
        # Memo the after-costs so commit() of an unconflicted move
        # reuses them instead of recomputing its nets (same floats).
        evaluated = [dict() for _ in moves]
        after_list = after.tolist()
        for p, m in enumerate(pair_move):
            evaluated[m][pair_net[p]] = after_list[p]
        self._batch_pending = {
            move: evaluated[m] for m, move in enumerate(moves)
        }
        # Sum after and before separately (pairs are emitted in the
        # same sorted-net order delta_cost iterates), so the floats
        # associate exactly as ``sum(after) - sum(before)`` does in
        # the scalar path.
        pm = np.asarray(pair_move, np.int64)
        return (
            np.bincount(pm, weights=after, minlength=len(moves))
            - np.bincount(pm, weights=before, minlength=len(moves))
        )


def place_circuit(
    circuit: LutCircuit,
    arch: FpgaArchitecture,
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
    timing=None,
    batched: bool = False,
) -> Placement:
    """Place *circuit* on *arch*; returns the final placement.

    *timing* is an optional
    :class:`~repro.timing.criticality.CriticalityConfig`: when given,
    the annealer optimises the combined wire-length +
    criticality-weighted-delay cost (timing-driven placement); when
    ``None`` the run is bit-identical to the historical
    wire-length-driven placer.  The reported ``Placement.cost`` is the
    wire-length cost in both variants so results stay comparable.

    *batched* selects the batched-move annealing engine
    (:func:`~repro.place.annealing.anneal_batched`): moves are priced
    in vectors through ``batch_delta``.  Results are deterministic
    per seed and QoR-equivalent to the scalar engine, but not
    bit-identical (different RNG draw order).  Timing-driven runs
    always use the scalar engine — batch pricing covers only the
    wire-length cost.
    """
    rng = make_rng(seed, f"place:{circuit.name}")
    logic, pads = circuit_cells(circuit)
    nets = circuit_nets(circuit)
    timing_cost = None
    if timing is not None:
        # Imported lazily: repro.timing.criticality imports this
        # module (pad_cell), so a top-level import would be circular.
        from repro.timing.criticality import PlacementTimingCost

        timing_cost = PlacementTimingCost(timing)
        timing_cost.add_circuit(circuit)
    problem = _SinglePlacementProblem(
        arch, logic, pads, nets, rng, timing=timing_cost
    )
    if batched and timing_cost is None:
        stats = anneal_batched(problem, rng, schedule)
    else:
        stats = anneal(problem, rng, schedule)
    cost = sum(
        net_bounding_box_cost(
            [problem.site_of[c].pos() for c in net.cells]
        )
        for net in nets
    )
    return Placement(
        arch=arch, sites=dict(problem.site_of), cost=cost, stats=stats
    )


def placement_wirelength(
    placement: Placement, nets: Sequence[Net]
) -> float:
    """Re-evaluate the bounding-box wire length of *nets* under *placement*."""
    return sum(
        net_bounding_box_cost(
            [placement.sites[c].pos() for c in net.cells]
        )
        for net in nets
    )
