"""Adaptive simulated-annealing engine (VPR schedule).

The engine is generic over a *problem* object so the conventional
placer and the paper's combined placer share one schedule.  A problem
must provide:

``initial_cost() -> float``
    Cost of the starting state.
``propose(rlim, rng) -> move | None``
    Generate a candidate move under the current range limit.  ``None``
    means "no legal move found this attempt" (counted, not accepted).
``delta_cost(move) -> float``
    Cost change the move would cause.
``commit(move) -> None`` / nothing on reject.
``size() -> int``
    Number of movable cells (drives moves-per-temperature).
``n_nets() -> int``
    Number of nets (drives the exit criterion).
``on_temperature() -> float | None`` (optional)
    Called at the start of every temperature.  A problem may use it to
    refresh slowly-varying state (the timing-driven placers recompute
    connection criticalities here) and return the recomputed total
    cost, which replaces the engine's running sum; returning ``None``
    leaves the running cost untouched.  Problems without the hook (or
    returning ``None``) anneal exactly as before.

Schedule (Betz & Rose, "VPR: A New Packing, Placement and Routing Tool
for FPGA Research"):

* initial temperature = 20 × the standard deviation of the cost change
  over ``size()`` random moves;
* moves per temperature = ``inner_num * size() ** 4/3``;
* temperature update factor chosen from the acceptance rate
  (0.5 / 0.9 / 0.95 / 0.8 bands);
* range limit follows the acceptance rate towards 44%;
* exit when the temperature falls below a small fraction of the cost
  per net.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass
class AnnealingSchedule:
    """Tunable knobs of the annealing schedule.

    ``inner_num`` scales effort: VPR's default is 10; pure-Python runs
    use smaller values (the experiment harness maps effort levels onto
    this knob).
    """

    inner_num: float = 1.0
    init_temp_factor: float = 20.0
    exit_ratio: float = 0.005
    max_temperatures: int = 500
    min_moves: int = 16


@dataclass
class AnnealingStats:
    """Outcome statistics of one annealing run."""

    initial_cost: float
    final_cost: float
    n_temperatures: int = 0
    n_moves: int = 0
    n_accepted: int = 0


def _alpha(r_accept: float) -> float:
    """VPR temperature-update factor from the acceptance rate."""
    if r_accept > 0.96:
        return 0.5
    if r_accept > 0.8:
        return 0.9
    if r_accept > 0.15:
        return 0.95
    return 0.8


def anneal(problem, rng, schedule: Optional[AnnealingSchedule] = None
           ) -> AnnealingStats:
    """Run adaptive simulated annealing on *problem*; returns stats."""
    schedule = schedule or AnnealingSchedule()
    size = max(1, problem.size())
    cost = problem.initial_cost()
    stats = AnnealingStats(initial_cost=cost, final_cost=cost)

    moves_per_temp = max(
        schedule.min_moves, int(schedule.inner_num * size ** (4 / 3))
    )

    # Initial temperature: perturb the placement with `size` random
    # moves (all accepted) and measure the cost-change deviation.
    deltas = []
    for _ in range(size):
        move = problem.propose(rlim=float("inf"), rng=rng)
        if move is None:
            continue
        delta = problem.delta_cost(move)
        problem.commit(move)
        cost += delta
        deltas.append(delta)
    if deltas:
        mean = sum(deltas) / len(deltas)
        variance = sum((d - mean) ** 2 for d in deltas) / len(deltas)
        temperature = schedule.init_temp_factor * math.sqrt(variance)
    else:
        temperature = 1.0
    if temperature <= 0.0:
        temperature = 1.0

    rlim = float(problem.max_rlim())

    # The move loop runs inner_num * size^(4/3) times per temperature
    # and dominates placement wall-clock; bind every per-move callable
    # once per temperature (the RNG call sequence — and therefore the
    # result — is exactly that of the naive loop).
    propose = problem.propose
    delta_cost = problem.delta_cost
    commit = problem.commit
    random = rng.random
    exp = math.exp
    on_temperature = getattr(problem, "on_temperature", None)

    for _ in range(schedule.max_temperatures):
        if on_temperature is not None:
            refreshed = on_temperature()
            if refreshed is not None:
                cost = refreshed
        n_nets = max(1, problem.n_nets())
        if temperature < schedule.exit_ratio * cost / n_nets:
            break
        accepted = 0
        attempted = 0
        for _ in range(moves_per_temp):
            move = propose(rlim=rlim, rng=rng)
            if move is None:
                continue
            attempted += 1
            delta = delta_cost(move)
            if delta <= 0 or random() < exp(-delta / temperature):
                commit(move)
                cost += delta
                accepted += 1
        stats.n_temperatures += 1
        stats.n_moves += attempted
        stats.n_accepted += accepted

        r_accept = accepted / attempted if attempted else 0.0
        temperature *= _alpha(r_accept)
        rlim = min(
            float(problem.max_rlim()),
            max(1.0, rlim * (1.0 - 0.44 + r_accept)),
        )
        if cost <= 0:
            break

    stats.final_cost = cost
    return stats


def anneal_batched(
    problem,
    rng,
    schedule: Optional[AnnealingSchedule] = None,
    batch_size: int = 64,
) -> AnnealingStats:
    """Batched-move variant of :func:`anneal` (same VPR schedule).

    Instead of the propose → price → decide scalar loop, moves are
    handled in vectors of up to *batch_size*: the whole vector is
    proposed first (same RNG, one move at a time), the acceptance
    uniforms are pre-drawn, and one ``problem.batch_delta(moves)``
    call prices every move against the frozen batch-start state.  An
    in-order accept pass then walks the vector: a move whose price may
    have been invalidated by an earlier commit in the same batch —
    detected conservatively through overlapping
    ``problem.move_footprint(move)`` token sets (cells, sites, nets)
    — is re-priced live through the scalar ``delta_cost``.  Every
    acceptance decision therefore uses an *exact* delta, and the
    trajectory is a pure function of the seed.  It is, however, a
    different function from the scalar engine's (the RNG draw order
    differs: uniforms are drawn per proposal up front, not lazily per
    uphill move), so batched results are QoR-equivalent to scalar
    ones, not bit-identical.

    Beyond the base protocol, the problem must provide
    ``batch_delta(moves) -> sequence of float``,
    ``move_footprint(move) -> iterable of hashables`` and
    ``refresh_move(move) -> move | None`` (rebuild a proposal whose
    source position went stale; ``None`` drops it).
    """
    schedule = schedule or AnnealingSchedule()
    size = max(1, problem.size())
    cost = problem.initial_cost()
    stats = AnnealingStats(initial_cost=cost, final_cost=cost)

    moves_per_temp = max(
        schedule.min_moves, int(schedule.inner_num * size ** (4 / 3))
    )

    # Initial temperature: identical to the scalar engine — the
    # perturbation moves are all committed, so there is nothing to
    # batch (every move would conflict with the previous one anyway).
    deltas = []
    for _ in range(size):
        move = problem.propose(rlim=float("inf"), rng=rng)
        if move is None:
            continue
        delta = problem.delta_cost(move)
        problem.commit(move)
        cost += delta
        deltas.append(delta)
    if deltas:
        mean = sum(deltas) / len(deltas)
        variance = sum((d - mean) ** 2 for d in deltas) / len(deltas)
        temperature = schedule.init_temp_factor * math.sqrt(variance)
    else:
        temperature = 1.0
    if temperature <= 0.0:
        temperature = 1.0

    rlim = float(problem.max_rlim())

    propose = problem.propose
    delta_cost = problem.delta_cost
    commit = problem.commit
    batch_delta = problem.batch_delta
    move_footprint = problem.move_footprint
    refresh_move = problem.refresh_move
    random = rng.random
    exp = math.exp
    on_temperature = getattr(problem, "on_temperature", None)
    batch_on = False  # annealing starts hot: accept-nearly-all

    for _ in range(schedule.max_temperatures):
        if on_temperature is not None:
            refreshed = on_temperature()
            if refreshed is not None:
                cost = refreshed
        n_nets = max(1, problem.n_nets())
        if temperature < schedule.exit_ratio * cost / n_nets:
            break
        accepted = 0
        attempted = 0
        if not batch_on:
            # Hot phase: most moves are accepted, so a vector price
            # computed at batch start is almost always invalidated by
            # an earlier commit and re-priced anyway — batching would
            # be pure overhead.  Price scalar (but keep the batched
            # engine's draw order: uniforms per proposal, up front)
            # until the acceptance rate falls below 1/2.
            for _ in range(moves_per_temp):
                move = propose(rlim=rlim, rng=rng)
                if move is None:
                    continue
                u = random()
                attempted += 1
                delta = delta_cost(move)
                if delta <= 0 or u < exp(-delta / temperature):
                    commit(move)
                    cost += delta
                    accepted += 1
            moves_left = 0
        else:
            moves_left = moves_per_temp
        while moves_left > 0:
            b = min(batch_size, moves_left)
            moves_left -= b
            proposals = []
            for _ in range(b):
                move = propose(rlim=rlim, rng=rng)
                if move is not None:
                    proposals.append(move)
            if not proposals:
                continue
            uniforms = [random() for _ in range(len(proposals))]
            vector = batch_delta(proposals)
            # In-order accept pass.  ``touched`` accumulates the
            # footprint tokens of every committed move; a later move
            # whose footprint intersects it may have a stale vector
            # price (some net cost or site occupant changed), so it is
            # re-priced live.  Disjoint footprints imply the frozen
            # price equals the live one exactly.
            touched = set()
            for k, move in enumerate(proposals):
                attempted += 1
                footprint = move_footprint(move)
                if touched and not touched.isdisjoint(footprint):
                    # An earlier commit may have moved this cell (the
                    # proposal's source position is stale) and has at
                    # minimum invalidated the vector price: rebuild
                    # the move against live state and re-price it.
                    move = refresh_move(move)
                    if move is None:
                        continue
                    footprint = move_footprint(move)
                    delta = delta_cost(move)
                else:
                    delta = float(vector[k])
                if delta <= 0 or uniforms[k] < exp(-delta / temperature):
                    commit(move)
                    cost += delta
                    accepted += 1
                    touched.update(footprint)
        stats.n_temperatures += 1
        stats.n_moves += attempted
        stats.n_accepted += accepted

        r_accept = accepted / attempted if attempted else 0.0
        batch_on = r_accept < 0.5
        temperature *= _alpha(r_accept)
        rlim = min(
            float(problem.max_rlim()),
            max(1.0, rlim * (1.0 - 0.44 + r_accept)),
        )
        if cost <= 0:
            break

    stats.final_cost = cost
    return stats
