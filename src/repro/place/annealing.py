"""Adaptive simulated-annealing engine (VPR schedule).

The engine is generic over a *problem* object so the conventional
placer and the paper's combined placer share one schedule.  A problem
must provide:

``initial_cost() -> float``
    Cost of the starting state.
``propose(rlim, rng) -> move | None``
    Generate a candidate move under the current range limit.  ``None``
    means "no legal move found this attempt" (counted, not accepted).
``delta_cost(move) -> float``
    Cost change the move would cause.
``commit(move) -> None`` / nothing on reject.
``size() -> int``
    Number of movable cells (drives moves-per-temperature).
``n_nets() -> int``
    Number of nets (drives the exit criterion).
``on_temperature() -> float | None`` (optional)
    Called at the start of every temperature.  A problem may use it to
    refresh slowly-varying state (the timing-driven placers recompute
    connection criticalities here) and return the recomputed total
    cost, which replaces the engine's running sum; returning ``None``
    leaves the running cost untouched.  Problems without the hook (or
    returning ``None``) anneal exactly as before.

Schedule (Betz & Rose, "VPR: A New Packing, Placement and Routing Tool
for FPGA Research"):

* initial temperature = 20 × the standard deviation of the cost change
  over ``size()`` random moves;
* moves per temperature = ``inner_num * size() ** 4/3``;
* temperature update factor chosen from the acceptance rate
  (0.5 / 0.9 / 0.95 / 0.8 bands);
* range limit follows the acceptance rate towards 44%;
* exit when the temperature falls below a small fraction of the cost
  per net.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass
class AnnealingSchedule:
    """Tunable knobs of the annealing schedule.

    ``inner_num`` scales effort: VPR's default is 10; pure-Python runs
    use smaller values (the experiment harness maps effort levels onto
    this knob).
    """

    inner_num: float = 1.0
    init_temp_factor: float = 20.0
    exit_ratio: float = 0.005
    max_temperatures: int = 500
    min_moves: int = 16


@dataclass
class AnnealingStats:
    """Outcome statistics of one annealing run."""

    initial_cost: float
    final_cost: float
    n_temperatures: int = 0
    n_moves: int = 0
    n_accepted: int = 0


def anneal(problem, rng, schedule: Optional[AnnealingSchedule] = None
           ) -> AnnealingStats:
    """Run adaptive simulated annealing on *problem*; returns stats."""
    schedule = schedule or AnnealingSchedule()
    size = max(1, problem.size())
    cost = problem.initial_cost()
    stats = AnnealingStats(initial_cost=cost, final_cost=cost)

    moves_per_temp = max(
        schedule.min_moves, int(schedule.inner_num * size ** (4 / 3))
    )

    # Initial temperature: perturb the placement with `size` random
    # moves (all accepted) and measure the cost-change deviation.
    deltas = []
    for _ in range(size):
        move = problem.propose(rlim=float("inf"), rng=rng)
        if move is None:
            continue
        delta = problem.delta_cost(move)
        problem.commit(move)
        cost += delta
        deltas.append(delta)
    if deltas:
        mean = sum(deltas) / len(deltas)
        variance = sum((d - mean) ** 2 for d in deltas) / len(deltas)
        temperature = schedule.init_temp_factor * math.sqrt(variance)
    else:
        temperature = 1.0
    if temperature <= 0.0:
        temperature = 1.0

    rlim = float(problem.max_rlim())

    # The move loop runs inner_num * size^(4/3) times per temperature
    # and dominates placement wall-clock; bind every per-move callable
    # once per temperature (the RNG call sequence — and therefore the
    # result — is exactly that of the naive loop).
    propose = problem.propose
    delta_cost = problem.delta_cost
    commit = problem.commit
    random = rng.random
    exp = math.exp
    on_temperature = getattr(problem, "on_temperature", None)

    for _ in range(schedule.max_temperatures):
        if on_temperature is not None:
            refreshed = on_temperature()
            if refreshed is not None:
                cost = refreshed
        n_nets = max(1, problem.n_nets())
        if temperature < schedule.exit_ratio * cost / n_nets:
            break
        accepted = 0
        attempted = 0
        for _ in range(moves_per_temp):
            move = propose(rlim=rlim, rng=rng)
            if move is None:
                continue
            attempted += 1
            delta = delta_cost(move)
            if delta <= 0 or random() < exp(-delta / temperature):
                commit(move)
                cost += delta
                accepted += 1
        stats.n_temperatures += 1
        stats.n_moves += attempted
        stats.n_accepted += accepted

        r_accept = accepted / attempted if attempted else 0.0
        if r_accept > 0.96:
            alpha = 0.5
        elif r_accept > 0.8:
            alpha = 0.9
        elif r_accept > 0.15:
            alpha = 0.95
        else:
            alpha = 0.8
        temperature *= alpha
        rlim = min(
            float(problem.max_rlim()),
            max(1.0, rlim * (1.0 - 0.44 + r_accept)),
        )
        if cost <= 0:
            break

    stats.final_cost = cost
    return stats
