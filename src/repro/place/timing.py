"""Critical-path timing estimation at placement level.

The paper's abstract claims the reconfiguration-time reduction comes
"without significant performance penalties", and Section IV-C.2 argues
through wire length because "it correlates with power usage and
performance (maximum clock frequency)".  This module makes the claim
directly checkable before routing exists:

* each LUT contributes the shared model's ``lut_delay``;
* each connection contributes
  :meth:`~repro.timing.delay.DelayModel.connection_delay` over the
  Manhattan distance of its placed endpoints — the same pre-route
  estimate the timing-driven placer and router optimise
  (:mod:`repro.timing.criticality`) and a lower bound of the routed
  delay :mod:`repro.timing.sta` reports, so pre-route and post-route
  STA agree on units;
* the critical path is the longest register-to-register /
  input-to-output path under those delays.

The same estimator runs on a conventional placement (MDR) and on a
per-mode view of the merged circuit (DCS), so the per-mode clock
penalty of the combined implementation can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.netlist.lutcircuit import LutCircuit
from repro.place.placer import Placement, pad_cell
from repro.timing.delay import DelayModel

_DEFAULT_MODEL = DelayModel()


@dataclass(frozen=True)
class TimingReport:
    """Critical path of one placed mode circuit."""

    critical_delay: float
    n_paths: int

    def frequency(self) -> float:
        """Max clock frequency (1 / delay), arbitrary units."""
        if self.critical_delay <= 0:
            return float("inf")
        return 1.0 / self.critical_delay


def critical_path(
    circuit: LutCircuit,
    positions: Mapping[str, Tuple[int, int]],
    model: Optional[DelayModel] = None,
) -> TimingReport:
    """Estimate the critical path of *circuit* at the given positions.

    *positions* maps every cell (block names and ``pad:<signal>``
    cells) to a grid position.  Registered blocks start and terminate
    paths (their outputs launch at t=0, their inputs must settle
    before the clock edge).  Delays come from *model* (the shared
    :class:`DelayModel`; default units LUT = 1.0).
    """
    model = model or _DEFAULT_MODEL
    lut_delay = model.lut_delay
    arrival: Dict[str, float] = {}

    def position_of(signal: str) -> Tuple[int, int]:
        if signal in circuit.blocks:
            return positions[signal]
        return positions[pad_cell(signal)]

    def signal_arrival(signal: str) -> float:
        # Launch points: primary inputs and FF outputs arrive at 0.
        block = circuit.blocks.get(signal)
        if block is None or block.registered:
            return 0.0
        return arrival[signal]

    def wire_delay(a: Tuple[int, int], b: Tuple[int, int]) -> float:
        return model.connection_delay(
            abs(a[0] - b[0]) + abs(a[1] - b[1])
        )

    worst = 0.0
    n_paths = 0
    for block in circuit.topological_blocks():
        sink_pos = positions[block.name]
        t = 0.0
        for src in block.inputs:
            t = max(
                t,
                signal_arrival(src)
                + wire_delay(position_of(src), sink_pos),
            )
        t += lut_delay
        arrival[block.name] = t
        if block.registered:
            worst = max(worst, t)
            n_paths += 1
    for out in circuit.outputs:
        t = signal_arrival(out) + wire_delay(
            position_of(out), positions[pad_cell(out)]
        )
        worst = max(worst, t)
        n_paths += 1
    return TimingReport(critical_delay=worst, n_paths=n_paths)


def mdr_timing(
    circuit: LutCircuit,
    placement: Placement,
    model: Optional[DelayModel] = None,
) -> TimingReport:
    """Timing of one mode implemented separately (MDR)."""
    positions = {
        cell: site.pos() for cell, site in placement.sites.items()
    }
    return critical_path(circuit, positions, model)


def dcs_timing(
    tunable, mode: int, model: Optional[DelayModel] = None
) -> TimingReport:
    """Timing of mode *mode* inside the merged Tunable circuit.

    The specialised circuit is evaluated at the Tunable cells' sites,
    so the penalty of the combined placement (LUTs pulled towards the
    other mode's optima) is visible.
    """
    circuit = tunable.specialize(mode)
    positions: Dict[str, Tuple[int, int]] = {}
    for tlut in tunable.tluts.values():
        member = tlut.members.get(mode)
        if member is not None:
            if tlut.site is None:
                raise ValueError("tunable circuit has no sites")
            positions[member.name] = tlut.site.pos()
    for pad in tunable.pads.values():
        signal = pad.signals.get(mode)
        if signal is not None:
            if pad.site is None:
                raise ValueError("tunable circuit has no sites")
            positions[pad_cell(signal)] = pad.site.pos()
    return critical_path(circuit, positions, model)


def timing_penalty(
    mdr_reports: List[TimingReport],
    dcs_reports: List[TimingReport],
) -> float:
    """Mean per-mode critical-delay ratio DCS/MDR (1.0 = no penalty)."""
    if len(mdr_reports) != len(dcs_reports) or not mdr_reports:
        raise ValueError("need one report per mode for both flows")
    ratios = [
        d.critical_delay / m.critical_delay
        for m, d in zip(mdr_reports, dcs_reports)
        if m.critical_delay > 0
    ]
    return sum(ratios) / len(ratios)
