"""Bounding-box wire-length cost (VPR's linear congestion cost).

The placement cost of a net is ``q(n) * (bb_width + bb_height)`` where
``q(n)`` compensates for the underestimation of the half-perimeter
metric on multi-terminal nets (Cheng's correction factors, as tabulated
in VPR).  The same estimator is used by the conventional placer, by
TPlace, and — per the paper's Section III-B — by the wire-length
optimisation variant of the combined placement, which is exactly what
lets combined placement "assess the wire usage of the Tunable circuit".
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

# VPR's cross_count table: expected wiring overhead vs half-perimeter
# for nets with 1..50 terminals.
_CROSS_COUNT = [
    1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
    1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709,
    1.8114, 1.8519, 1.8924, 1.9288, 1.9652, 2.0015, 2.0379, 2.0743,
    2.1061, 2.1379, 2.1698, 2.2016, 2.2334, 2.2646, 2.2958, 2.3271,
    2.3583, 2.3895, 2.4187, 2.4479, 2.4772, 2.5064, 2.5356, 2.5610,
    2.5864, 2.6117, 2.6371, 2.6625, 2.6887, 2.7148, 2.7410, 2.7671,
    2.7933,
]


def q_factor(n_terminals: int) -> float:
    """Fanout correction factor for a net with *n_terminals* pins."""
    if n_terminals <= 0:
        return 0.0
    if n_terminals <= 50:
        return _CROSS_COUNT[n_terminals - 1]
    return 2.7933 + 0.02616 * (n_terminals - 50)


def bounding_box(
    positions: Sequence[Tuple[int, int]]
) -> Tuple[int, int, int, int]:
    """(xmin, ymin, xmax, ymax) of terminal positions."""
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    return (min(xs), min(ys), max(xs), max(ys))


def net_bounding_box_cost(
    positions: Sequence[Tuple[int, int]]
) -> float:
    """VPR linear-congestion cost of one net at the given terminals.

    This runs once per affected net per annealing move (millions of
    times per placement), so the bounding box is folded in a single
    pass with no intermediate lists.

    The same fold is hand-inlined (over sites instead of position
    tuples) in the three placement problems —
    ``placer._SinglePlacementProblem._compute_net_cost``,
    ``combined_placement.CombinedPlacementProblem._compute_net_cost``,
    ``combined_placement.TunablePlacementProblem._compute_net_cost`` —
    any arithmetic change here must be mirrored there, or their
    incremental net-cost caches desynchronise from this function.
    """
    n = len(positions)
    if n < 2:
        return 0.0
    xmin, ymin = xmax, ymax = positions[0]
    for x, y in positions:
        if x < xmin:
            xmin = x
        elif x > xmax:
            xmax = x
        if y < ymin:
            ymin = y
        elif y > ymax:
            ymax = y
    return q_factor(n) * ((xmax - xmin) + (ymax - ymin))


def total_cost(nets: Iterable[Sequence[Tuple[int, int]]]) -> float:
    """Sum of net costs (each net given as its terminal positions)."""
    return sum(net_bounding_box_cost(net) for net in nets)
