"""repro — multi-mode circuit tool flow with Dynamic Circuit Specialization.

Reproduction of *"An automatic tool flow for the combined implementation
of multi-mode circuits"* (Al Farisi, Bruneel, Cardoso, Stroobandt — DATE
2013).

The package is organised as a conventional FPGA CAD stack plus the
paper's contribution on top:

``repro.netlist``
    Logic networks, truth tables, LUT circuits, BLIF I/O, simulation.
``repro.synth``
    Synthesis (expression to gates, optimisation) and cut-based K-LUT
    technology mapping.
``repro.arch``
    Island-style FPGA architecture model, routing-resource graph and
    configuration-memory (bitstream) model.
``repro.place`` / ``repro.route``
    VPR-style simulated-annealing placement and PathFinder routing.
``repro.core``
    The paper's contribution: mode encodings, Tunable circuits, the
    merge step, combined placement and the end-to-end MDR / DCS flows.
``repro.timing``
    Routed static timing analysis (RRG delay model, critical paths).
``repro.interop``
    VPR file formats: architecture files, ``.net``, ``.place``,
    ``.route`` readers and writers.
``repro.viz``
    ASCII floorplans, channel heat maps, SVG renders, Markdown
    implementation reports.
``repro.bench``
    Benchmark generators (RegExp matchers, constant-coefficient FIR
    filters, MCNC-like circuits) and the experiment harness that
    regenerates every table and figure of the paper.
"""

__version__ = "1.1.0"

__all__ = [
    "DcsFlow",
    "FlowOptions",
    "MdrFlow",
    "MultiModeResult",
    "MergeStrategy",
    "LutCircuit",
    "implement",
    "run_campaign",
    "submit_flow",
    "__version__",
]

# The stable facade lives in repro.api; the package root re-exports
# it so `import repro; repro.implement(...)` is the canonical path.
_LAZY = {
    "DcsFlow": ("repro.core.flow", "DcsFlow"),
    "FlowOptions": ("repro.core.flow", "FlowOptions"),
    "MdrFlow": ("repro.core.flow", "MdrFlow"),
    "MultiModeResult": ("repro.core.flow", "MultiModeResult"),
    "MergeStrategy": ("repro.core.merge", "MergeStrategy"),
    "LutCircuit": ("repro.netlist.lutcircuit", "LutCircuit"),
    "implement": ("repro.api", "implement"),
    "run_campaign": ("repro.api", "run_campaign"),
    "submit_flow": ("repro.api", "submit_flow"),
}


def __getattr__(name):
    """Lazy re-exports so importing a substrate never pulls the stack."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
