"""Deterministic random-number helpers.

Every stochastic stage of the flow (placement, benchmark generation)
takes an explicit seed so experiments are exactly reproducible.  This
module centralises construction so seeding conventions stay uniform.
"""

from __future__ import annotations

import random
from typing import Optional, Union

Seed = Union[int, str, None]


def make_rng(seed: Seed = 0, salt: Optional[str] = None) -> random.Random:
    """Return a :class:`random.Random` derived from *seed* and *salt*.

    *salt* lets independent pipeline stages derive uncorrelated streams
    from the same user-facing seed (e.g. ``make_rng(7, "place")`` and
    ``make_rng(7, "route")``).
    """
    if salt is None:
        return random.Random(seed)
    return random.Random(f"{seed}::{salt}")
