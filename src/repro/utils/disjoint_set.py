"""Union-find (disjoint set) with path compression and union by rank.

Used when merging connections with identical endpoints into Tunable
connections and for connectivity checks on routed trees.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class DisjointSet:
    """Classic union-find over arbitrary hashable items.

    Items are added lazily: :meth:`find` on an unseen item creates a
    singleton set for it.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register *item* as a singleton set if it is not known yet."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of *item*'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets of *a* and *b*; return the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return True when *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[List[Hashable]]:
        """Return all sets as lists (order of sets is unspecified)."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent
