"""Small generic utilities shared across the CAD stack."""

from repro.utils.disjoint_set import DisjointSet
from repro.utils.qm import minimize_boolean, term_to_string
from repro.utils.rng import make_rng

__all__ = ["DisjointSet", "minimize_boolean", "term_to_string", "make_rng"]
