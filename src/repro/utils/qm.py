"""Quine–McCluskey two-level Boolean minimisation.

The DCS tool flow expresses every parameterised configuration bit as a
Boolean function of the mode bits (paper Fig. 4: e.g. ``m0.1 + ~m0.0``
simplifies to ``m0``).  Internally the flow stores these functions as
*on-sets* over mode indices; this module turns an on-set into a minimal
sum-of-products for reporting, bitstream metadata and the reconfiguration
manager's evaluation tables.

The number of mode bits is tiny (a multi-mode circuit has a handful of
modes), so exact Quine–McCluskey with a greedy-plus-exact cover is more
than fast enough.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Set, Tuple

# A term is (value, mask): bit positions in `mask` are don't-care.
Term = Tuple[int, int]


def _popcount(x: int) -> int:
    return bin(x).count("1")


def _combine(a: Term, b: Term) -> Term:
    """Combine two implicants differing in exactly one cared-for bit.

    Raises ``ValueError`` when they cannot be combined.
    """
    va, ma = a
    vb, mb = b
    if ma != mb:
        raise ValueError("masks differ")
    diff = va ^ vb
    if _popcount(diff) != 1:
        raise ValueError("values differ in more than one bit")
    return (va & ~diff, ma | diff)


def _covers(term: Term, minterm: int) -> bool:
    value, mask = term
    return (minterm & ~mask) == (value & ~mask)


def prime_implicants(minterms: Sequence[int], n_bits: int) -> List[Term]:
    """Return all prime implicants of the on-set *minterms*.

    *n_bits* is the number of input variables.  Minterms must lie in
    ``[0, 2**n_bits)``.
    """
    for m in minterms:
        if not 0 <= m < (1 << n_bits):
            raise ValueError(f"minterm {m} out of range for {n_bits} bits")
    current: Set[Term] = {(m, 0) for m in set(minterms)}
    primes: Set[Term] = set()
    while current:
        combined: Set[Term] = set()
        used: Set[Term] = set()
        terms = sorted(current)
        for a, b in combinations(terms, 2):
            try:
                c = _combine(a, b)
            except ValueError:
                continue
            combined.add(c)
            used.add(a)
            used.add(b)
        primes.update(t for t in current if t not in used)
        current = combined
    return sorted(primes)


def _essential_cover(
    primes: Sequence[Term], minterms: Sequence[int]
) -> List[Term]:
    """Select a small cover of *minterms* from *primes*.

    Essential primes are taken first; the remainder is covered greedily
    (largest remaining coverage, ties broken by fewest literals).  For
    the tiny mode-bit functions in this package the greedy step is
    almost always exact.
    """
    remaining: Set[int] = set(minterms)
    cover: List[Term] = []
    # Essential primes: the only prime covering some minterm.
    for m in sorted(remaining):
        covering = [p for p in primes if _covers(p, m)]
        if len(covering) == 1 and covering[0] not in cover:
            cover.append(covering[0])
    for p in cover:
        remaining -= {m for m in remaining if _covers(p, m)}
    # Greedy cover of what is left.
    candidates = [p for p in primes if p not in cover]
    while remaining:
        best = max(
            candidates,
            key=lambda p: (
                len({m for m in remaining if _covers(p, m)}),
                _popcount(p[1]),  # prefer more don't-cares = fewer literals
            ),
        )
        gained = {m for m in remaining if _covers(best, m)}
        if not gained:
            raise RuntimeError("on-set not coverable by prime implicants")
        cover.append(best)
        candidates.remove(best)
        remaining -= gained
    return cover


def minimize_boolean(minterms: Sequence[int], n_bits: int) -> List[Term]:
    """Return a minimal-ish sum-of-products cover of the on-set.

    Returns a list of ``(value, mask)`` terms.  An empty list means
    constant False; a single term with full mask means constant True.
    """
    unique = sorted(set(minterms))
    if not unique:
        return []
    if len(unique) == 1 << n_bits:
        return [(0, (1 << n_bits) - 1)]
    primes = prime_implicants(unique, n_bits)
    return _essential_cover(primes, unique)


def term_to_string(
    term: Term, n_bits: int, names: Sequence[str] = ()
) -> str:
    """Render one implicant as a product of literals, e.g. ``m1.~m0``.

    Variable *i* corresponds to bit *i* (bit 0 = least significant =
    ``m0``).  Literals are printed most-significant first, matching the
    paper's ``m1 m0`` ordering.
    """
    value, mask = term
    if mask == (1 << n_bits) - 1:
        return "1"
    literals = []
    for bit in reversed(range(n_bits)):
        if mask & (1 << bit):
            continue
        name = names[bit] if bit < len(names) else f"m{bit}"
        literals.append(name if value & (1 << bit) else f"~{name}")
    return ".".join(literals)


def expression_to_string(
    terms: Sequence[Term], n_bits: int, names: Sequence[str] = ()
) -> str:
    """Render a sum-of-products as a string, e.g. ``m1.~m0 + m0``."""
    if not terms:
        return "0"
    return " + ".join(term_to_string(t, n_bits, names) for t in terms)


def evaluate_terms(terms: Sequence[Term], assignment: int) -> bool:
    """Evaluate a sum-of-products at the input *assignment* (bit vector)."""
    return any(_covers(t, assignment) for t in terms)
