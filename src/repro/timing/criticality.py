"""Connection criticalities: one timing model for every flow layer.

The DATE'13 comparison is ultimately about *speed* — achievable clock
frequency of the merged (DCS) implementation versus the separate (MDR)
ones — so the implementation tools must be able to optimise for it.
This module is the shared criticality subsystem: a slack-based
arrival/required-time STA over the connections of a LUT circuit, the
standard VPR ``crit ** exponent`` sharpening, and the adapters that
feed the resulting per-connection weights into

* the annealing placers (:class:`PlacementTimingCost` — a
  criticality-weighted connection-delay cost maintained incrementally
  per move, with criticalities refreshed every temperature),
* the PathFinder router (:func:`lut_connection_criticalities` /
  :func:`tunable_connection_criticalities` map criticalities onto the
  ``(net, sink node)`` keys of the routing workload), and
* the experiment harness (per-mode Fmax and MDR:DCS frequency ratios
  are derived from the same :class:`~repro.timing.delay.DelayModel`).

Definitions (per analysed mode circuit):

* arrival times propagate forward through the combinational netlist
  (primary inputs and flip-flop outputs launch at t=0, every LUT adds
  ``lut_delay``, every connection its estimated delay);
* required times propagate backward from the capture endpoints
  (flip-flop inputs and primary outputs must settle by ``Dmax``, the
  worst arrival);
* ``slack(c) = required(c) - arrival(c)`` per connection, and
  ``crit(c) = 1 - slack(c) / Dmax`` clamped to
  ``[0, max_criticality]`` — 0 for connections with ample margin,
  ``max_criticality`` on the critical path;
* the *sharpened* weight is ``crit ** exponent``; exponents above 1
  concentrate effort on the most critical connections, and an
  exponent of 0 (or below) turns the timing term off entirely, so the
  flow degrades to pure wire-length/congestion optimisation.

Connection delays are *estimates* — :meth:`DelayModel
.connection_delay` over the Manhattan distance of the placed endpoints
— which is what lets the same analysis run before routing exists.  The
routed truth is checked afterwards by :mod:`repro.timing.sta`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.netlist.lutcircuit import LutCircuit
from repro.place.placer import pad_cell
from repro.timing.delay import DelayModel

#: An arc key: (driving signal, sink cell) — the sink cell is a block
#: name or ``pad:<signal>`` for primary outputs (same convention as
#: :mod:`repro.timing.sta`).
ArcKey = Tuple[str, str]

_INF = float("inf")


@dataclass(frozen=True)
class CriticalityConfig:
    """Knobs of the criticality model (shared by place and route).

    ``exponent`` sharpens criticalities (``crit ** exponent``);
    values <= 0 disable the timing term entirely.  ``tradeoff`` is the
    placement-level mix: 0 = pure wire length, 1 = pure timing (the
    router does not consume it — there the criticality itself blends
    delay against congestion).  ``max_criticality`` keeps even the
    critical path's connections from ignoring congestion completely.
    """

    exponent: float = 1.0
    tradeoff: float = 0.5
    max_criticality: float = 0.99
    model: DelayModel = DelayModel()

    def __post_init__(self) -> None:
        if not 0.0 <= self.tradeoff <= 1.0:
            raise ValueError("tradeoff must be in [0, 1]")
        if not 0.0 < self.max_criticality < 1.0:
            raise ValueError("max_criticality must be in (0, 1)")
        self.model.validate()

    def sharpen(self, criticality: float) -> float:
        """``crit ** exponent`` (exponent <= 0 turns timing off)."""
        return sharpen(criticality, self.exponent)


def sharpen(criticality: float, exponent: float) -> float:
    """Sharpened criticality weight.

    ``crit ** exponent`` for positive exponents; an exponent of 0 (or
    below) returns 0 for every connection — the flow degrades to pure
    congestion/wire-length optimisation rather than to "everything is
    critical" (``x ** 0 == 1`` would invert the knob's intent).
    """
    if exponent <= 0.0 or criticality <= 0.0:
        return 0.0
    return criticality ** exponent


@dataclass
class CriticalityReport:
    """Slack and criticality of every arc of one analysed circuit.

    The lists are aligned with :attr:`CriticalityAnalyzer.arcs`.
    ``criticality`` is clamped but *not* sharpened — apply
    :func:`sharpen` (or :meth:`CriticalityConfig.sharpen`) to weight.
    """

    max_delay: float
    slack: List[float]
    criticality: List[float]

    def by_arc(
        self, arcs: Sequence[ArcKey]
    ) -> Dict[ArcKey, float]:
        """Criticality as an arc-keyed mapping."""
        return dict(zip(arcs, self.criticality))


class CriticalityAnalyzer:
    """Arrival/required-time STA over one LUT circuit's connections.

    The topology (arc list, topological order, launch/capture
    classification) is resolved once at construction; each
    :meth:`analyze` call is then a single forward plus a single
    backward sweep over the precomputed arcs — O(V + E) with no
    re-derivation — which is what makes the per-temperature refresh of
    the timing-driven placer cheap.  Callers maintain the per-arc
    delays incrementally (the placers update only the arcs a move
    touches) and hand the current delay vector to ``analyze``.
    """

    def __init__(self, circuit: LutCircuit) -> None:
        self.circuit = circuit
        self._order = circuit.topological_blocks()
        blocks = circuit.blocks
        #: All arcs, block-input arcs first (grouped per block in
        #: topological order), then primary-output taps.
        self.arcs: List[ArcKey] = []
        self._launch: List[bool] = []

        def is_launch(signal: str) -> bool:
            block = blocks.get(signal)
            return block is None or block.registered

        for block in self._order:
            for src in block.inputs:
                self.arcs.append((src, block.name))
                self._launch.append(is_launch(src))
        self._n_block_arcs = len(self.arcs)
        for out in circuit.outputs:
            self.arcs.append((out, pad_cell(out)))
            self._launch.append(is_launch(out))
        # Fanout arc indices per *combinational* driver block (for the
        # backward sweep; launch-point drivers start fresh paths, so
        # their fanouts never constrain their own inputs).
        self._fanout: Dict[str, List[int]] = {}
        for i, (src, _sink) in enumerate(self.arcs):
            if not self._launch[i]:
                self._fanout.setdefault(src, []).append(i)

    def n_arcs(self) -> int:
        return len(self.arcs)

    def analyze(
        self, delays: Sequence[float], lut_delay: float = 1.0
    ) -> CriticalityReport:
        """STA under the given per-arc *delays* (aligned with ``arcs``).

        *lut_delay* is the only non-connection delay (every LUT adds
        it); pass the owning :class:`DelayModel`'s value so the
        analysis matches the routed STA's units.
        """
        if len(delays) != len(self.arcs):
            raise ValueError(
                f"{len(delays)} delays for {len(self.arcs)} arcs"
            )
        arcs = self.arcs
        launch = self._launch
        # -- forward: arrival at every arc's sink pin -------------------
        arrival_out: Dict[str, float] = {}
        arrive_at: List[float] = [0.0] * len(arcs)
        max_delay = 0.0
        idx = 0
        for block in self._order:
            t = 0.0
            for _src in block.inputs:
                src = arcs[idx][0]
                base = 0.0 if launch[idx] else arrival_out[src]
                a = base + delays[idx]
                arrive_at[idx] = a
                if a > t:
                    t = a
                idx += 1
            t += lut_delay
            arrival_out[block.name] = t
            if block.registered and t > max_delay:
                max_delay = t
        for i in range(self._n_block_arcs, len(arcs)):
            src = arcs[i][0]
            base = 0.0 if launch[i] else arrival_out[src]
            a = base + delays[i]
            arrive_at[i] = a
            if a > max_delay:
                max_delay = a

        # -- backward: required time at every arc's sink pin ------------
        # req_in[b]: latest allowed arrival at block b's input pins.
        # Registered blocks capture at Dmax; combinational blocks
        # inherit the tightest fanout requirement.
        req_in: Dict[str, float] = {}
        req_at: List[float] = [0.0] * len(arcs)
        blocks = self.circuit.blocks
        for i in range(self._n_block_arcs, len(arcs)):
            req_at[i] = max_delay
        for block in reversed(self._order):
            if block.registered:
                req_in[block.name] = max_delay - lut_delay
                continue
            required = _INF
            for i in self._fanout.get(block.name, ()):
                sink = arcs[i][1]
                sink_block = blocks.get(sink)
                bound = (
                    max_delay if sink_block is None
                    else req_in[sink]
                ) - delays[i]
                if bound < required:
                    required = bound
            req_in[block.name] = required - lut_delay
        for i in range(self._n_block_arcs):
            req_at[i] = req_in[arcs[i][1]]

        # -- slack and clamped criticality ------------------------------
        slack = [r - a for r, a in zip(req_at, arrive_at)]
        if max_delay > 0.0:
            crit = [
                min(max(1.0 - s / max_delay, 0.0), 1.0)
                for s in slack
            ]
        else:
            crit = [0.0] * len(arcs)
        return CriticalityReport(
            max_delay=max_delay, slack=slack, criticality=crit
        )


class PlacementTimingCost:
    """Criticality-weighted connection-delay cost for annealing placers.

    One instance serves one placement problem; multi-mode problems add
    one circuit per mode (each gets its own STA).  Connections are
    keyed by the *placement cells* of their endpoints — whatever keys
    the owning problem's ``site_of`` uses — via the ``key_of``
    translator passed to :meth:`add_circuit`.

    The cost is ``sum_c crit_c ** exponent * delay_c``:

    * delays are maintained **incrementally per move** — the owning
      problem evaluates only the connections its moved cells touch
      (:meth:`eval_conns` inside the tentatively-applied window) and
      commits the evaluated values (:meth:`commit`);
    * criticalities are refreshed **once per temperature**
      (:meth:`refresh_criticalities` — a full STA per mode over the
      cached delays, O(V + E), cheap next to a temperature's worth of
      moves).
    """

    def __init__(self, config: CriticalityConfig) -> None:
        self.config = config
        self.model = config.model
        self._analyzers: List[Tuple[CriticalityAnalyzer, int]] = []
        self._src_keys: List[Any] = []
        self._snk_keys: List[Any] = []
        self.conns_of_key: Dict[Any, List[int]] = {}
        self.delay: List[float] = []
        self.weight: List[float] = []  # sharpened criticality
        self.cost = 0.0
        self._site_of: Optional[Mapping[Any, Any]] = None

    # -- construction -------------------------------------------------------

    def add_circuit(
        self,
        circuit: LutCircuit,
        key_of: Callable[[str], Any] = lambda cell: cell,
    ) -> None:
        """Register *circuit*'s arcs, endpoints mapped through *key_of*.

        ``key_of`` translates circuit cell names (block names and
        ``pad:<signal>`` cells) into the owning problem's placement
        keys.
        """
        analyzer = CriticalityAnalyzer(circuit)
        offset = len(self._src_keys)
        blocks = circuit.blocks
        for signal, sink_cell in analyzer.arcs:
            src_cell = (
                signal if signal in blocks else pad_cell(signal)
            )
            src_key = key_of(src_cell)
            snk_key = key_of(sink_cell)
            index = len(self._src_keys)
            self._src_keys.append(src_key)
            self._snk_keys.append(snk_key)
            self.conns_of_key.setdefault(src_key, []).append(index)
            if snk_key != src_key:
                self.conns_of_key.setdefault(snk_key, []).append(
                    index
                )
        self._analyzers.append((analyzer, offset))

    def bind(self, site_of: Mapping[Any, Any]) -> None:
        """Attach the live cell->site mapping and do the initial STA."""
        self._site_of = site_of
        self.delay = [
            self._conn_delay(i) for i in range(len(self._src_keys))
        ]
        self.weight = [0.0] * len(self.delay)
        self.refresh_criticalities()

    # -- incremental cost ---------------------------------------------------

    def _conn_delay(self, index: int) -> float:
        site_of = self._site_of
        a = site_of[self._src_keys[index]]
        b = site_of[self._snk_keys[index]]
        return self.model.connection_delay(
            abs(a.x - b.x) + abs(a.y - b.y)
        )

    def conns_of(self, keys: Sequence[Any]) -> List[int]:
        """Sorted connection indices incident to any of *keys*."""
        affected: set = set()
        for key in keys:
            affected.update(self.conns_of_key.get(key, ()))
        return sorted(affected)

    def weighted(self, indices: Sequence[int]) -> float:
        """Current weighted cost of the given connections."""
        delay = self.delay
        weight = self.weight
        return sum(weight[i] * delay[i] for i in indices)

    def eval_conns(self, indices: Sequence[int]
                   ) -> Dict[int, float]:
        """Delays of *indices* at the problem's *current* sites.

        Call while a move is tentatively applied; pass the result to
        :meth:`weighted_eval` for the after-cost and to :meth:`commit`
        when the move is accepted.
        """
        return {i: self._conn_delay(i) for i in indices}

    def weighted_eval(self, evaluated: Mapping[int, float]) -> float:
        weight = self.weight
        return sum(
            weight[i] * d for i, d in evaluated.items()
        )

    def commit(self, evaluated: Mapping[int, float]) -> None:
        """Fold evaluated delays into the cache and the running cost."""
        delay = self.delay
        weight = self.weight
        for i, d in evaluated.items():
            self.cost += weight[i] * (d - delay[i])
            delay[i] = d

    # -- per-temperature refresh --------------------------------------------

    def refresh_criticalities(self) -> None:
        """Re-run the STA per mode and rebuild the weighted cost."""
        config = self.config
        lut_delay = self.model.lut_delay
        for analyzer, offset in self._analyzers:
            n = analyzer.n_arcs()
            report = analyzer.analyze(
                self.delay[offset:offset + n], lut_delay
            )
            cap = config.max_criticality
            exponent = config.exponent
            weight = self.weight
            for j, crit in enumerate(report.criticality):
                weight[offset + j] = sharpen(
                    min(crit, cap), exponent
                )
        self.cost = sum(
            w * d for w, d in zip(self.weight, self.delay)
        )


# ---------------------------------------------------------------------------
# Router-facing adapters
# ---------------------------------------------------------------------------


def lut_connection_criticalities(
    circuit: LutCircuit,
    placement,
    rrg,
    config: CriticalityConfig,
    mode: int = 0,
) -> Dict[Tuple[str, int], float]:
    """Sharpened criticalities of one placed LUT circuit's connections.

    Keys follow the routing workload of
    :func:`repro.route.troute.lut_circuit_connections`:
    ``(net, sink node)`` with ``net = f"m{mode}:{signal}"`` and the
    sink node resolved through *rrg*.  Delays are the pre-route
    estimate over the placed Manhattan distances; several arcs landing
    on the same sink site keep the worst (max) criticality.
    """
    analyzer = CriticalityAnalyzer(circuit)
    sites = placement.sites
    blocks = circuit.blocks
    delays = []
    for signal, sink_cell in analyzer.arcs:
        src_cell = signal if signal in blocks else pad_cell(signal)
        a = sites[src_cell]
        b = sites[sink_cell]
        delays.append(
            config.model.connection_delay(
                abs(a.x - b.x) + abs(a.y - b.y)
            )
        )
    report = analyzer.analyze(delays, config.model.lut_delay)
    cap = config.max_criticality
    crit: Dict[Tuple[str, int], float] = {}
    for (signal, sink_cell), c in zip(
        analyzer.arcs, report.criticality
    ):
        key = (
            f"m{mode}:{signal}",
            rrg.sink_node(sites[sink_cell]),
        )
        weight = config.sharpen(min(c, cap))
        if weight > crit.get(key, 0.0):
            crit[key] = weight
    return crit


def tunable_carriers(tunable) -> Dict[Tuple[int, str], str]:
    """Map (mode, specialised cell name) -> tunable cell carrying it.

    Specialised circuits (:meth:`TunableCircuit.specialize`) name their
    blocks after the mode members and their pads after the mode's IO
    signals; this map translates those names back to the Tunable LUTs
    and pads whose sites they occupy.
    """
    carriers: Dict[Tuple[int, str], str] = {}
    for name, tlut in tunable.tluts.items():
        for mode, member in tlut.members.items():
            carriers[(mode, member.name)] = name
    for name, pad in tunable.pads.items():
        for mode, signal in pad.signals.items():
            carriers[(mode, pad_cell(signal))] = name
    return carriers


def tunable_connection_criticalities(
    tunable,
    rrg,
    config: CriticalityConfig,
) -> Dict[Tuple[str, int], float]:
    """Sharpened criticalities of a merged circuit's connections.

    Each mode's specialised circuit is analysed at the tunable cells'
    sites; mode-level arc criticalities are mapped onto the tunable
    connection keys TRoute routes by — ``(source tunable cell, sink
    node)`` — keeping, per connection, the worst criticality over all
    modes it is active in (a wire shared by a critical and a relaxed
    mode must satisfy the critical one).
    """
    carriers = tunable_carriers(tunable)
    sites: Dict[str, Any] = {}
    for name, tlut in tunable.tluts.items():
        if tlut.site is None:
            raise ValueError(f"tunable LUT {name} has no site")
        sites[name] = tlut.site
    for name, pad in tunable.pads.items():
        if pad.site is None:
            raise ValueError(f"tunable pad {name} has no site")
        sites[name] = pad.site

    cap = config.max_criticality
    crit: Dict[Tuple[str, int], float] = {}
    for mode in range(tunable.n_modes):
        circuit = tunable.specialize(mode)
        analyzer = CriticalityAnalyzer(circuit)
        blocks = circuit.blocks
        delays = []
        endpoints = []
        for signal, sink_cell in analyzer.arcs:
            src_cell = (
                signal if signal in blocks else pad_cell(signal)
            )
            src = sites[carriers[(mode, src_cell)]]
            snk_carrier = carriers[(mode, sink_cell)]
            snk = sites[snk_carrier]
            delays.append(
                config.model.connection_delay(
                    abs(src.x - snk.x) + abs(src.y - snk.y)
                )
            )
            endpoints.append(
                (carriers[(mode, src_cell)], snk_carrier)
            )
        report = analyzer.analyze(
            delays, config.model.lut_delay
        )
        for (src_carrier, snk_carrier), c in zip(
            endpoints, report.criticality
        ):
            key = (src_carrier, rrg.sink_node(sites[snk_carrier]))
            weight = config.sharpen(min(c, cap))
            if weight > crit.get(key, 0.0):
                crit[key] = weight
    return crit
