"""Timing analysis: one criticality model for every flow layer.

All timing in the flow speaks the units of one shared
:class:`DelayModel` (LUT = 1.0).  Three instruments build on it:

* :mod:`repro.timing.criticality` — slack-based connection
  criticalities (arrival/required-time STA over placement-level delay
  estimates).  This is what *drives* the timing-driven placer and
  router: criticality-weighted delay in every annealing cost,
  ``crit*delay + (1-crit)*congestion`` pricing in PathFinder.
* :mod:`repro.timing.sta` — STA over the *actual routed paths*, so
  detours the router takes (congestion avoidance, cross-mode wire
  sharing) show up in the clock estimate.  This is what *checks* the
  result: per-mode Fmax and the MDR:DCS frequency ratios behind the
  abstract's "without significant performance penalties" claim.
* :mod:`repro.place.timing` — the placement-level critical-path
  estimator, consuming the same model.

Exports:

* :class:`DelayModel` — per-resource delays (LUT, pin, wire segment,
  programmable switch) plus the pre-route connection-delay estimate;
* :class:`CriticalityConfig` / :class:`CriticalityAnalyzer` — the
  criticality subsystem's knobs and STA engine;
* :func:`net_delay_tree` / :func:`connection_delays_for_mode` — signal
  arrival along the routed route trees;
* :func:`mdr_arc_delays` / :func:`dcs_arc_delays` — map routed delays
  back onto logical connections of a mode circuit;
* :func:`routed_critical_path` — longest register-to-register or
  IO-to-IO path, with the cell trace of the worst path;
* :func:`timing_comparison` — per-mode MDR vs DCS critical-path ratio.
"""

from repro.timing.criticality import (
    CriticalityAnalyzer,
    CriticalityConfig,
    CriticalityReport,
    lut_connection_criticalities,
    sharpen,
    tunable_connection_criticalities,
)
from repro.timing.delay import DelayModel
from repro.timing.sta import (
    StaReport,
    connection_delays_for_mode,
    dcs_arc_delays,
    mdr_arc_delays,
    net_delay_tree,
    routed_critical_path,
    timing_comparison,
)

__all__ = [
    "CriticalityAnalyzer",
    "CriticalityConfig",
    "CriticalityReport",
    "DelayModel",
    "StaReport",
    "connection_delays_for_mode",
    "dcs_arc_delays",
    "lut_connection_criticalities",
    "mdr_arc_delays",
    "net_delay_tree",
    "routed_critical_path",
    "sharpen",
    "timing_comparison",
    "tunable_connection_criticalities",
]
