"""Routed static timing analysis.

The placement-level estimator in :mod:`repro.place.timing` bounds wire
delay by Manhattan distance; this subpackage analyses the *actual
routed paths*, so detours the router takes (congestion avoidance,
cross-mode wire sharing) show up in the clock estimate.  It is the
instrument behind the abstract's "without significant performance
penalties" claim:

* :class:`DelayModel` — per-resource delays (LUT, pin, wire segment,
  programmable switch);
* :func:`net_delay_tree` / :func:`connection_delays_for_mode` — signal
  arrival along the routed route trees;
* :func:`mdr_arc_delays` / :func:`dcs_arc_delays` — map routed delays
  back onto logical connections of a mode circuit;
* :func:`routed_critical_path` — longest register-to-register or
  IO-to-IO path, with the cell trace of the worst path;
* :func:`timing_comparison` — per-mode MDR vs DCS critical-path ratio.
"""

from repro.timing.delay import DelayModel
from repro.timing.sta import (
    StaReport,
    connection_delays_for_mode,
    dcs_arc_delays,
    mdr_arc_delays,
    net_delay_tree,
    routed_critical_path,
    timing_comparison,
)

__all__ = [
    "DelayModel",
    "StaReport",
    "connection_delays_for_mode",
    "dcs_arc_delays",
    "mdr_arc_delays",
    "net_delay_tree",
    "routed_critical_path",
    "timing_comparison",
]
