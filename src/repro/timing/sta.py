"""Static timing analysis over routed circuits.

Arrival times propagate along the *routed* paths: every net's routes
(for the analysed mode) are united into a route tree and signal delay
to each sink is the cheapest tree path from the net's source, under a
:class:`~repro.timing.delay.DelayModel`.  The logical analysis then
walks the mode circuit in topological order exactly like the
placement-level estimator, but with real interconnect delays.

Launch/capture points follow the usual FPGA STA convention: primary
inputs and flip-flop outputs launch at t=0; flip-flop inputs and
primary outputs are capture endpoints.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.lutcircuit import LutCircuit
from repro.place.placer import Placement, pad_cell
from repro.route.router import RoutingResult
from repro.timing.delay import DelayModel

#: An arc key: (driving signal, sink cell).  The sink cell is a block
#: name for block inputs or ``pad:<signal>`` for primary outputs.
ArcKey = Tuple[str, str]


@dataclass(frozen=True)
class StaReport:
    """Routed critical path of one mode circuit."""

    critical_delay: float
    n_endpoints: int
    critical_path: Tuple[str, ...]

    def frequency(self) -> float:
        """Max clock frequency (1 / delay), arbitrary units."""
        if self.critical_delay <= 0:
            return float("inf")
        return 1.0 / self.critical_delay


def net_delay_tree(
    routing: RoutingResult,
    mode: int,
    net: str,
    model: Optional[DelayModel] = None,
) -> Dict[int, float]:
    """Delay from *net*'s source to every RRG node of its route tree.

    All routes of the net that are active in *mode* are united; the
    delay to a node is the cheapest path inside that union, which
    handles trunk-shared branches and the rare case of a node
    reachable from two directions.  Every route is a simple path out
    of the shared source, so the union is a DAG and one relaxation
    pass in Kahn topological order suffices — no priority queue.
    """
    model = model or DelayModel()
    edges: Dict[int, List[Tuple[int, int]]] = {}
    indeg: Dict[int, int] = {}
    source: Optional[int] = None
    for route in routing.routes.values():
        if route.request.net != net or mode not in route.request.modes:
            continue
        source = route.request.source
        for u, v, bit in route.edges:
            edges.setdefault(u, []).append((v, bit))
            indeg[v] = indeg.get(v, 0) + 1
    if source is None:
        return {}
    rrg = routing.rrg
    dist: Dict[int, float] = {source: model.node_delay(rrg, source)}
    # Kahn order: a node is expanded once all its in-edges (counting
    # trunk-shared duplicates once per occurrence) have relaxed it,
    # at which point its label is final.
    queue = deque([source])
    while queue:
        node = queue.popleft()
        d = dist[node]
        for nxt, bit in edges.get(node, ()):
            nd = d + model.edge_delay(rrg, nxt, bit)
            if nd < dist.get(nxt, float("inf")):
                dist[nxt] = nd
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    return dist


def connection_delays_for_mode(
    routing: RoutingResult,
    mode: int,
    model: Optional[DelayModel] = None,
) -> Dict[Tuple[str, int], float]:
    """Routed delay of every connection active in *mode*.

    Returns ``(net, sink node) -> delay`` from the net's source to the
    connection's sink, along the net's route tree.
    """
    model = model or DelayModel()
    trees: Dict[str, Dict[int, float]] = {}
    delays: Dict[Tuple[str, int], float] = {}
    for route in routing.routes.values():
        request = route.request
        if mode not in request.modes:
            continue
        if request.net not in trees:
            trees[request.net] = net_delay_tree(
                routing, mode, request.net, model
            )
        tree = trees[request.net]
        if request.sink not in tree:
            raise ValueError(
                f"net {request.net}: sink not reached by its route "
                f"tree in mode {mode}"
            )
        delays[(request.net, request.sink)] = tree[request.sink]
    return delays


def mdr_arc_delays(
    circuit: LutCircuit,
    placement: Placement,
    routing: RoutingResult,
    model: Optional[DelayModel] = None,
) -> Dict[ArcKey, float]:
    """Arc delays of one separately implemented (MDR) mode.

    The net naming follows
    :func:`repro.route.troute.lut_circuit_connections` (single-mode
    workloads are routed as mode 0).
    """
    from repro.route.troute import lut_circuit_connections

    rrg = routing.rrg
    model = model or DelayModel()
    delays = connection_delays_for_mode(routing, 0, model)
    arcs: Dict[ArcKey, float] = {}
    for net, _src_site, sink_site, _modes in lut_circuit_connections(
        circuit, placement
    ):
        sink_node = rrg.sink_node(sink_site)
        signal = net.split(":", 1)[1]
        sink_cells = [
            block.name
            for block in circuit.blocks.values()
            if placement.sites[block.name] == sink_site
            and signal in block.inputs
        ]
        if signal in circuit.outputs and sink_site == placement.sites[
            pad_cell(signal)
        ]:
            sink_cells.append(pad_cell(signal))
        for cell in sink_cells:
            arcs[(signal, cell)] = delays[(net, sink_node)]
    return arcs


def dcs_arc_delays(
    tunable,
    routing: RoutingResult,
    mode: int,
    model: Optional[DelayModel] = None,
) -> Dict[ArcKey, float]:
    """Arc delays of mode *mode* inside the merged implementation.

    Tunable connection endpoints (tunable cell names) are translated to
    the specialised circuit's signals: a Tunable LUT stands for its
    mode member, a pad for the mode's IO signal.
    """
    rrg = routing.rrg
    model = model or DelayModel()
    delays = connection_delays_for_mode(routing, mode, model)

    def signal_of(cell: str) -> Optional[str]:
        tlut = tunable.tluts.get(cell)
        if tlut is not None:
            member = tlut.members.get(mode)
            return None if member is None else member.name
        return tunable.pads[cell].signals.get(mode)

    sites = {
        name: tlut.site for name, tlut in tunable.tluts.items()
    }
    sites.update(
        (name, pad.site) for name, pad in tunable.pads.items()
    )
    arcs: Dict[ArcKey, float] = {}
    for conn in tunable.connections:
        if mode not in conn.activation.modes:
            continue
        source_signal = signal_of(conn.source)
        if source_signal is None:
            continue
        sink_node = rrg.sink_node(sites[conn.sink])
        delay = delays[(conn.source, sink_node)]
        sink_tlut = tunable.tluts.get(conn.sink)
        if sink_tlut is not None:
            member = sink_tlut.members.get(mode)
            if member is not None and source_signal in member.inputs:
                arcs[(source_signal, member.name)] = delay
        else:
            pad_signal = tunable.pads[conn.sink].signals.get(mode)
            if pad_signal is not None:
                arcs[(source_signal, pad_cell(pad_signal))] = delay
    return arcs


def routed_critical_path(
    circuit: LutCircuit,
    arcs: Mapping[ArcKey, float],
    model: Optional[DelayModel] = None,
) -> StaReport:
    """Longest path of *circuit* under routed arc delays.

    *arcs* must cover every connection of the circuit (block inputs
    and primary-output taps); :func:`mdr_arc_delays` and
    :func:`dcs_arc_delays` produce exactly that.
    """
    model = model or DelayModel()
    arrival: Dict[str, float] = {}
    best_pred: Dict[str, Optional[str]] = {}

    def launch(signal: str) -> Optional[float]:
        """Arrival of *signal* at its driver's output, or None when
        the signal is combinationally driven (use ``arrival``)."""
        block = circuit.blocks.get(signal)
        if block is None or block.registered:
            return 0.0
        return None

    def arc_delay(signal: str, sink_cell: str) -> float:
        try:
            return arcs[(signal, sink_cell)]
        except KeyError:
            raise KeyError(
                f"no routed arc for connection {signal} -> {sink_cell}"
            ) from None

    worst = 0.0
    worst_end: Optional[str] = None
    worst_is_launch = False
    n_endpoints = 0
    for block in circuit.topological_blocks():
        t = 0.0
        pred: Optional[str] = None
        for src in block.inputs:
            base = launch(src)
            if base is None:
                base = arrival[src]
            candidate = base + arc_delay(src, block.name)
            if candidate > t:
                t, pred = candidate, src
        t += model.lut_delay
        arrival[block.name] = t
        best_pred[block.name] = pred
        if block.registered:
            n_endpoints += 1
            if t > worst:
                worst, worst_end = t, block.name
                worst_is_launch = False
    for out in circuit.outputs:
        base = launch(out)
        is_launch = base is not None
        if base is None:
            base = arrival[out]
        t = base + arc_delay(out, pad_cell(out))
        n_endpoints += 1
        if t > worst:
            # The trace starts at the driving cell; a registered or
            # primary-input driver terminates the walk immediately.
            worst, worst_end, worst_is_launch = t, out, is_launch

    # Reconstruct the worst path by walking predecessors until a
    # launch point (registered block or primary input).
    path: List[str] = []
    cell = worst_end
    seen = set()
    while cell is not None and cell not in seen:
        seen.add(cell)
        path.append(cell)
        if worst_is_launch:
            break
        block = circuit.blocks.get(cell)
        if block is None or block.registered and len(path) > 1:
            break
        cell = best_pred.get(cell)
    path.reverse()
    return StaReport(
        critical_delay=worst,
        n_endpoints=n_endpoints,
        critical_path=tuple(path),
    )


@dataclass(frozen=True)
class TimingComparison:
    """Per-mode MDR vs DCS routed critical-path comparison."""

    mdr_delays: Tuple[float, ...]
    dcs_delays: Tuple[float, ...]

    def ratios(self) -> Tuple[float, ...]:
        return tuple(
            d / m for m, d in zip(self.mdr_delays, self.dcs_delays)
            if m > 0
        )

    @property
    def mean_ratio(self) -> float:
        ratios = self.ratios()
        return sum(ratios) / len(ratios)

    @property
    def worst_ratio(self) -> float:
        return max(self.ratios())


def timing_comparison(
    mdr_reports: Sequence[StaReport],
    dcs_reports: Sequence[StaReport],
) -> TimingComparison:
    """Pair up per-mode reports of both flows (Fig. 7 companion).

    A mean ratio near 1.0 substantiates the abstract's "without
    significant performance penalties".
    """
    if len(mdr_reports) != len(dcs_reports) or not mdr_reports:
        raise ValueError("need one report per mode for both flows")
    return TimingComparison(
        mdr_delays=tuple(r.critical_delay for r in mdr_reports),
        dcs_delays=tuple(r.critical_delay for r in dcs_reports),
    )
