"""Delay model for routing-resource-graph paths.

Delays are in arbitrary units chosen so that one LUT evaluation costs
1.0, matching the placement-level estimator
(:mod:`repro.place.timing`).  A routed connection's delay is the sum of

* one ``pin_delay`` per OPIN/IPIN crossed,
* one ``wire_delay`` per unit-length channel segment crossed,
* one ``switch_delay`` per programmable switch traversed (edges that
  carry a configuration bit; the internal IPIN-to-SINK hop is free).

:meth:`DelayModel.connection_delay` is the *pre-route* estimate of the
same quantity — one OPIN and one IPIN crossing plus one unit wire
behind one switch per Manhattan tile — so the placement-level
estimator (:mod:`repro.place.timing`), the timing-driven placer and
router (:mod:`repro.timing.criticality`), and the routed STA
(:mod:`repro.timing.sta`) all speak the same units: one model, every
layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.arch.rrg import IPIN, OPIN, SINK, WIRE, RoutingResourceGraph


@dataclass(frozen=True)
class DelayModel:
    """Per-resource delays (arbitrary units, LUT = 1.0)."""

    lut_delay: float = 1.0
    pin_delay: float = 0.05
    wire_delay: float = 0.3
    switch_delay: float = 0.15

    def node_delay(self, rrg: RoutingResourceGraph, node: int) -> float:
        """Intrinsic delay of entering *node*."""
        kind = rrg.node_kind[node]
        if kind == WIRE:
            return self.wire_delay
        if kind in (OPIN, IPIN):
            return self.pin_delay
        return 0.0  # SINK is a logical aggregation point

    def edge_delay(
        self, rrg: RoutingResourceGraph, dst: int, bit: int
    ) -> float:
        """Delay of taking one RRG edge into *dst*.

        Programmable switches (``bit >= 0``) add ``switch_delay``;
        internal edges are free.  The destination node's intrinsic
        delay is included, so summing ``edge_delay`` along a path plus
        the source node's delay gives the full path delay.
        """
        delay = self.node_delay(rrg, dst)
        if bit >= 0:
            delay += self.switch_delay
        return delay

    def connection_delay(self, distance: float) -> float:
        """Pre-route estimate of a routed connection's delay.

        A connection whose endpoints are *distance* tiles apart
        (Manhattan) crosses one OPIN and one IPIN plus, per tile, one
        unit-length channel segment behind one programmable switch.
        The router can only add detours on top of this, so the
        estimate is a lower bound of the routed
        :meth:`path_delay` — which is what makes pre-route and
        post-route STA comparable.
        """
        return 2.0 * self.pin_delay + distance * (
            self.wire_delay + self.switch_delay
        )

    def path_delay(
        self,
        rrg: RoutingResourceGraph,
        edges: Sequence[Tuple[int, int, int]],
    ) -> float:
        """Delay of a routed edge list, including the source node."""
        if not edges:
            return 0.0
        total = self.node_delay(rrg, edges[0][0])
        for _u, v, bit in edges:
            total += self.edge_delay(rrg, v, bit)
        return total

    def validate(self) -> None:
        """Reject non-physical (negative) delays."""
        for name in ("lut_delay", "pin_delay", "wire_delay",
                     "switch_delay"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
