"""Benchmark circuit generators and the experiment harness.

The paper evaluates on three application suites; each has a generator
here that produces the same class of LUT circuits from scratch:

* :mod:`repro.bench.regex` — regular-expression matching engines
  (regex -> Thompson NFA -> one-hot hardware matcher), standing in for
  the VHDL generator of Sourdis et al.
* :mod:`repro.bench.fir` — constant-coefficient FIR filters with all
  constants propagated into shift-add networks (experiment 2).
* :mod:`repro.bench.mcnc` — MCNC-class random logic circuits in the
  paper's size window (experiment 3); real MCNC ``.blif`` files can be
  substituted through :mod:`repro.netlist.blif`.
* :mod:`repro.bench.harness` — suite assembly and the printers that
  regenerate every table and figure of the evaluation section.
* :mod:`repro.bench.campaign` — declarative sweeps (suites x flow
  variants x seeds) over the workload registry (:mod:`repro.gen`),
  with resumable JSONL record checkpoints, a summary JSON and the CI
  QoR gate.
* :mod:`repro.bench.trend` — the nightly QoR trend database: ingest
  campaign records into append-only SQLite and gate drift against a
  rolling window of previous runs.

Workloads themselves are described by
:class:`repro.gen.spec.WorkloadSpec` and materialised through the
suite registry (:mod:`repro.gen.suites`); the classic generators
above are registered there alongside the parameterized families
(datapath, fsm, xbar, klut).
"""

from repro.bench.fir import generate_fir_circuit
from repro.bench.mcnc import generate_mcnc_circuit
from repro.bench.regex import compile_regex_circuit
from repro.bench.similarity import similarity_report

__all__ = [
    "compile_regex_circuit",
    "generate_fir_circuit",
    "generate_mcnc_circuit",
    "similarity_report",
]
