"""QoR trend database: nightly history with rolling-window gating.

The committed ``BENCH_qor_baseline.json`` gates PRs against one frozen
reference; the **trend database** gates the nightly campaign against
its own recent history instead.  It is a single SQLite file,
append-only in spirit: every nightly run *ingests* its campaign JSONL
(``repro trend ingest``) as one row per
``(commit, suite, variant, seed, metric)``, and the *gate*
(``repro trend gate``) compares the newest ingest's metrics against
the **median of the previous N ingests** with per-metric tolerances —
so a slow drift that never trips the 5% PR gate in one step is caught
once it crosses the window median, and a noisy single night does not
move the reference the way re-baselining would.  ``repro trend
report`` renders the same comparison as a Markdown drift table.

Design constraints:

* **Determinism** — nothing time-derived is stored or consulted:
  ingests are ordered by their integer ``ingest_id``, so running the
  gate twice on the same file yields the same verdict, and the gate
  reads only (never writes) the database.
* **Idempotent ingest** — re-ingesting the same ``(commit, campaign)``
  replaces the earlier ingest rather than double-counting it, so a
  re-run nightly (or a crashed-and-retried CI job) cannot stuff the
  window with duplicates.
* **Seed granularity** — metrics aggregate per ``(suite, variant,
  seed)`` (the JSONL's deterministic axes), one notch finer than the
  committed baseline's ``suite/variant`` groups: a regression that
  only one seed exposes is not averaged away.

In CI the file lives in ``actions/cache`` under a monotonic key with a
prefix ``restore-keys`` fallback (see ``nightly.yml``): every night
restores the newest database, ingests, gates, and saves a new cache
entry — the database accumulates across nightlies with no committed
file to churn.
"""

from __future__ import annotations

import json
import sqlite3
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.campaign import qor_metrics

#: Schema version stamped into the database; a mismatch refuses the
#: file rather than silently misreading it (regenerate or migrate).
TREND_SCHEMA_VERSION = 1

#: Default database filename (CI caches it under this name).
DEFAULT_DB = "qor_trend.db"

#: Default rolling-window length: the last N ingests *before* the
#: newest one form the reference.
DEFAULT_WINDOW = 7

#: Minimum history points before a series is gated at all; below
#: this the series reports ``new`` and passes (a fresh database must
#: not fail its first nights).
DEFAULT_MIN_HISTORY = 2

#: Fractional tolerances around the window median, per metric family.
#: Tighter than the PR gate's one-shot tolerances is tempting, but the
#: window median is itself a noisy reference on short windows, so the
#: same slack is used; the win over the committed baseline is that the
#: reference tracks reality.
TREND_TOLERANCES = {
    "wirelength": 0.05,
    "fmax": 0.05,
    "speedup": 0.10,
    "frequency_ratio": 0.05,
}

#: metric name -> (tolerance family, higher_is_worse).  Exactly the
#: per-group metrics of :func:`repro.bench.campaign.qor_metrics`.
TREND_METRICS: Dict[str, Tuple[str, bool]] = {
    "mdr_wirelength": ("wirelength", True),
    "dcs_wirelength": ("wirelength", True),
    "mean_speedup": ("speedup", False),
    "mean_mdr_fmax": ("fmax", False),
    "mean_dcs_fmax": ("fmax", False),
    "mean_frequency_ratio": ("frequency_ratio", False),
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS ingests (
    ingest_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    commit_sha TEXT NOT NULL,
    campaign   TEXT NOT NULL,
    label      TEXT NOT NULL DEFAULT '',
    n_records  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    ingest_id INTEGER NOT NULL
        REFERENCES ingests(ingest_id) ON DELETE CASCADE,
    suite   TEXT NOT NULL,
    variant TEXT NOT NULL,
    seed    INTEGER NOT NULL,
    metric  TEXT NOT NULL,
    value   REAL NOT NULL,
    PRIMARY KEY (ingest_id, suite, variant, seed, metric)
);
CREATE INDEX IF NOT EXISTS metrics_by_series
    ON metrics (suite, variant, seed, metric, ingest_id);
"""


class TrendError(Exception):
    """Unusable database or unusable ingest input."""


def connect(path: str) -> sqlite3.Connection:
    """Open (creating if absent) a trend database."""
    conn = sqlite3.connect(path)
    conn.execute("PRAGMA foreign_keys = ON")
    conn.executescript(_SCHEMA)
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'"
    ).fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES "
            "('schema_version', ?)",
            (str(TREND_SCHEMA_VERSION),),
        )
        conn.commit()
    elif int(row[0]) != TREND_SCHEMA_VERSION:
        conn.close()
        raise TrendError(
            f"{path}: trend schema v{row[0]}, this code speaks "
            f"v{TREND_SCHEMA_VERSION} — regenerate the database"
        )
    return conn


# ---------------------------------------------------------------------------
# Ingest
# ---------------------------------------------------------------------------


def load_records_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a campaign JSONL; unparsable lines are an error here.

    Ingest consumes *finished* campaign files — unlike checkpoint
    resume, a torn line at ingest time means the campaign did not
    complete and the night's data would be partial, so it is refused
    instead of silently trimmed.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise TrendError(
                    f"{path}:{number}: unparsable JSONL line "
                    f"({error}) — ingest needs a completed campaign "
                    "file"
                ) from None
    return records


def seed_metrics(
    records: Sequence[Dict[str, object]]
) -> Dict[Tuple[str, str, int], Dict[str, float]]:
    """Deterministic aggregates per ``(suite, variant, seed)``.

    Reuses :func:`qor_metrics` (the committed-baseline aggregator) on
    each per-seed slice, so the two gates can never disagree about
    what a metric means.
    """
    out: Dict[Tuple[str, str, int], Dict[str, float]] = {}
    seeds = sorted({record["seed"] for record in records})
    for seed in seeds:
        per_seed = [r for r in records if r["seed"] == seed]
        for group, row in qor_metrics(per_seed).items():
            suite, variant = group.split("/", 1)
            out[(suite, variant, seed)] = {
                metric: float(row[metric]) for metric in TREND_METRICS
            }
    return out


@dataclass
class IngestResult:
    ingest_id: int
    campaign: str
    commit: str
    n_rows: int
    replaced: bool


def ingest(
    conn: sqlite3.Connection,
    records: Sequence[Dict[str, object]],
    commit: str,
    label: str = "",
) -> IngestResult:
    """Add one campaign run's metrics as the newest ingest.

    The campaign name is read off the records (they all carry it); a
    mixed file is refused.  An existing ingest for the same
    ``(commit, campaign)`` is replaced.
    """
    if not records:
        raise TrendError("no records to ingest")
    campaigns = {record.get("campaign") for record in records}
    if len(campaigns) != 1 or None in campaigns:
        raise TrendError(
            f"records name {len(campaigns)} campaigns "
            f"({sorted(str(c) for c in campaigns)}); ingest one "
            "campaign per call"
        )
    campaign = campaigns.pop()

    replaced = False
    for (old_id,) in conn.execute(
        "SELECT ingest_id FROM ingests "
        "WHERE commit_sha = ? AND campaign = ?",
        (commit, campaign),
    ).fetchall():
        conn.execute(
            "DELETE FROM ingests WHERE ingest_id = ?", (old_id,)
        )
        replaced = True

    cursor = conn.execute(
        "INSERT INTO ingests (commit_sha, campaign, label, n_records)"
        " VALUES (?, ?, ?, ?)",
        (commit, campaign, label, len(records)),
    )
    ingest_id = cursor.lastrowid
    rows = [
        (ingest_id, suite, variant, seed, metric, value)
        for (suite, variant, seed), metrics in sorted(
            seed_metrics(records).items()
        )
        for metric, value in sorted(metrics.items())
    ]
    conn.executemany(
        "INSERT INTO metrics "
        "(ingest_id, suite, variant, seed, metric, value) "
        "VALUES (?, ?, ?, ?, ?, ?)",
        rows,
    )
    conn.commit()
    return IngestResult(
        ingest_id, campaign, commit, len(rows), replaced
    )


# ---------------------------------------------------------------------------
# Rolling-window comparison
# ---------------------------------------------------------------------------


@dataclass
class SeriesDrift:
    """One ``(suite, variant, seed, metric)`` series vs its window."""

    suite: str
    variant: str
    seed: int
    metric: str
    value: float
    #: Window values, oldest first (may be short or empty).
    window: List[float] = field(default_factory=list)

    @property
    def series(self) -> str:
        return f"{self.suite}/{self.variant}/s{self.seed}"

    @property
    def median(self) -> Optional[float]:
        return statistics.median(self.window) if self.window else None

    @property
    def delta(self) -> Optional[float]:
        """Fractional change vs the window median (None: no window
        or a zero median)."""
        median = self.median
        if median is None or median == 0.0:
            return None
        return self.value / median - 1.0

    def status(
        self,
        tolerances: Optional[Dict[str, float]] = None,
        min_history: int = DEFAULT_MIN_HISTORY,
    ) -> str:
        """``new`` | ``ok`` | ``improved`` | ``regressed``."""
        tol_map = dict(TREND_TOLERANCES)
        tol_map.update(tolerances or {})
        family, higher_is_worse = TREND_METRICS[self.metric]
        tolerance = tol_map[family]
        delta = self.delta
        if len(self.window) < min_history or delta is None:
            return "new"
        worse = delta if higher_is_worse else -delta
        if worse > tolerance:
            return "regressed"
        if worse < -tolerance:
            return "improved"
        return "ok"


@dataclass
class GateOutcome:
    """Everything one gate evaluation saw (also feeds the report)."""

    campaign: str
    ingest_id: int
    commit: str
    label: str
    window: int
    #: Ingest ids the window actually used, oldest first.
    window_ids: List[int]
    drifts: List[SeriesDrift]
    violations: List[str]

    @property
    def passed(self) -> bool:
        return not self.violations


def latest_ingest(
    conn: sqlite3.Connection, campaign: Optional[str] = None
) -> Tuple[int, str, str, str]:
    """(ingest_id, campaign, commit, label) of the newest ingest."""
    if campaign is None:
        row = conn.execute(
            "SELECT ingest_id, campaign, commit_sha, label "
            "FROM ingests ORDER BY ingest_id DESC LIMIT 1"
        ).fetchone()
    else:
        row = conn.execute(
            "SELECT ingest_id, campaign, commit_sha, label "
            "FROM ingests WHERE campaign = ? "
            "ORDER BY ingest_id DESC LIMIT 1",
            (campaign,),
        ).fetchone()
    if row is None:
        raise TrendError(
            "empty trend database"
            if campaign is None
            else f"no ingests for campaign {campaign!r}"
        )
    return row[0], row[1], row[2], row[3]


def evaluate(
    conn: sqlite3.Connection,
    campaign: Optional[str] = None,
    window: int = DEFAULT_WINDOW,
    tolerances: Optional[Dict[str, float]] = None,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> GateOutcome:
    """Compare the newest ingest against its rolling window.

    For every series the newest ingest carries, the reference is the
    **median** over the up-to-*window* previous ingests of the same
    campaign that carry the series (a median shrugs off one bad night
    in the history; a mean would not).  Series with fewer than
    *min_history* reference points pass as ``new``.  Regressions —
    beyond tolerance in the bad direction — become violations;
    improvements never do (they simply pull the future median along,
    ratcheting the reference).
    """
    ingest_id, campaign, commit, label = latest_ingest(
        conn, campaign
    )
    window_ids = [
        row[0]
        for row in conn.execute(
            "SELECT ingest_id FROM ingests "
            "WHERE campaign = ? AND ingest_id < ? "
            "ORDER BY ingest_id DESC LIMIT ?",
            (campaign, ingest_id, window),
        )
    ]
    window_ids.reverse()  # oldest first

    drifts: List[SeriesDrift] = []
    for suite, variant, seed, metric, value in conn.execute(
        "SELECT suite, variant, seed, metric, value FROM metrics "
        "WHERE ingest_id = ? "
        "ORDER BY suite, variant, seed, metric",
        (ingest_id,),
    ):
        history = [
            row[0]
            for row in conn.execute(
                "SELECT value FROM metrics "
                "WHERE suite = ? AND variant = ? AND seed = ? "
                "AND metric = ? "
                f"AND ingest_id IN ({','.join('?' * len(window_ids))})"
                " ORDER BY ingest_id",
                (suite, variant, seed, metric, *window_ids),
            )
        ] if window_ids else []
        drifts.append(
            SeriesDrift(suite, variant, seed, metric, value, history)
        )

    tol_map = dict(TREND_TOLERANCES)
    tol_map.update(tolerances or {})
    violations = []
    for drift in drifts:
        if drift.status(tol_map, min_history) != "regressed":
            continue
        family, _higher_is_worse = TREND_METRICS[drift.metric]
        violations.append(
            f"{drift.series}: {drift.metric} drifted "
            f"{drift.median:.4f} -> {drift.value:.4f} "
            f"({100 * drift.delta:+.1f}% vs the median of "
            f"{len(drift.window)} nightly runs, tolerance "
            f"{100 * tol_map[family]:.0f}%)"
        )
    return GateOutcome(
        campaign=campaign,
        ingest_id=ingest_id,
        commit=commit,
        label=label,
        window=window,
        window_ids=window_ids,
        drifts=drifts,
        violations=violations,
    )


# ---------------------------------------------------------------------------
# Markdown drift report
# ---------------------------------------------------------------------------


def drift_report(
    outcome: GateOutcome,
    tolerances: Optional[Dict[str, float]] = None,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> str:
    """Render a gate evaluation as a Markdown drift table."""
    lines = [
        "# QoR trend report",
        "",
        f"Campaign **{outcome.campaign}**, newest ingest "
        f"#{outcome.ingest_id} (commit `{outcome.commit}`"
        + (f", {outcome.label}" if outcome.label else "")
        + ") vs the median of the previous "
        f"{len(outcome.window_ids)} ingest(s) "
        f"(window {outcome.window}).",
        "",
        f"Verdict: **{'PASS' if outcome.passed else 'FAIL'}** "
        f"({len(outcome.violations)} regression(s), "
        f"{len(outcome.drifts)} series checked).",
        "",
        "| series | metric | latest | window median | drift |"
        " status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for drift in outcome.drifts:
        median = drift.median
        delta = drift.delta
        status = drift.status(tolerances, min_history)
        marker = {
            "regressed": "**REGRESSED**",
            "improved": "improved",
            "ok": "ok",
            "new": "new (history "
                   f"{len(drift.window)}/{min_history})",
        }[status]
        lines.append(
            f"| {drift.series} | {drift.metric} "
            f"| {drift.value:.4f} "
            f"| {'-' if median is None else format(median, '.4f')} "
            f"| {'-' if delta is None else format(100 * delta, '+.1f') + '%'} "
            f"| {marker} |"
        )
    if outcome.violations:
        lines += ["", "## Regressions", ""]
        lines += [f"- {violation}" for violation in outcome.violations]
    lines.append("")
    return "\n".join(lines)


def history_table(
    conn: sqlite3.Connection,
) -> List[Tuple[int, str, str, str, int]]:
    """All ingests, oldest first (for ``repro trend ingest -v``)."""
    return list(
        conn.execute(
            "SELECT ingest_id, campaign, commit_sha, label, "
            "n_records FROM ingests ORDER BY ingest_id"
        )
    )
