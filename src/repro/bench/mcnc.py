"""MCNC-class benchmark circuits (paper experiment 3).

The paper's third experiment picks 5 circuits of similar size from the
MCNC (LGSynth91) suite and builds the 10 pairwise multi-mode circuits.
The original BLIF files are not redistributable here, so this module
generates *structurally faithful stand-ins*: seeded random logic
networks tuned to the paper's size window (264-404 4-LUTs after
mapping, Table I) with realistic properties:

* locality-biased fanin selection (Rent-style wiring locality),
* a mix of narrow and wide gates plus registered pipeline stages,
* moderate logic depth and primary IO counts typical of the suite.

Unlike the RegExp and FIR suites, the five circuits are *mutually
dissimilar* (different seeds, shapes and register densities), which is
exactly the property the paper's MCNC experiment stresses: "the
wire-length depends more on the similarity between the circuits".

Real MCNC ``.blif`` files drop in unchanged through
:func:`repro.netlist.blif.read_blif_file` + :func:`repro.synth.techmap.
tech_map` and can replace these stand-ins in the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.synth.optimize import optimize_network
from repro.synth.techmap import tech_map
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class McncProfile:
    """Shape parameters of one synthetic MCNC-class circuit."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    register_fraction: float
    locality: int  # fanins drawn from the last `locality` signals
    seed: int


# Profiles named after the MCNC circuits they are sized like; gate
# counts are tuned so the mapped 4-LUT counts land in Table I's window.
DEFAULT_PROFILES = [
    McncProfile("alu_like", 14, 8, 270, 0.00, 60, 101),
    McncProfile("apex_like", 18, 10, 310, 0.05, 90, 202),
    McncProfile("ex5p_like", 8, 28, 240, 0.00, 50, 303),
    McncProfile("s832_like", 18, 19, 300, 0.10, 70, 404),
    McncProfile("tseng_like", 16, 12, 305, 0.12, 80, 505),
]


def mcnc_network(profile: McncProfile) -> LogicNetwork:
    """Generate the random logic network for *profile*.

    The generator grows a DAG gate by gate; each gate draws 2-4 fanins
    from a locality window over recently created signals (plus
    occasional global signals), giving the clustered wiring real
    circuits show.  A fraction of gates is registered.
    """
    rng = make_rng(profile.seed, f"mcnc:{profile.name}")
    network = LogicNetwork(profile.name)
    signals: List[str] = [
        network.add_input(f"pi{i}") for i in range(profile.n_inputs)
    ]

    gate_tables = {
        2: [
            TruthTable.var(0, 2) & TruthTable.var(1, 2),
            TruthTable.var(0, 2) | TruthTable.var(1, 2),
            TruthTable.var(0, 2) ^ TruthTable.var(1, 2),
            ~(TruthTable.var(0, 2) & TruthTable.var(1, 2)),
            ~(TruthTable.var(0, 2) | TruthTable.var(1, 2)),
        ],
    }

    def pick_fanins(arity: int) -> List[str]:
        window = signals[-profile.locality:]
        chosen: List[str] = []
        while len(chosen) < arity:
            # 15% global picks keep some long wires around.
            pool = (
                signals
                if rng.random() < 0.15 or len(window) < arity
                else window
            )
            cand = pool[rng.randrange(len(pool))]
            if cand not in chosen:
                chosen.append(cand)
        return chosen

    latch_feeds: List[Tuple[str, str]] = []
    for g in range(profile.n_gates):
        arity = 2 if rng.random() < 0.7 else rng.randint(3, 4)
        fanins = pick_fanins(arity)
        if arity == 2:
            table = gate_tables[2][rng.randrange(5)]
        else:
            table = TruthTable(
                arity, rng.getrandbits(1 << arity)
            )
            if table.is_const():
                table = TruthTable.var(0, arity)
        name = f"g{g}"
        network.add_node(name, fanins, table)
        if rng.random() < profile.register_fraction:
            reg = f"r{g}"
            network.add_latch(reg, name)
            signals.append(reg)
        else:
            signals.append(name)

    # Outputs: prefer late signals (circuit "results").
    candidates = [
        s for s in signals if s not in network.inputs
    ]
    n_outputs = min(profile.n_outputs, len(candidates))
    tail = candidates[-max(n_outputs * 4, n_outputs):]
    outputs = rng.sample(tail, n_outputs)
    for out in outputs:
        network.add_output(out)
    network.validate()
    return network


def generate_mcnc_circuit(
    profile: McncProfile,
    k: int = 4,
) -> LutCircuit:
    """Generate, optimise and map one MCNC-class circuit."""
    network = mcnc_network(profile)
    network = optimize_network(network)
    return tech_map(network, k=k)


def default_mcnc_circuits(k: int = 4) -> List[LutCircuit]:
    """The five stand-in circuits of the third experiment."""
    return [
        generate_mcnc_circuit(profile, k=k)
        for profile in DEFAULT_PROFILES
    ]
