"""Constant-coefficient FIR filters (paper experiment 2).

The paper combines 10 low-pass and 10 high-pass finite-impulse-response
filters into 10 multi-mode circuits.  "The non-zero coefficients were
chosen randomly, after which all the constants were propagated.  Such a
FIR filter is 3 times smaller than the generic version."

This module reproduces that construction:

* :func:`fir_coefficients` draws a random sparse symmetric coefficient
  vector shaped like a low-pass (all non-negative taps, DC gain) or a
  high-pass (alternating-sign taps) filter;
* :func:`fir_network` builds a transposed-form FIR datapath.  With
  ``generic=False`` every multiplier is constant-propagated into a
  CSD shift-add network (the specialised filter); with
  ``generic=True`` the coefficients enter through input ports and full
  array multipliers are instantiated — the baseline whose area the
  paper compares against (the 3x figure and the 33% area result).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit
from repro.synth.optimize import optimize_network
from repro.synth.synthesis import WordBuilder
from repro.synth.techmap import tech_map
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class FirSpec:
    """A concrete FIR filter instance."""

    kind: str  # "lowpass" or "highpass"
    coefficients: Tuple[int, ...]
    data_width: int = 8
    coeff_width: int = 6

    @property
    def n_taps(self) -> int:
        return len(self.coefficients)

    def accumulator_width(self) -> int:
        """Width that cannot overflow for any input sequence."""
        gain = sum(abs(c) for c in self.coefficients)
        if gain == 0:
            gain = 1
        return self.data_width + max(1, math.ceil(math.log2(gain))) + 1

    def response(self, samples: Sequence[int]) -> List[int]:
        """Reference (software) filter output, modular arithmetic."""
        width = self.accumulator_width()
        mask = (1 << width) - 1
        history = [0] * self.n_taps
        out = []
        for sample in samples:
            history = [sample] + history[:-1]
            acc = sum(
                c * x for c, x in zip(self.coefficients, history)
            )
            out.append(acc & mask)
        return out


def fir_coefficients(
    kind: str,
    n_taps: int = 8,
    n_nonzero: int = 5,
    coeff_width: int = 6,
    seed: int = 0,
) -> FirSpec:
    """Draw a random sparse coefficient vector of the requested kind.

    Low-pass filters get non-negative symmetric taps (a smoothing
    kernel); high-pass filters get alternating-sign taps (a
    differencing kernel).  Sparsity ("the non-zero coefficients were
    chosen randomly") keeps the specialised datapath small, as in the
    paper.
    """
    if kind not in ("lowpass", "highpass"):
        raise ValueError("kind must be 'lowpass' or 'highpass'")
    if not 1 <= n_nonzero <= n_taps:
        raise ValueError("need 1 <= n_nonzero <= n_taps")
    rng = make_rng(seed, f"fir:{kind}")
    positions = sorted(rng.sample(range(n_taps), n_nonzero))
    max_mag = (1 << (coeff_width - 1)) - 1
    coefficients = [0] * n_taps
    for i, pos in enumerate(positions):
        magnitude = rng.randint(1, max_mag)
        if kind == "lowpass":
            coefficients[pos] = magnitude
        else:
            sign = 1 if (i % 2 == 0) else -1
            coefficients[pos] = sign * magnitude
    return FirSpec(kind, tuple(coefficients),
                   coeff_width=coeff_width)


def fir_network(
    spec: FirSpec,
    name: str = "fir",
    generic: bool = False,
) -> LogicNetwork:
    """Build the FIR datapath as a logic network.

    Transposed form: the input broadcasts to all tap multipliers; the
    products enter a registered adder chain.  ``generic=True``
    instantiates real multipliers with the coefficients as extra input
    buses (the baseline); ``generic=False`` propagates the constants
    (the paper's specialised version).
    """
    network = LogicNetwork(name)
    wb = WordBuilder(network, prefix="_f")
    width = spec.accumulator_width()
    x = wb.input_word("x", spec.data_width)

    products: List[List[str]] = []
    if generic:
        for tap, _coeff in enumerate(spec.coefficients):
            c = wb.input_word(f"c{tap}", spec.coeff_width)
            products.append(
                _signed_multiply(wb, x, c, width)
            )
    else:
        for tap, coeff in enumerate(spec.coefficients):
            products.append(wb.mul_const(x, coeff, width))

    # Transposed-form accumulator chain: y = p0 + z^-1(p1 + z^-1(...)).
    acc = products[-1]
    for tap in range(spec.n_taps - 2, -1, -1):
        delayed = wb.register_word(acc, base=f"d{tap}")
        acc = wb.adder(products[tap], delayed, width=width)
    wb.output_word("y", acc)
    network.validate()
    return network


def _signed_multiply(
    wb: WordBuilder,
    x: Sequence[str],
    c: Sequence[str],
    width: int,
) -> List[str]:
    """Array multiplier, c in two's complement (generic FIR only)."""
    n = len(c)
    acc = wb.const_word(0, width)
    for bit in range(n):
        partial = wb.shift_left_const(x, bit, width)
        gated = [wb.gate_and((c[bit], p)) for p in partial]
        if bit == n - 1:
            # Sign bit: subtract the partial product.
            acc = wb.subtract(acc, gated, width=width)
        else:
            acc = wb.adder(acc, gated, width=width)
    return acc


def generate_fir_circuit(
    kind: str,
    seed: int = 0,
    n_taps: int = 8,
    n_nonzero: int = 5,
    k: int = 4,
    generic: bool = False,
    name: Optional[str] = None,
) -> LutCircuit:
    """Full front-end: random FIR spec -> optimised K-LUT circuit."""
    spec = fir_coefficients(kind, n_taps, n_nonzero, seed=seed)
    label = name or f"fir_{kind}_{seed}"
    network = fir_network(spec, label, generic=generic)
    network = optimize_network(network)
    return tech_map(network, k=k)


def fir_pair_specs(seed: int) -> Tuple[FirSpec, FirSpec]:
    """The low-pass/high-pass pair of one multi-mode circuit."""
    return (
        fir_coefficients("lowpass", seed=seed),
        fir_coefficients("highpass", seed=seed),
    )
