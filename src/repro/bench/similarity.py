"""Structural similarity between mode circuits.

The paper's MCNC discussion attributes the wider wire-length spread to
circuit dissimilarity: "For the general MCNC circuits the wire-length
depends more on the similarity between the circuits."  This module
quantifies that similarity so experiments can report it next to the
Fig. 7 numbers:

* :func:`connection_match_bound` — an upper bound on the fraction of
  connections a perfect merge could share, computed from a
  label-refined greedy matching on the two circuits' connection graphs
  (a light-weight Weisfeiler-Lehman-style colouring via networkx);
* :func:`degree_profile_similarity` — cosine similarity of fanout
  histograms (a placement-free first-order signal);
* :func:`similarity_report` — both metrics plus size overlap.

These are analysis tools; the flow itself never needs them.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.netlist.lutcircuit import LutCircuit
from repro.place.placer import pad_cell


def circuit_graph(circuit: LutCircuit) -> "nx.DiGraph":
    """Directed cell-level connection graph of a LUT circuit.

    Nodes are blocks and IO pads with structural labels (kind,
    registered flag, fanin count); edges follow signal flow.
    """
    graph = nx.DiGraph()
    for signal in circuit.inputs:
        graph.add_node(pad_cell(signal), kind="ipad", arity=0,
                       registered=False)
    for block in circuit.blocks.values():
        graph.add_node(
            block.name,
            kind="lut",
            arity=len(block.inputs),
            registered=block.registered,
        )
    for out in circuit.outputs:
        graph.add_node(f"opad:{out}", kind="opad", arity=1,
                       registered=False)
    for block in circuit.blocks.values():
        for src in block.inputs:
            src_cell = (
                pad_cell(src) if src in circuit.inputs else src
            )
            graph.add_edge(src_cell, block.name)
    for out in circuit.outputs:
        src_cell = pad_cell(out) if out in circuit.inputs else out
        graph.add_edge(src_cell, f"opad:{out}")
    return graph


def _wl_colors(graph: "nx.DiGraph", rounds: int = 2
               ) -> Dict[str, int]:
    """Weisfeiler-Lehman node colouring (structure fingerprints)."""
    colors: Dict[str, Tuple] = {
        node: (
            data["kind"], data["arity"], data["registered"],
            graph.out_degree(node),
        )
        for node, data in graph.nodes(data=True)
    }
    for _ in range(rounds):
        new_colors = {}
        for node in graph.nodes:
            neighbourhood = sorted(
                colors[p] for p in graph.predecessors(node)
            )
            new_colors[node] = (colors[node], tuple(neighbourhood))
        colors = new_colors
    # Compress to integers.
    palette: Dict[Tuple, int] = {}
    compressed = {}
    for node, color in colors.items():
        compressed[node] = palette.setdefault(color, len(palette))
    return compressed


def connection_match_bound(
    a: LutCircuit, b: LutCircuit, rounds: int = 2
) -> float:
    """Upper-bound fraction of connections a merge could share.

    Connections are labelled by the WL colours of their endpoints; two
    connections of different modes can only end up with the same
    physical source *and* sink if a placement maps their endpoint
    pairs onto each other, so the multiset intersection of endpoint
    labels bounds the matchable count.  Returned as a fraction of the
    larger mode's connection count (1.0 = potentially fully shared).
    """
    ga, gb = circuit_graph(a), circuit_graph(b)

    # Colour both graphs with the raw (uncompressed) WL labels so the
    # two palettes agree without an explicit union graph.
    def recolor(graph):
        colors = {
            node: (
                data["kind"], data["arity"], data["registered"],
                graph.out_degree(node),
            )
            for node, data in graph.nodes(data=True)
        }
        for _ in range(rounds):
            colors = {
                node: (
                    colors[node],
                    tuple(sorted(
                        colors[p] for p in graph.predecessors(node)
                    )),
                )
                for node in graph.nodes
            }
        return colors

    raw_a, raw_b = recolor(ga), recolor(gb)
    from collections import Counter

    edges_a = Counter(
        (raw_a[u], raw_a[v]) for u, v in ga.edges
    )
    edges_b = Counter(
        (raw_b[u], raw_b[v]) for u, v in gb.edges
    )
    matchable = sum((edges_a & edges_b).values())
    denominator = max(ga.number_of_edges(), gb.number_of_edges())
    if denominator == 0:
        return 1.0
    return matchable / denominator


def degree_profile_similarity(a: LutCircuit, b: LutCircuit) -> float:
    """Cosine similarity of the two circuits' fanout histograms."""
    import math

    def histogram(circuit: LutCircuit) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for readers in circuit.fanouts().values():
            counts[len(readers)] = counts.get(len(readers), 0) + 1
        return counts

    ha, hb = histogram(a), histogram(b)
    # sorted(): the products are ints today, but accumulation order
    # must not depend on PYTHONHASHSEED if this ever goes float.
    keys = sorted(set(ha) | set(hb))
    dot = sum(ha.get(k, 0) * hb.get(k, 0) for k in keys)
    norm_a = math.sqrt(sum(v * v for v in ha.values()))
    norm_b = math.sqrt(sum(v * v for v in hb.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


def similarity_report(a: LutCircuit, b: LutCircuit) -> Dict[str, float]:
    """All similarity metrics of a mode pair."""
    size_ratio = min(a.n_luts(), b.n_luts()) / max(
        a.n_luts(), b.n_luts()
    )
    return {
        "size_ratio": size_ratio,
        "match_bound": connection_match_bound(a, b),
        "degree_similarity": degree_profile_similarity(a, b),
    }
