r"""Regular-expression matching engines in hardware.

The paper's first experiment uses circuits produced by the tool of
Sourdis et al. ("Regular expression matching in reconfigurable
hardware"): each regular expression becomes a hardware engine that
consumes one input character per clock cycle and raises a match output.
This module reimplements that construction:

1. the regex is parsed into an AST (concatenation, alternation, ``*``,
   ``+``, ``?``, character classes, escapes, ``.``),
2. compiled to an NFA by Thompson's construction,
3. realised as a *one-hot* NFA circuit: one flip-flop per NFA state,
   next-state logic ORing the incoming transitions, character-class
   decoders on the 8-bit input bus (exactly the decoder-sharing design
   of the reconfigurable-hardware regex literature).

The matcher semantics are *unanchored search*: the start state is
re-armed every cycle, and ``match`` fires in the cycle after the last
character of any substring matching the expression.

The five default patterns are representative of Snort/Bleeding-Edge
payload rules (the 2013 rule set itself is no longer distributable);
any pattern in the supported syntax can be compiled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit
from repro.synth.optimize import optimize_network
from repro.synth.synthesis import WordBuilder
from repro.synth.techmap import tech_map

# Patterns in the flavour of Bleeding Edge / Snort content rules,
# sized so the compiled engines land in the paper's Table I window
# (224-261 4-LUTs; ours measure 222-253).
DEFAULT_PATTERNS = [
    r"GET /(admin|login|setup)\.(php|asp|cgi)\?(id|user|sess)=[0-9a-f]+x",
    r"(cmd|command)\.exe( /c| /x)+ (dir|del|copy) [a-z]+\.(bat|dll)",
    r"user=[a-z]+[0-9]+&pass=[a-f]+&go",
    r"(root|toor|guest):[a-f0-9]+:[0-9]+:(bash|csh|sh):/home/u",
    r"\x90+(shell|exec|payload)code(\x04|\xff)+[a-p0-7]+(call|jmp)xy",
]


class RegexSyntaxError(ValueError):
    """Raised on unsupported or malformed pattern syntax."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Ast:
    kind: str  # "char", "concat", "alt", "star", "plus", "opt", "epsilon"
    chars: FrozenSet[int] = frozenset()
    children: Tuple["Ast", ...] = ()


def _char_ast(chars: Set[int]) -> Ast:
    if not chars:
        raise RegexSyntaxError("empty character class")
    return Ast("char", frozenset(chars))


class _Parser:
    """Recursive-descent parser for the supported regex subset."""

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    def parse(self) -> Ast:
        ast = self._alternation()
        if self.pos != len(self.pattern):
            raise RegexSyntaxError(
                f"unexpected {self.pattern[self.pos]!r} at "
                f"{self.pos}"
            )
        return ast

    # -- grammar -----------------------------------------------------------

    def _alternation(self) -> Ast:
        branches = [self._concat()]
        while self._peek() == "|":
            self.pos += 1
            branches.append(self._concat())
        if len(branches) == 1:
            return branches[0]
        return Ast("alt", children=tuple(branches))

    def _concat(self) -> Ast:
        items: List[Ast] = []
        while self._peek() not in ("", "|", ")"):
            items.append(self._repeat())
        if not items:
            return Ast("epsilon")
        if len(items) == 1:
            return items[0]
        return Ast("concat", children=tuple(items))

    def _repeat(self) -> Ast:
        atom = self._atom()
        while True:
            nxt = self._peek()
            if nxt == "*":
                self.pos += 1
                atom = Ast("star", children=(atom,))
            elif nxt == "+":
                self.pos += 1
                atom = Ast("plus", children=(atom,))
            elif nxt == "?":
                self.pos += 1
                atom = Ast("opt", children=(atom,))
            else:
                return atom

    def _atom(self) -> Ast:
        ch = self._peek()
        if ch == "(":
            self.pos += 1
            inner = self._alternation()
            if self._peek() != ")":
                raise RegexSyntaxError("unbalanced parenthesis")
            self.pos += 1
            return inner
        if ch == "[":
            return _char_ast(self._char_class())
        if ch == ".":
            self.pos += 1
            return _char_ast(set(range(256)))
        if ch == "\\":
            return _char_ast(self._escape())
        if ch in ("*", "+", "?", ")", "|", ""):
            raise RegexSyntaxError(f"unexpected {ch!r} at {self.pos}")
        self.pos += 1
        return _char_ast({ord(ch)})

    # -- lexical helpers -------------------------------------------------

    def _peek(self) -> str:
        if self.pos >= len(self.pattern):
            return ""
        return self.pattern[self.pos]

    def _escape(self) -> Set[int]:
        assert self._peek() == "\\"
        self.pos += 1
        ch = self._peek()
        if ch == "":
            raise RegexSyntaxError("dangling escape")
        self.pos += 1
        if ch == "x":
            hex_digits = self.pattern[self.pos:self.pos + 2]
            if len(hex_digits) != 2:
                raise RegexSyntaxError("bad \\x escape")
            self.pos += 2
            return {int(hex_digits, 16)}
        if ch == "d":
            return {ord(c) for c in "0123456789"}
        if ch == "w":
            import string

            return {
                ord(c)
                for c in string.ascii_letters + string.digits + "_"
            }
        if ch == "s":
            return {ord(c) for c in " \t\r\n\f\v"}
        if ch == "n":
            return {10}
        if ch == "t":
            return {9}
        if ch == "r":
            return {13}
        return {ord(ch)}

    def _char_class(self) -> Set[int]:
        assert self._peek() == "["
        self.pos += 1
        negate = False
        if self._peek() == "^":
            negate = True
            self.pos += 1
        chars: Set[int] = set()
        first = True
        while True:
            ch = self._peek()
            if ch == "":
                raise RegexSyntaxError("unterminated character class")
            if ch == "]" and not first:
                self.pos += 1
                break
            first = False
            if ch == "\\":
                chars |= self._escape()
                continue
            self.pos += 1
            if (
                self._peek() == "-"
                and self.pos + 1 < len(self.pattern)
                and self.pattern[self.pos + 1] != "]"
            ):
                self.pos += 1
                hi = self._peek()
                self.pos += 1
                if ord(hi) < ord(ch):
                    raise RegexSyntaxError("reversed range")
                chars |= set(range(ord(ch), ord(hi) + 1))
            else:
                chars.add(ord(ch))
        if negate:
            chars = set(range(256)) - chars
        return chars


def parse_regex(pattern: str) -> Ast:
    """Parse *pattern* into an AST (supported subset; see module doc)."""
    return _Parser(pattern).parse()


# ---------------------------------------------------------------------------
# Thompson construction
# ---------------------------------------------------------------------------


@dataclass
class Nfa:
    """NFA with character-class transitions and epsilon moves."""

    n_states: int
    start: int
    accept: int
    # (src, dst, chars); chars None = epsilon
    transitions: List[Tuple[int, int, Optional[FrozenSet[int]]]] = field(
        default_factory=list
    )

    def eps_closure(self, states: Set[int]) -> Set[int]:
        result = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for src, dst, chars in self.transitions:
                if src == s and chars is None and dst not in result:
                    result.add(dst)
                    stack.append(dst)
        return result

    def step(self, states: Set[int], char: int) -> Set[int]:
        nxt = {
            dst
            for src, dst, chars in self.transitions
            if src in states and chars is not None and char in chars
        }
        return self.eps_closure(nxt)

    def search(self, data: bytes) -> List[int]:
        """Unanchored match: positions (1-based, after the matching
        char) where the accept state is reached.  Reference model for
        the hardware."""
        hits = []
        start_closure = self.eps_closure({self.start})
        current = set(start_closure)
        for i, byte in enumerate(data):
            current = self.step(current | start_closure, byte)
            if self.accept in current:
                hits.append(i + 1)
        return hits


def build_nfa(ast: Ast) -> Nfa:
    """Thompson's construction."""
    counter = [0]
    transitions: List[Tuple[int, int, Optional[FrozenSet[int]]]] = []

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def build(node: Ast) -> Tuple[int, int]:
        if node.kind == "char":
            s, t = fresh(), fresh()
            transitions.append((s, t, node.chars))
            return s, t
        if node.kind == "epsilon":
            s = fresh()
            return s, s
        if node.kind == "concat":
            first_s, prev_t = build(node.children[0])
            for child in node.children[1:]:
                s, t = build(child)
                transitions.append((prev_t, s, None))
                prev_t = t
            return first_s, prev_t
        if node.kind == "alt":
            s, t = fresh(), fresh()
            for child in node.children:
                cs, ct = build(child)
                transitions.append((s, cs, None))
                transitions.append((ct, t, None))
            return s, t
        if node.kind == "star":
            s, t = fresh(), fresh()
            cs, ct = build(node.children[0])
            transitions.append((s, cs, None))
            transitions.append((ct, t, None))
            transitions.append((s, t, None))
            transitions.append((ct, cs, None))
            return s, t
        if node.kind == "plus":
            cs, ct = build(node.children[0])
            transitions.append((ct, cs, None))
            return cs, ct
        if node.kind == "opt":
            s, t = fresh(), fresh()
            cs, ct = build(node.children[0])
            transitions.append((s, cs, None))
            transitions.append((ct, t, None))
            transitions.append((s, t, None))
            return s, t
        raise AssertionError(node.kind)

    start, accept = build(ast)
    return Nfa(counter[0], start, accept, transitions)


# ---------------------------------------------------------------------------
# Hardware realisation
# ---------------------------------------------------------------------------


def _epsilon_free(nfa: Nfa) -> Dict[int, List[Tuple[int, FrozenSet[int]]]]:
    """dst -> [(src, chars)] with epsilon moves folded away.

    A character transition src --chars--> dst is realised for every
    state in dst's forward epsilon closure; sources are expanded so a
    state is "active" if any state in its backward closure is active.
    Concretely we precompute: state q is reached after consuming char c
    iff exists transition (s, d, chars) with c in chars, s'
    epsilon-reaches s ... easier: next(q) = OR over char-transitions
    (s, d, chars) with q in eps_closure({d}) of (active(s) and
    decode(chars)).
    """
    incoming: Dict[int, List[Tuple[int, FrozenSet[int]]]] = {}
    for src, dst, chars in nfa.transitions:
        if chars is None:
            continue
        for q in sorted(nfa.eps_closure({dst})):
            incoming.setdefault(q, []).append((src, chars))
    return incoming


def regex_to_network(
    pattern: str, name: str = "regex"
) -> LogicNetwork:
    """Compile *pattern* into a sequential logic network.

    Interface: 8-bit input bus ``ch[7:0]``, input ``valid`` (gates
    state updates), output ``match``.
    """
    nfa = build_nfa(parse_regex(pattern))
    incoming = _epsilon_free(nfa)

    network = LogicNetwork(name)
    wb = WordBuilder(network, prefix="_rx")
    ch = wb.input_word("ch", 8)
    valid = network.add_input("valid")

    # Character-class decoders are shared across transitions.
    decoder_cache: Dict[FrozenSet[int], str] = {}

    def decode(chars: FrozenSet[int]) -> str:
        cached = decoder_cache.get(chars)
        if cached is not None:
            return cached
        if len(chars) == 256:
            signal = wb.const_bit(True)
        else:
            minterms = [wb.equals_const(ch, c) for c in sorted(chars)]
            signal = wb.gate_or(minterms) if minterms else (
                wb.const_bit(False)
            )
        decoder_cache[chars] = signal
        return signal

    # Which NFA states can be active *before* consuming a character:
    # the start closure is re-armed every cycle (unanchored search),
    # all other states are registered.
    start_closure = nfa.eps_closure({nfa.start})

    state_ff: Dict[int, str] = {}
    sources_needed: Set[int] = set()
    for q, arcs in incoming.items():
        for src, _chars in arcs:
            sources_needed.add(src)

    # active(s) = FF(s) or (s in start closure).
    def active(src: int) -> str:
        if src in start_closure:
            return wb.const_bit(True)
        return state_ff.get(src, wb.const_bit(False))

    # Declare the flip-flops first (feedback), then their next-state
    # logic.
    needed_states = sorted(incoming)
    for q in needed_states:
        state_ff[q] = f"st{q}"
    for q in needed_states:
        network.add_latch(f"st{q}", f"st{q}$next")
    for q in needed_states:
        arcs = incoming[q]
        terms = []
        for src, chars in arcs:
            terms.append(
                wb.gate_and((active(src), decode(chars)))
            )
        fire = wb.gate_or(terms)
        # Hold 0 when no valid character is presented this cycle.
        network.add_and(f"st{q}$next", (fire, valid))

    accept_signal = (
        state_ff.get(nfa.accept)
        if nfa.accept in state_ff
        else wb.const_bit(False)
    )
    if accept_signal is None:  # pragma: no cover - accept always keyed
        accept_signal = wb.const_bit(False)
    network.add_buf("match", accept_signal)
    network.add_output("match")
    network.validate()
    return network


def compile_regex_circuit(
    pattern: str,
    name: str = "regex",
    k: int = 4,
) -> LutCircuit:
    """Full front-end: pattern -> optimised, mapped K-LUT circuit."""
    network = regex_to_network(pattern, name)
    network = optimize_network(network)
    return tech_map(network, k=k)


def reference_match_positions(pattern: str, data: bytes) -> List[int]:
    """Software oracle used by the tests (1-based end positions)."""
    return build_nfa(parse_regex(pattern)).search(data)
