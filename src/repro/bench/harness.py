"""Experiment harness: regenerate every table and figure of the paper.

The evaluation section has four artefacts, each with a method here:

* **Table I** — min/avg/max LUT counts per suite
  (:meth:`ExperimentHarness.table1`).
* **Fig. 5** — reconfiguration speed-up of DCS (edge matching / wire
  length) over MDR, averaged per suite with min/max error bars
  (:meth:`ExperimentHarness.figure5`).
* **Fig. 6** — relative contribution of LUT and routing bits for
  RegExp-MDR / RegExp-Diff / RegExp-DCS
  (:meth:`ExperimentHarness.figure6`).
* **Fig. 7** — per-mode wire usage relative to MDR
  (:meth:`ExperimentHarness.figure7`).
* **Section IV-C area paragraph** — area of the multi-mode
  implementation relative to static implementations
  (:meth:`ExperimentHarness.area_table`).

Effort profiles trade fidelity for runtime: ``paper`` runs the full 10
pairs per suite with VPR-strength annealing; ``default`` and ``quick``
run calibrated subsets through the *identical code path* (EXPERIMENTS.md
records results per profile).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.fir import generate_fir_circuit
from repro.core.flow import (
    FlowOptions,
    MultiModeResult,
    implement_multi_mode,
    pack_result,
    unpack_result,
)
from repro.core.merge import MergeStrategy
from repro.exec.cache import StageCache
from repro.exec.progress import ProgressLog, StageRecord
from repro.exec.scheduler import Scheduler, Task
from repro.gen.spec import WorkloadSpec
from repro.gen.suites import suite_pair_specs
from repro.netlist.lutcircuit import LutCircuit

SUITES = ("RegExp", "FIR", "MCNC")


def _pair_worker(
    name: str,
    mode_circuits: Tuple[LutCircuit, ...],
    options: FlowOptions,
    cache_root: Optional[str],
    cache_enabled: bool,
) -> Tuple[MultiModeResult, List[StageRecord]]:
    """Implement one multi-mode pair (scheduler task; runs in workers).

    Pairs fan out at this granularity, so within one pair the flow runs
    serially (``workers=1``) — the harness never nests process pools.
    The result travels back RRG-free; the parent reattaches the graph.
    """
    import time

    cache = StageCache(cache_root, enabled=cache_enabled)
    progress = ProgressLog()
    start = time.perf_counter()
    result = implement_multi_mode(
        name, mode_circuits, options, workers=1,
        cache=cache, progress=progress,
    )
    records = list(progress.records)
    if not any(r.stage == "multimode" for r in records):
        records.append(
            StageRecord(
                "multimode", name,
                time.perf_counter() - start, cache_hit=False,
            )
        )
    return pack_result(result), records


@dataclass(frozen=True)
class EffortProfile:
    """Runtime/fidelity trade-off of one harness run.

    Suite sizing lives in the workload registry
    (:data:`repro.gen.suites.SCALES`): ``scale`` names the registry
    scale the profile draws from, defaulting to the profile's own
    name for the built-in profiles.  Custom profiles (e.g. the
    benchmark suite's ``bench``) pick any registered scale explicitly
    and trim with ``pairs_per_suite``.
    """

    name: str
    pairs_per_suite: Optional[int]  # None = all pairs
    inner_num: float
    scale: Optional[str] = None  # None = same as `name`

    @property
    def workload_scale(self) -> str:
        return self.scale or self.name

    def flow_options(self, seed: int) -> FlowOptions:
        return FlowOptions(seed=seed, inner_num=self.inner_num)


EFFORT_PROFILES = {
    "quick": EffortProfile("quick", 2, 0.1),
    "default": EffortProfile("default", 4, 0.3),
    "paper": EffortProfile("paper", None, 1.0),
}


@dataclass
class PairOutcome:
    """All metrics of one multi-mode circuit."""

    suite: str
    name: str
    result: MultiModeResult

    def speedup(self, strategy: MergeStrategy) -> float:
        return self.result.speedup(strategy)

    def wirelength_ratio(self, strategy: MergeStrategy) -> float:
        return self.result.wirelength_ratio(strategy)


def _aggregate(values: Sequence[float]) -> Tuple[float, float, float]:
    """(min, mean, max) of a non-empty sequence."""
    return (min(values), sum(values) / len(values), max(values))


class ExperimentHarness:
    """Builds the suites and runs the paper's experiments."""

    def __init__(self, effort: str = "quick", seed: int = 0,
                 k: int = 4, workers: Optional[int] = None,
                 cache: Optional[StageCache] = None,
                 progress: Optional[ProgressLog] = None,
                 timing_driven: bool = False) -> None:
        if effort not in EFFORT_PROFILES:
            raise ValueError(
                f"effort must be one of {sorted(EFFORT_PROFILES)}"
            )
        self.profile = EFFORT_PROFILES[effort]
        self.seed = seed
        self.k = k
        #: Thread the criticality model through every pair's placement
        #: and routing (see repro.timing.criticality); the timing-driven
        #: and wirelength-driven runs memoize under distinct cache keys.
        self.timing_driven = timing_driven
        self.scheduler = Scheduler(workers)
        self.cache = cache or StageCache(enabled=False)
        self.progress = progress or ProgressLog()
        self._spec_cache: Dict[WorkloadSpec, LutCircuit] = {}
        self._suite_cache: Dict[str, List[LutCircuit]] = {}
        self._outcome_cache: Dict[str, List[PairOutcome]] = {}

    # -- suite assembly ---------------------------------------------------
    #
    # Workloads come from the suite registry (repro.gen.suites): the
    # effort profile's name doubles as the registry scale, so the
    # harness, the campaign runner and bench-exec all draw identical
    # circuits for identical (suite, seed, k, scale) requests.

    def _build(self, spec: WorkloadSpec) -> LutCircuit:
        """Materialise *spec* once per harness instance."""
        if spec not in self._spec_cache:
            self._spec_cache[spec] = spec.build()
        return self._spec_cache[spec]

    def _mode_specs(self, suite: str) -> List[WorkloadSpec]:
        """Unique mode specs of *suite*, in first-appearance order
        (untruncated: Table I and the area table describe the whole
        suite, not the effort profile's pair subset)."""
        seen: Dict[WorkloadSpec, None] = {}
        for _name, specs in suite_pair_specs(
            suite, seed=self.seed, k=self.k,
            scale=self.profile.workload_scale,
        ):
            for spec in specs:
                seen.setdefault(spec)
        return list(seen)

    def regexp_circuits(self) -> List[LutCircuit]:
        """The five compiled regex engines (experiment 1)."""
        if "RegExp" not in self._suite_cache:
            self._suite_cache["RegExp"] = [
                self._build(spec)
                for spec in self._mode_specs("RegExp")
            ]
        return self._suite_cache["RegExp"]

    def fir_circuits(self) -> Tuple[List[LutCircuit], List[LutCircuit]]:
        """Low-pass and high-pass filter banks (experiment 2)."""
        specs = self._mode_specs("FIR")
        lowpass = [
            self._build(s) for s in specs
            if s.param("filter") == "lowpass"
        ]
        highpass = [
            self._build(s) for s in specs
            if s.param("filter") == "highpass"
        ]
        return lowpass, highpass

    def mcnc_circuits(self) -> List[LutCircuit]:
        """The five MCNC-class circuits (experiment 3)."""
        if "MCNC" not in self._suite_cache:
            self._suite_cache["MCNC"] = [
                self._build(spec)
                for spec in self._mode_specs("MCNC")
            ]
        return self._suite_cache["MCNC"]

    def suite_pairs(self, suite: str) -> List[Tuple[str, List[LutCircuit]]]:
        """The multi-mode circuits (mode pairs) of one suite.

        Pair structure comes from the registry: RegExp and MCNC take
        all C(5,2)=10 combinations of their five circuits; FIR pairs
        low-pass *i* with high-pass *i* (10 pairs in the paper).
        Effort profiles truncate the list and set the scale.
        """
        pairs = suite_pair_specs(
            suite, seed=self.seed, k=self.k,
            scale=self.profile.workload_scale,
            limit=self.profile.pairs_per_suite,
        )
        return [
            (name, [self._build(spec) for spec in specs])
            for name, specs in pairs
        ]

    # -- experiment execution ------------------------------------------------

    def run_suite(self, suite: str,
                  verbose: bool = False) -> List[PairOutcome]:
        """Implement every multi-mode circuit of *suite* with both
        flows; results are cached per harness instance."""
        return self.run_suites([suite], verbose=verbose)[suite]

    def run_suites(
        self, suites: Sequence[str], verbose: bool = False
    ) -> Dict[str, List[PairOutcome]]:
        """Implement the pairs of several suites as one task batch.

        Every (suite, pair) is an independent flow run, so the whole
        cross-suite workload fans out over the harness scheduler at
        once — with ``workers=N`` the slowest suite no longer gates
        the others.  Results come back in deterministic (submission)
        order whatever the completion order was.
        """
        pending = [s for s in suites if s not in self._outcome_cache]
        workload: List[Tuple[str, str, List[LutCircuit]]] = []
        for suite in pending:
            for name, modes in self.suite_pairs(suite):
                workload.append((suite, name, modes))
        options = replace(
            self.profile.flow_options(self.seed),
            timing_driven=self.timing_driven,
        )
        cache_root = (
            str(self.cache.root) if self.cache.enabled else None
        )
        tasks = [
            Task(
                _pair_worker,
                (
                    name, tuple(modes), options,
                    cache_root, self.cache.enabled,
                ),
                name=f"{suite}/{name}",
            )
            for suite, name, modes in workload
        ]
        results = self.scheduler.run(tasks)
        by_suite: Dict[str, List[PairOutcome]] = {
            suite: [] for suite in pending
        }
        for (suite, name, _modes), (packed, records) in zip(
            workload, results
        ):
            self.progress.extend(records)
            result = unpack_result(packed)
            by_suite[suite].append(PairOutcome(suite, name, result))
            if verbose:
                em = result.speedup(MergeStrategy.EDGE_MATCHING)
                wl = result.speedup(MergeStrategy.WIRE_LENGTH)
                print(
                    f"  {name}: speedup EM {em:.2f}x WL {wl:.2f}x"
                )
        self._outcome_cache.update(by_suite)
        return {
            suite: self._outcome_cache[suite] for suite in suites
        }

    # -- Table I --------------------------------------------------------------

    def table1(self) -> List[Dict[str, object]]:
        """Size of the LUT circuits used in the experiments."""
        rows = []
        suite_circuits = {
            "RegExp": self.regexp_circuits(),
            "FIR": [c for bank in self.fir_circuits() for c in bank],
            "MCNC": self.mcnc_circuits(),
        }
        for suite, circuits in suite_circuits.items():
            sizes = [c.n_luts() for c in circuits]
            low, mean, high = _aggregate([float(s) for s in sizes])
            rows.append({
                "suite": suite,
                "minimum": int(low),
                "average": round(mean),
                "maximum": int(high),
            })
        return rows

    @staticmethod
    def print_table1(rows: Sequence[Dict[str, object]]) -> str:
        lines = ["TABLE I: Size of the LUT circuits (4-LUT count)",
                 f"{'':8s} {'Minimum':>8s} {'Average':>8s} "
                 f"{'Maximum':>8s}"]
        for row in rows:
            lines.append(
                f"{row['suite']:8s} {row['minimum']:8d} "
                f"{row['average']:8d} {row['maximum']:8d}"
            )
        return "\n".join(lines)

    # -- Fig. 5 ---------------------------------------------------------------

    def figure5(
        self, outcomes_by_suite: Dict[str, List[PairOutcome]]
    ) -> List[Dict[str, object]]:
        """Reconfiguration speed-up of DCS relative to MDR."""
        rows = []
        for suite, outcomes in outcomes_by_suite.items():
            for strategy, label in (
                (MergeStrategy.EDGE_MATCHING, "DCS-Edge matching"),
                (MergeStrategy.WIRE_LENGTH, "DCS-Wire length"),
            ):
                values = [o.speedup(strategy) for o in outcomes]
                low, mean, high = _aggregate(values)
                rows.append({
                    "suite": suite,
                    "variant": label,
                    "min": low,
                    "mean": mean,
                    "max": high,
                })
        return rows

    @staticmethod
    def print_figure5(rows: Sequence[Dict[str, object]]) -> str:
        lines = [
            "Fig. 5: Reconfiguration speed up of DCS compared to MDR",
            f"{'suite':8s} {'variant':20s} "
            f"{'mean':>6s} {'min':>6s} {'max':>6s}",
            f"{'(all)':8s} {'MDR (base)':20s} "
            f"{1.0:6.2f} {1.0:6.2f} {1.0:6.2f}",
        ]
        for row in rows:
            lines.append(
                f"{row['suite']:8s} {row['variant']:20s} "
                f"{row['mean']:6.2f} {row['min']:6.2f} "
                f"{row['max']:6.2f}"
            )
        return "\n".join(lines)

    # -- Fig. 6 ---------------------------------------------------------------

    def figure6(
        self, regexp_outcomes: Sequence[PairOutcome]
    ) -> List[Dict[str, object]]:
        """LUT/routing breakdown for RegExp-MDR / -Diff / -DCS.

        Bits are averaged over the suite's multi-mode circuits and
        normalised to the MDR total (the MDR bar is 100%).
        """
        mdr_lut = _mean(
            [o.result.mdr.cost.lut_bits for o in regexp_outcomes]
        )
        mdr_route = _mean(
            [o.result.mdr.cost.routing_bits for o in regexp_outcomes]
        )
        diff_route = _mean(
            [o.result.mdr.diff.routing_bits for o in regexp_outcomes]
        )
        dcs_route = _mean(
            [
                o.result.dcs[MergeStrategy.WIRE_LENGTH]
                .cost.routing_bits
                for o in regexp_outcomes
            ]
        )
        total = mdr_lut + mdr_route
        rows = []
        for label, lut, route in (
            ("RegExp-MDR", mdr_lut, mdr_route),
            ("RegExp-Diff", mdr_lut, diff_route),
            ("RegExp-DCS", mdr_lut, dcs_route),
        ):
            rows.append({
                "label": label,
                "lut_bits": lut,
                "routing_bits": route,
                "lut_pct_of_mdr": 100.0 * lut / total,
                "routing_pct_of_mdr": 100.0 * route / total,
            })
        return rows

    @staticmethod
    def print_figure6(rows: Sequence[Dict[str, object]]) -> str:
        lines = [
            "Fig. 6: Relative contribution of LUTs and routing in "
            "reconfiguration time (MDR total = 100%)",
            f"{'variant':14s} {'LUT %':>8s} {'routing %':>10s}",
        ]
        for row in rows:
            lines.append(
                f"{row['label']:14s} {row['lut_pct_of_mdr']:8.1f} "
                f"{row['routing_pct_of_mdr']:10.1f}"
            )
        mdr_route = rows[0]["routing_pct_of_mdr"]
        diff_route = rows[1]["routing_pct_of_mdr"]
        dcs_route = rows[2]["routing_pct_of_mdr"]
        if dcs_route > 0 and diff_route > 0:
            lines.append(
                "routing reduction: region effect "
                f"{mdr_route / diff_route:.1f}x, merge effect "
                f"{diff_route / dcs_route:.1f}x, combined "
                f"{mdr_route / dcs_route:.1f}x"
            )
        return "\n".join(lines)

    # -- Fig. 7 ---------------------------------------------------------------

    def figure7(
        self, outcomes_by_suite: Dict[str, List[PairOutcome]]
    ) -> List[Dict[str, object]]:
        """Per-mode wire usage relative to MDR (percent)."""
        rows = []
        for suite, outcomes in outcomes_by_suite.items():
            for strategy, label in (
                (MergeStrategy.EDGE_MATCHING, "DCS-Edge matching"),
                (MergeStrategy.WIRE_LENGTH, "DCS-Wire length"),
            ):
                ratios = [
                    100.0 * o.wirelength_ratio(strategy)
                    for o in outcomes
                ]
                low, mean, high = _aggregate(ratios)
                rows.append({
                    "suite": suite,
                    "variant": label,
                    "min": low,
                    "mean": mean,
                    "max": high,
                })
        return rows

    @staticmethod
    def print_figure7(rows: Sequence[Dict[str, object]]) -> str:
        lines = [
            "Fig. 7: Number of wires relative to MDR (percent)",
            f"{'suite':8s} {'variant':20s} "
            f"{'mean':>7s} {'min':>7s} {'max':>7s}",
            f"{'(all)':8s} {'MDR (base)':20s} "
            f"{100.0:7.1f} {100.0:7.1f} {100.0:7.1f}",
        ]
        for row in rows:
            lines.append(
                f"{row['suite']:8s} {row['variant']:20s} "
                f"{row['mean']:7.1f} {row['min']:7.1f} "
                f"{row['max']:7.1f}"
            )
        return "\n".join(lines)

    # -- Section IV-C: area ---------------------------------------------------

    def area_table(self) -> List[Dict[str, object]]:
        """Area of the multi-mode region vs static implementations.

        RegExp/MCNC: the region holds the biggest mode, so area
        relative to implementing both modes statically is
        ``max(a, b) / (a + b)`` (about 50% for similar sizes).
        FIR: the specialised filters are compared against one *generic*
        FIR (the paper's 33% figure), since a generic filter can play
        both modes by reloading coefficients.
        """
        rows = []
        for suite in ("RegExp", "MCNC"):
            ratios = []
            for _name, modes in self.suite_pairs(suite):
                sizes = [c.n_luts() for c in modes]
                ratios.append(max(sizes) / sum(sizes))
            low, mean, high = _aggregate(ratios)
            rows.append({
                "suite": suite,
                "baseline": "static both modes",
                "area_pct": 100.0 * mean,
                "min": 100.0 * low,
                "max": 100.0 * high,
            })
        # FIR vs generic filter.
        generic = generate_fir_circuit(
            "lowpass", seed=self.seed, k=self.k, generic=True,
            name="fir_generic",
        )
        ratios = []
        for _name, modes in self.suite_pairs("FIR"):
            biggest = max(c.n_luts() for c in modes)
            ratios.append(biggest / generic.n_luts())
        low, mean, high = _aggregate(ratios)
        rows.append({
            "suite": "FIR",
            "baseline": "generic FIR filter",
            "area_pct": 100.0 * mean,
            "min": 100.0 * low,
            "max": 100.0 * high,
        })
        return rows

    @staticmethod
    def print_area_table(rows: Sequence[Dict[str, object]]) -> str:
        lines = [
            "Section IV-C: multi-mode area relative to baseline",
            f"{'suite':8s} {'baseline':22s} "
            f"{'area %':>7s} {'min':>6s} {'max':>6s}",
        ]
        for row in rows:
            lines.append(
                f"{row['suite']:8s} {row['baseline']:22s} "
                f"{row['area_pct']:7.1f} {row['min']:6.1f} "
                f"{row['max']:6.1f}"
            )
        return "\n".join(lines)

    # -- extension: routed timing (abstract's performance claim) --------------

    def sta_table(
        self, outcomes_by_suite: Dict[str, List[PairOutcome]]
    ) -> List[Dict[str, object]]:
        """Per-mode routed critical-path penalty of DCS vs MDR.

        An extension beyond the paper's wire-length argument: static
        timing analysis on the actual routed paths of both flows
        ("without significant performance penalties", checked).
        """
        rows = []
        for suite, outcomes in outcomes_by_suite.items():
            for strategy, label in (
                (MergeStrategy.EDGE_MATCHING, "DCS-Edge matching"),
                (MergeStrategy.WIRE_LENGTH, "DCS-Wire length"),
            ):
                ratios = [
                    o.result.mean_frequency_ratio(strategy)
                    for o in outcomes
                ]
                low, mean, high = _aggregate(ratios)
                rows.append({
                    "suite": suite,
                    "variant": label,
                    "min": low,
                    "mean": mean,
                    "max": high,
                })
        return rows

    # -- extension: per-mode Fmax (the paper's speed comparison) --------------

    def fmax_table(
        self, outcomes_by_suite: Dict[str, List[PairOutcome]]
    ) -> List[Dict[str, object]]:
        """Per-mode Fmax of both flows and the MDR:DCS frequency ratio.

        The paper's headline comparison is achievable clock frequency;
        this reports, per suite and merge strategy, the mean per-mode
        Fmax of the separate (MDR) and merged (DCS) implementations
        plus min/mean/max of the per-mode MDR:DCS frequency ratio
        (1.0 = the merged circuit clocks exactly as fast).
        """
        from repro.timing import timing_comparison

        rows = []
        for suite, outcomes in outcomes_by_suite.items():
            for strategy, label in (
                (MergeStrategy.EDGE_MATCHING, "DCS-Edge matching"),
                (MergeStrategy.WIRE_LENGTH, "DCS-Wire length"),
            ):
                # One routed STA per outcome and flow; fmax and the
                # frequency ratios derive from the same reports.
                mdr_fmax: List[float] = []
                dcs_fmax: List[float] = []
                ratios: List[float] = []
                for o in outcomes:
                    mdr_reports = o.result.mdr.per_mode_sta()
                    dcs_reports = (
                        o.result.dcs[strategy].per_mode_sta()
                    )
                    mdr_fmax.extend(
                        r.frequency() for r in mdr_reports
                    )
                    dcs_fmax.extend(
                        r.frequency() for r in dcs_reports
                    )
                    ratios.extend(
                        timing_comparison(
                            mdr_reports, dcs_reports
                        ).ratios()
                    )
                low, mean, high = _aggregate(ratios)
                rows.append({
                    "suite": suite,
                    "variant": label,
                    "mdr_fmax": _mean(mdr_fmax),
                    "dcs_fmax": _mean(dcs_fmax),
                    "ratio_min": low,
                    "ratio_mean": mean,
                    "ratio_max": high,
                })
        return rows

    @staticmethod
    def print_fmax_table(rows: Sequence[Dict[str, object]]) -> str:
        lines = [
            "Extension: per-mode Fmax and MDR:DCS frequency ratio "
            "(1.00 = merged circuit clocks as fast)",
            f"{'suite':8s} {'variant':20s} "
            f"{'MDR Fmax':>9s} {'DCS Fmax':>9s} "
            f"{'ratio':>6s} {'min':>6s} {'max':>6s}",
        ]
        for row in rows:
            lines.append(
                f"{row['suite']:8s} {row['variant']:20s} "
                f"{row['mdr_fmax']:9.4f} {row['dcs_fmax']:9.4f} "
                f"{row['ratio_mean']:6.2f} {row['ratio_min']:6.2f} "
                f"{row['ratio_max']:6.2f}"
            )
        return "\n".join(lines)

    @staticmethod
    def print_sta_table(rows: Sequence[Dict[str, object]]) -> str:
        lines = [
            "Extension: routed critical-path delay relative to MDR "
            "(1.00 = no penalty)",
            f"{'suite':8s} {'variant':20s} "
            f"{'mean':>6s} {'min':>6s} {'max':>6s}",
        ]
        for row in rows:
            lines.append(
                f"{row['suite']:8s} {row['variant']:20s} "
                f"{row['mean']:6.2f} {row['min']:6.2f} "
                f"{row['max']:6.2f}"
            )
        return "\n".join(lines)

    # -- one-call driver ------------------------------------------------------

    def run_all(self, verbose: bool = False) -> Dict[str, object]:
        """Run every experiment; returns all rows keyed by artefact."""
        outcomes = self.run_suites(SUITES, verbose=verbose)
        return {
            "table1": self.table1(),
            "figure5": self.figure5(outcomes),
            "figure6": self.figure6(outcomes["RegExp"]),
            "figure7": self.figure7(outcomes),
            "area": self.area_table(),
            "sta": self.sta_table(outcomes),
            "fmax": self.fmax_table(outcomes),
        }


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)
