"""Benchmark of the execution subsystem — emits ``BENCH_exec.json``.

The default workload is the harness's FIR suite shape: *n*
independent two-mode FIR pairs (the paper pairs low-pass *i* with
high-pass *i*), each an independent synth→place→route run;
``--workload`` swaps in any registered suite of :mod:`repro.gen`
(tiny scale).  Three measurements:

* ``serial_cold``   — the seed execution model: one process, no cache;
* ``parallel_cold`` — the same workload fanned over *workers*
  processes into a fresh stage cache;
* ``parallel_warm`` — an identical rerun against the now-populated
  cache (every pair resolves to one ``multimode`` cache hit);
* ``timing_driven_cold`` — the workload rerun with
  ``timing_driven=True``, recording the timing-driven trajectory:
  wall-clock plus the mean routed MDR critical delay against the
  wirelength-driven baseline's.

Results are bit-for-bit identical across all three paths (the bench
asserts this on the reconfiguration-cost totals), so the speedups are
pure execution-subsystem wins.  The JSON report records wall-clocks,
per-stage breakdowns, and the two headline ratios so future PRs can
track the perf trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import textwrap
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.fir import generate_fir_circuit
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.exec.cache import StageCache
from repro.exec.progress import ProgressLog
from repro.exec.scheduler import Scheduler, Task
from repro.bench.harness import _pair_worker
from repro.core.flow import unpack_result

SCHEMA_VERSION = 2


def workload_kinds() -> List[str]:
    """Valid ``--workload`` values: the legacy FIR shape plus every
    registered suite of the workload registry."""
    from repro.gen import registered_suites

    return ["fir_pairs"] + list(registered_suites())


def _registry_workload(
    kind: str, n_pairs: int, k: int = 4
) -> List[Tuple[str, tuple]]:
    """*n_pairs* mode pairs of a registered suite at tiny scale."""
    from repro.gen import suite_pairs

    return [
        (name, tuple(modes))
        for name, modes in suite_pairs(
            kind, k=k, scale="tiny", limit=n_pairs
        )
    ]


def _fir_pair_workload(
    n_pairs: int, k: int = 4, n_taps: int = 4, n_nonzero: int = 3
) -> List[Tuple[str, tuple]]:
    """*n_pairs* independent low-pass/high-pass FIR pairs.

    The default 4-tap filters keep one full bench run (serial +
    parallel + warm) in the minutes range; ``--taps 8`` reproduces the
    harness's full-size filters.
    """
    pairs = []
    for i in range(n_pairs):
        lowpass = generate_fir_circuit(
            "lowpass", seed=i, n_taps=n_taps, n_nonzero=n_nonzero,
            k=k, name=f"fir_lp{i}",
        )
        highpass = generate_fir_circuit(
            "highpass", seed=i, n_taps=n_taps, n_nonzero=n_nonzero,
            k=k, name=f"fir_hp{i}",
        )
        pairs.append((f"fir_{i}", (lowpass, highpass)))
    return pairs


def _run_workload(
    pairs: List[Tuple[str, tuple]],
    options: FlowOptions,
    workers: int,
    cache: StageCache,
) -> Tuple[float, ProgressLog, List[float], list]:
    """(wall seconds, merged progress, cost signature, results)."""
    scheduler = Scheduler(workers)
    progress = ProgressLog()
    cache_root = str(cache.root) if cache.enabled else None
    tasks = [
        Task(_pair_worker, (name, modes, options, cache_root,
                            cache.enabled), name=name)
        for name, modes in pairs
    ]
    start = time.perf_counter()
    outcomes = scheduler.run(tasks)
    elapsed = time.perf_counter() - start
    signature = []
    results = []
    for packed, records in outcomes:
        progress.extend(records)
        result = unpack_result(packed)
        results.append(result)
        signature.append(result.mdr.cost.total)
        for dcs in result.dcs.values():
            signature.append(dcs.cost.total)
    return elapsed, progress, signature, results


def _mean_critical_delay(results: list) -> float:
    """Mean routed MDR critical delay over all pairs and modes."""
    delays = [
        d
        for result in results
        for d in result.mdr.per_mode_critical_delay()
    ]
    return sum(delays) / len(delays) if delays else 0.0


def _measure_baseline_src(
    src_path: str,
    n_pairs: int,
    n_taps: int,
    inner_num: float,
    seed: int,
) -> Optional[Dict[str, object]]:
    """Serially run the same workload against another source tree.

    Used to quantify the execution subsystem against the *seed* code
    in a subprocess (`PYTHONPATH` pointed at the old tree).  The old
    tree regenerates its own circuits, so this is a wall-clock
    baseline, not a bit-level comparison.
    """
    script = textwrap.dedent(
        f"""
        import json, time
        from repro.bench.fir import generate_fir_circuit
        from repro.core.flow import FlowOptions, implement_multi_mode
        pairs = []
        for i in range({n_pairs}):
            lp = generate_fir_circuit('lowpass', seed=i,
                n_taps={n_taps}, n_nonzero=3, k=4, name=f'fir_lp{{i}}')
            hp = generate_fir_circuit('highpass', seed=i,
                n_taps={n_taps}, n_nonzero=3, k=4, name=f'fir_hp{{i}}')
            pairs.append((f'fir_{{i}}', [lp, hp]))
        start = time.perf_counter()
        for name, modes in pairs:
            implement_multi_mode(
                name, modes,
                FlowOptions(seed={seed}, inner_num={inner_num}),
            )
        print(json.dumps(
            {{"seconds": round(time.perf_counter() - start, 3)}}
        ))
        """
    )
    env = dict(os.environ, PYTHONPATH=src_path)
    try:
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=3600,
        )
        if proc.returncode != 0:
            return None
        data = json.loads(proc.stdout.strip().splitlines()[-1])
    except (subprocess.TimeoutExpired, ValueError, OSError):
        return None
    return {"src": src_path, "seconds": data["seconds"]}


def run_exec_bench(
    workers: int = 4,
    n_pairs: int = 4,
    inner_num: float = 0.1,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    verbose: bool = False,
    pairs: Optional[List[Tuple[str, tuple]]] = None,
    n_taps: int = 4,
    baseline_src: Optional[str] = None,
    workload: str = "fir_pairs",
) -> Dict[str, object]:
    """Run the three measurements; returns the report dict.

    *workload* selects the circuit source: ``"fir_pairs"`` (the
    historical shape) or any registered suite of :mod:`repro.gen`
    (materialised at tiny scale).  *pairs* overrides either (tests
    inject tiny circuits so the bench path is exercised in seconds).
    """
    options = FlowOptions(seed=seed, inner_num=inner_num)
    injected = pairs is not None
    if pairs is None:
        if workload == "fir_pairs":
            pairs = _fir_pair_workload(n_pairs, n_taps=n_taps)
        elif workload in workload_kinds():
            pairs = _registry_workload(workload, n_pairs)
        else:
            raise ValueError(
                f"unknown workload kind {workload!r}; registered: "
                f"{', '.join(workload_kinds())}"
            )
    n_pairs = len(pairs)
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    else:
        # The cold phase clears its cache; confine that to a bench-own
        # subdirectory so pointing --cache-dir at the shared stage
        # cache can never wipe accumulated results.
        cache_dir = os.path.join(cache_dir, "exec-bench")

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    log(f"workload: {n_pairs} two-mode FIR pairs "
        f"({sum(c.n_luts() for _n, m in pairs for c in m)} LUTs)")

    log("serial cold (seed execution model) ...")
    disabled = StageCache(enabled=False)
    t_serial, p_serial, sig_serial, _res = _run_workload(
        pairs, options, workers=1, cache=disabled
    )
    log(f"  {t_serial:.1f}s")

    log(f"parallel cold ({workers} workers, fresh cache) ...")
    cold_cache = StageCache(cache_dir)
    cold_cache.clear()
    t_cold, p_cold, sig_cold, res_cold = _run_workload(
        pairs, options, workers=workers, cache=cold_cache
    )
    log(f"  {t_cold:.1f}s")

    log("parallel warm (same cache) ...")
    warm_cache = StageCache(cache_dir)
    t_warm, p_warm, sig_warm, _res = _run_workload(
        pairs, options, workers=workers, cache=warm_cache
    )
    log(f"  {t_warm:.1f}s")

    if not (sig_serial == sig_cold == sig_warm):
        raise AssertionError(
            "bench paths disagree: serial/cold/warm results must be "
            "bit-identical"
        )

    # Timing-driven trajectory: the same workload with the
    # criticality model threaded through placement and routing; its
    # stage keys differ from the wirelength-driven run's, so both
    # coexist in the same cache directory.
    log(f"timing-driven cold ({workers} workers, same cache dir) ...")
    timed_options = FlowOptions(
        seed=seed, inner_num=inner_num, timing_driven=True
    )
    t_timed, p_timed, _sig, res_timed = _run_workload(
        pairs, timed_options, workers=workers,
        cache=StageCache(cache_dir),
    )
    log(f"  {t_timed:.1f}s")
    baseline_delay = _mean_critical_delay(res_cold)
    timed_delay = _mean_critical_delay(res_timed)

    baseline = None
    if baseline_src and workload != "fir_pairs":
        log(
            "skipping --baseline-src: the seed tree only knows the "
            "fir_pairs workload"
        )
        baseline_src = None
    if baseline_src:
        log(f"seed-baseline serial run against {baseline_src} ...")
        baseline = _measure_baseline_src(
            baseline_src, n_pairs, n_taps, inner_num, seed
        )
        if baseline:
            log(f"  {baseline['seconds']:.1f}s")

    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "kind": "injected" if injected else workload,
            "n_pairs": n_pairs,
            "n_mode_circuits": 2 * n_pairs,
            "n_luts": sum(
                c.n_luts() for _n, m in pairs for c in m
            ),
            "inner_num": inner_num,
            "seed": seed,
        },
        "workers": workers,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "serial_cold": {
            "seconds": round(t_serial, 3),
            "stages": p_serial.breakdown(),
        },
        "parallel_cold": {
            "seconds": round(t_cold, 3),
            "stages": p_cold.breakdown(),
        },
        "parallel_warm": {
            "seconds": round(t_warm, 3),
            "stages": p_warm.breakdown(),
        },
        "timing_driven_cold": {
            "seconds": round(t_timed, 3),
            "stages": p_timed.breakdown(),
            "mdr_mean_critical_delay": round(timed_delay, 4),
            "wirelength_mdr_mean_critical_delay": round(
                baseline_delay, 4
            ),
            "critical_delay_ratio_vs_wirelength": round(
                timed_delay / baseline_delay, 4
            ) if baseline_delay > 0 else None,
        },
        "speedup_cold_vs_serial": round(t_serial / t_cold, 3),
        "warm_fraction_of_cold": round(t_warm / t_cold, 4),
        "results_identical": True,
    }
    if baseline:
        report["seed_serial_baseline"] = {
            "seconds": baseline["seconds"],
            "src": baseline["src"],
            "note": (
                "same workload executed serially by the seed "
                "implementation (pre repro.exec, pre hot-path "
                "optimisation)"
            ),
        }
        report["speedup_cold_vs_seed_serial"] = round(
            baseline["seconds"] / t_cold, 3
        )
    return report


def write_bench_json(report: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
