"""Benchmark of the execution subsystem — emits ``BENCH_exec.json``.

The default workload is the harness's FIR suite shape: *n*
independent two-mode FIR pairs (the paper pairs low-pass *i* with
high-pass *i*), each an independent synth→place→route run;
``--workload`` swaps in any registered suite of :mod:`repro.gen`
(tiny scale).  Three measurements:

* ``serial_cold``   — the seed execution model: one process, no cache;
* ``parallel_cold`` — the same workload fanned over *workers*
  processes into a fresh stage cache;
* ``parallel_warm`` — an identical rerun against the now-populated
  cache (every pair resolves to one ``multimode`` cache hit);
* ``timing_driven_cold`` — the workload rerun with
  ``timing_driven=True``, recording the timing-driven trajectory:
  wall-clock plus the mean routed MDR critical delay against the
  wirelength-driven baseline's.
* ``router_vectorized`` — an A/B of the PathFinder negotiation cores
  on the routing phase alone: one pair per generator family at
  router-bench scale is placed and merged once, then its MDR routes
  (untimed and timing-driven) and its TRoute run are timed under the
  scalar reference (``REPRO_SCALAR_ROUTER=1``) and under the
  vectorized default, interleaved best-of-N.  The bench asserts both
  cores return bit-identical edge lists before reporting the
  speedup.
* ``router_batched`` — the same routing workload under the
  batched-wavefront core (``batched=True``: bucket-queue searches +
  parallel-net negotiation), timed in the same interleaved rounds.
  The batched core is QoR-gated, not bit-identical to the others, so
  this phase asserts determinism (rounds bit-identical to each
  other), reports the wire-length ratio against the vectorized
  result, and dumps the search-kernel counters (pops, bucket drains,
  frontier sizes, conflict replays).
* ``router_vectorized.lookahead`` — the same workload with the
  precomputed lookahead heuristic (:mod:`repro.route.lookahead`),
  alone and paired with partial rip-up, under both the scalar and
  vectorized cores.  The bench asserts scalar+lookahead ==
  vectorized+lookahead bit-identity and reports heap-pop counts per
  leg, so the search-space shrinkage is tracked alongside the
  wall-clocks.

Results are bit-for-bit identical across all paths (the bench
asserts this on the reconfiguration-cost totals and the routed edge
lists), so the speedups are pure execution-subsystem wins.  The JSON
report records wall-clocks, per-stage breakdowns, and the headline
ratios so future PRs can track the perf trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import textwrap
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.fir import generate_fir_circuit
from repro.core.flow import FlowOptions, implement_multi_mode
from repro.exec.cache import StageCache
from repro.exec.progress import ProgressLog
from repro.exec.scheduler import Scheduler, Task
from repro.bench.harness import _pair_worker
from repro.core.flow import unpack_result

#: v3: adds the ``router_vectorized`` phase (scalar vs vectorized
#: PathFinder core A/B on the routing phase).
#: v4: adds the ``router_batched`` phase (batched-wavefront core on
#: the same routing workload, with search-kernel counters).
#: v5: per-core heap-pop counters on every router leg, plus the
#: ``lookahead`` sub-phase (precomputed-lookahead heuristic and
#: partial rip-up, scalar/vectorized bit-identity asserted).
SCHEMA_VERSION = 5

#: Generator families of the router A/B workload.
ROUTER_BENCH_FAMILIES = ("datapath", "fsm", "xbar", "klut")


def workload_kinds() -> List[str]:
    """Valid ``--workload`` values: the legacy FIR shape plus every
    registered suite of the workload registry."""
    from repro.gen import registered_suites

    return ["fir_pairs"] + list(registered_suites())


def _registry_workload(
    kind: str, n_pairs: int, k: int = 4
) -> List[Tuple[str, tuple]]:
    """*n_pairs* mode pairs of a registered suite at tiny scale."""
    from repro.gen import suite_pairs

    return [
        (name, tuple(modes))
        for name, modes in suite_pairs(
            kind, k=k, scale="tiny", limit=n_pairs
        )
    ]


def _fir_pair_workload(
    n_pairs: int, k: int = 4, n_taps: int = 4, n_nonzero: int = 3
) -> List[Tuple[str, tuple]]:
    """*n_pairs* independent low-pass/high-pass FIR pairs.

    The default 4-tap filters keep one full bench run (serial +
    parallel + warm) in the minutes range; ``--taps 8`` reproduces the
    harness's full-size filters.
    """
    pairs = []
    for i in range(n_pairs):
        lowpass = generate_fir_circuit(
            "lowpass", seed=i, n_taps=n_taps, n_nonzero=n_nonzero,
            k=k, name=f"fir_lp{i}",
        )
        highpass = generate_fir_circuit(
            "highpass", seed=i, n_taps=n_taps, n_nonzero=n_nonzero,
            k=k, name=f"fir_hp{i}",
        )
        pairs.append((f"fir_{i}", (lowpass, highpass)))
    return pairs


def _run_workload(
    pairs: List[Tuple[str, tuple]],
    options: FlowOptions,
    workers: int,
    cache: StageCache,
) -> Tuple[float, ProgressLog, List[float], list]:
    """(wall seconds, merged progress, cost signature, results)."""
    scheduler = Scheduler(workers)
    progress = ProgressLog()
    cache_root = str(cache.root) if cache.enabled else None
    tasks = [
        Task(_pair_worker, (name, modes, options, cache_root,
                            cache.enabled), name=name)
        for name, modes in pairs
    ]
    start = time.perf_counter()
    outcomes = scheduler.run(tasks)
    elapsed = time.perf_counter() - start
    signature = []
    results = []
    for packed, records in outcomes:
        progress.extend(records)
        result = unpack_result(packed)
        results.append(result)
        signature.append(result.mdr.cost.total)
        for dcs in result.dcs.values():
            signature.append(dcs.cost.total)
    return elapsed, progress, signature, results


def _mean_critical_delay(results: list) -> float:
    """Mean routed MDR critical delay over all pairs and modes."""
    delays = [
        d
        for result in results
        for d in result.mdr.per_mode_critical_delay()
    ]
    return sum(delays) / len(delays) if delays else 0.0


def _measure_baseline_src(
    src_path: str,
    n_pairs: int,
    n_taps: int,
    inner_num: float,
    seed: int,
) -> Optional[Dict[str, object]]:
    """Serially run the same workload against another source tree.

    Used to quantify the execution subsystem against the *seed* code
    in a subprocess (`PYTHONPATH` pointed at the old tree).  The old
    tree regenerates its own circuits, so this is a wall-clock
    baseline, not a bit-level comparison.
    """
    script = textwrap.dedent(
        f"""
        import json, time
        from repro.bench.fir import generate_fir_circuit
        from repro.core.flow import FlowOptions, implement_multi_mode
        pairs = []
        for i in range({n_pairs}):
            lp = generate_fir_circuit('lowpass', seed=i,
                n_taps={n_taps}, n_nonzero=3, k=4, name=f'fir_lp{{i}}')
            hp = generate_fir_circuit('highpass', seed=i,
                n_taps={n_taps}, n_nonzero=3, k=4, name=f'fir_hp{{i}}')
            pairs.append((f'fir_{{i}}', [lp, hp]))
        start = time.perf_counter()
        for name, modes in pairs:
            implement_multi_mode(
                name, modes,
                FlowOptions(seed={seed}, inner_num={inner_num}),
            )
        print(json.dumps(
            {{"seconds": round(time.perf_counter() - start, 3)}}
        ))
        """
    )
    env = dict(os.environ, PYTHONPATH=src_path)
    try:
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=3600,
        )
        if proc.returncode != 0:
            return None
        data = json.loads(proc.stdout.strip().splitlines()[-1])
    except (subprocess.TimeoutExpired, ValueError, OSError):
        return None
    return {"src": src_path, "seconds": data["seconds"]}


def _router_bench_workload(scale: str, seed: int) -> List[Tuple]:
    """One placed-and-merged pair per generator family at *scale*.

    Everything that is not routing (synthesis, placement, merging)
    happens here, outside the timed section, so the A/B below times
    the PathFinder negotiation alone — the phase the vectorized core
    rewrites.
    """
    from repro.arch.architecture import size_for_circuits
    from repro.arch.rrg import build_rrg
    from repro.core.combined_placement import (
        merge_with_combined_placement,
    )
    from repro.core.merge import MergeStrategy
    from repro.gen.spec import build_circuit
    from repro.gen.suites import suite_pair_specs
    from repro.place.placer import place_circuit

    options = FlowOptions(seed=seed, inner_num=0.1)
    schedule = options.schedule()
    # The medium datapath pair saturates the 8-track channels the
    # smaller scales route comfortably in (the exact cores need 10,
    # the bucket-quantized batched core 12); widen rather than
    # shrink the workload so the A/B keeps its larger search space.
    channel_width = 12 if scale == "medium" else 8
    workload = []
    for family in ROUTER_BENCH_FAMILIES:
        pair_name, specs = suite_pair_specs(
            family, seed=seed, k=4, scale=scale, limit=1
        )[0]
        modes = [build_circuit(spec) for spec in specs]
        ios = set()
        for circuit in modes:
            ios.update(circuit.inputs)
            ios.update(circuit.outputs)
        arch = size_for_circuits(
            max(c.n_luts() for c in modes), len(ios), k=4,
            channel_width=channel_width, slack=1.2,
        )
        rrg = build_rrg(arch)
        placements = [
            place_circuit(
                c, arch, seed=seed + i, schedule=schedule
            )
            for i, c in enumerate(modes)
        ]
        tunable, _ = merge_with_combined_placement(
            pair_name, modes, arch,
            strategy=MergeStrategy.WIRE_LENGTH, seed=seed,
            schedule=schedule,
        )
        workload.append(
            (pair_name, modes, placements, rrg,
             tunable.site_connections())
        )
    return workload


def run_router_bench(
    scale: str = "quick",
    seed: int = 0,
    rounds: int = 2,
) -> Dict[str, object]:
    """A/B/C the scalar, vectorized and batched PathFinder cores.

    Routes each pair's modes conventionally (untimed and
    timing-driven) plus its merged tunable circuit (TRoute with the
    flow's affinity/sharing defaults), once per core per round,
    interleaved; reports best-of-*rounds* wall-clocks.  Raises
    ``AssertionError`` if the scalar and vectorized cores' routes are
    not bit-identical, or if the batched core (QoR-equivalent by
    design, not bit-identical) is not bit-identical to *itself*
    across rounds.  The batched leg also collects the
    :class:`~repro.route.searchkernel.RouterStats` counters (bucket
    drains, frontier sizes, conflict replays) of its best round.

    Four additional legs run the lookahead heuristic: scalar and
    vectorized with lookahead alone, and both again with partial
    rip-up added.  Each lookahead pair must be bit-identical across
    cores (the heuristic changes results *versus Manhattan*, never
    between the exact cores), and every leg reports its heap-pop
    count so the ``pops`` block quantifies the search-space
    shrinkage directly.
    """
    from repro.route.lookahead import build_lookahead
    from repro.route.searchkernel import RouterStats
    from repro.route.troute import (
        route_lut_circuit,
        route_tunable_circuit,
    )

    workload = _router_bench_workload(scale, seed)
    timing = FlowOptions(
        seed=seed, inner_num=0.1, timing_driven=True
    ).criticality()
    defaults = FlowOptions()

    # The lookahead tables are a per-architecture precomputation the
    # flow memoizes in the stage cache; build them outside the timed
    # sections (with the delay model: the timed legs need the delay
    # tables) but report the one-shot build cost alongside.
    build_start = time.perf_counter()
    lk_tables = [
        build_lookahead(rrg, timing.model)
        for _n, _m, _p, rrg, _c in workload
    ]
    lk_build_seconds = time.perf_counter() - build_start

    def run(
        scalar: bool = False,
        batched: bool = False,
        lookahead: bool = False,
        partial: bool = False,
    ):
        old = os.environ.pop("REPRO_SCALAR_ROUTER", None)
        if scalar:
            os.environ["REPRO_SCALAR_ROUTER"] = "1"
        stats = RouterStats()
        kwargs: Dict[str, object] = {"stats": stats}
        if batched:
            kwargs["batched"] = True
        if partial:
            kwargs["partial_ripup"] = True
        try:
            start = time.perf_counter()
            signature = []
            wirelength = 0
            for index, (
                _name, modes, placements, rrg, conns
            ) in enumerate(workload):
                if lookahead:
                    kwargs["lookahead"] = lk_tables[index]
                for circuit, placement in zip(modes, placements):
                    result = route_lut_circuit(
                        circuit, placement, rrg, **kwargs
                    )
                    signature.append(sorted(
                        (cid, tuple(r.edges))
                        for cid, r in result.routes.items()
                    ))
                    wirelength += result.total_wirelength(0)
                for circuit, placement in zip(modes, placements):
                    result = route_lut_circuit(
                        circuit, placement, rrg, timing=timing,
                        **kwargs
                    )
                    signature.append(sorted(
                        (cid, tuple(r.edges))
                        for cid, r in result.routes.items()
                    ))
                    wirelength += result.total_wirelength(0)
                result = route_tunable_circuit(
                    rrg, conns, len(modes),
                    net_affinity=defaults.net_affinity,
                    bit_affinity=defaults.bit_affinity,
                    sharing_passes=defaults.sharing_passes,
                    **kwargs,
                )
                signature.append(sorted(
                    (cid, tuple(r.edges))
                    for cid, r in result.routes.items()
                ))
                wirelength += sum(
                    result.total_wirelength(m)
                    for m in range(len(modes))
                )
            seconds = time.perf_counter() - start
            return seconds, signature, wirelength, stats
        finally:
            os.environ.pop("REPRO_SCALAR_ROUTER", None)
            if old is not None:
                os.environ["REPRO_SCALAR_ROUTER"] = old

    #: leg label -> run() kwargs; bit-identity groups asserted below.
    legs = {
        "scalar": dict(scalar=True),
        "vectorized": dict(),
        "batched": dict(batched=True),
        "lk_scalar": dict(scalar=True, lookahead=True),
        "lk_vectorized": dict(lookahead=True),
        "lkpr_scalar": dict(scalar=True, lookahead=True, partial=True),
        "lkpr_vectorized": dict(lookahead=True, partial=True),
    }
    best = {name: float("inf") for name in legs}
    sigs: Dict[str, object] = {}
    wls: Dict[str, int] = {}
    pops: Dict[str, int] = {}
    batched_stats = None
    for _round in range(max(1, rounds)):
        for name, leg_kwargs in legs.items():
            seconds, sig, wl, stats = run(**leg_kwargs)
            if name == "batched" and name in sigs and sig != sigs[name]:
                raise AssertionError(
                    "batched router is nondeterministic: rounds must "
                    "be bit-identical"
                )
            sigs[name] = sig
            wls[name] = wl
            pops[name] = stats.pops
            if seconds < best[name]:
                best[name] = seconds
                if name == "batched":
                    batched_stats = stats
    if sigs["scalar"] != sigs["vectorized"]:
        raise AssertionError(
            "scalar and vectorized routers disagree: the cores must "
            "be bit-identical"
        )
    if sigs["lk_scalar"] != sigs["lk_vectorized"]:
        raise AssertionError(
            "scalar and vectorized routers disagree under the "
            "lookahead heuristic: the cores must be bit-identical"
        )
    if sigs["lkpr_scalar"] != sigs["lkpr_vectorized"]:
        raise AssertionError(
            "scalar and vectorized routers disagree under lookahead "
            "+ partial rip-up: the cores must be bit-identical"
        )
    n_connections = sum(
        len(conns) for _n, _m, _p, _r, conns in workload
    )
    scalar_best, vector_best = best["scalar"], best["vectorized"]
    batched_best = best["batched"]
    vector_wl, batched_wl = wls["vectorized"], wls["batched"]
    return {
        "workload": {
            "suites": list(ROUTER_BENCH_FAMILIES),
            "scale": scale,
            "n_pairs": len(workload),
            "n_tunable_connections": n_connections,
            "seed": seed,
        },
        "rounds": max(1, rounds),
        "scalar_seconds": round(scalar_best, 3),
        "vectorized_seconds": round(vector_best, 3),
        "speedup": round(scalar_best / vector_best, 3),
        "results_identical": True,
        # Heap pops per leg (deterministic; the batched legs count
        # bucket settles instead of binary-heap pops).
        "pops": dict(sorted(pops.items())),
        "batched": {
            "seconds": round(batched_best, 3),
            "speedup_vs_scalar": round(
                scalar_best / batched_best, 3
            ),
            "speedup_vs_vectorized": round(
                vector_best / batched_best, 3
            ),
            "deterministic_across_rounds": True,
            "total_wirelength": batched_wl,
            "wirelength_ratio_vs_vectorized": round(
                batched_wl / vector_wl, 4
            ) if vector_wl else None,
            "stats": batched_stats.as_dict(),
        },
        "lookahead": {
            "table_build_seconds": round(lk_build_seconds, 3),
            "scalar_seconds": round(best["lk_scalar"], 3),
            "vectorized_seconds": round(best["lk_vectorized"], 3),
            "speedup_vs_manhattan_vectorized": round(
                vector_best / best["lk_vectorized"], 3
            ),
            "results_identical": True,
            "total_wirelength": wls["lk_vectorized"],
            "wirelength_ratio_vs_manhattan": round(
                wls["lk_vectorized"] / vector_wl, 4
            ) if vector_wl else None,
            "pop_reduction_vs_manhattan": round(
                pops["vectorized"] / pops["lk_vectorized"], 3
            ) if pops["lk_vectorized"] else None,
            "partial_ripup": {
                "seconds": round(best["lkpr_vectorized"], 3),
                "results_identical": True,
                "total_wirelength": wls["lkpr_vectorized"],
                "wirelength_ratio_vs_manhattan": round(
                    wls["lkpr_vectorized"] / vector_wl, 4
                ) if vector_wl else None,
                "pops": pops["lkpr_vectorized"],
            },
        },
    }


def run_exec_bench(
    workers: int = 4,
    n_pairs: int = 4,
    inner_num: float = 0.1,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    verbose: bool = False,
    pairs: Optional[List[Tuple[str, tuple]]] = None,
    n_taps: int = 4,
    baseline_src: Optional[str] = None,
    workload: str = "fir_pairs",
    router_scale: str = "quick",
) -> Dict[str, object]:
    """Run the measurements; returns the report dict.

    *workload* selects the circuit source: ``"fir_pairs"`` (the
    historical shape) or any registered suite of :mod:`repro.gen`
    (materialised at tiny scale).  *pairs* overrides either (tests
    inject tiny circuits so the bench path is exercised in seconds).
    *router_scale* sizes the ``router_vectorized`` A/B workload
    (tests drop it to ``"tiny"``).
    """
    options = FlowOptions(seed=seed, inner_num=inner_num)
    injected = pairs is not None
    if pairs is None:
        if workload == "fir_pairs":
            pairs = _fir_pair_workload(n_pairs, n_taps=n_taps)
        elif workload in workload_kinds():
            pairs = _registry_workload(workload, n_pairs)
        else:
            raise ValueError(
                f"unknown workload kind {workload!r}; registered: "
                f"{', '.join(workload_kinds())}"
            )
    n_pairs = len(pairs)
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    else:
        # The cold phase clears its cache; confine that to a bench-own
        # subdirectory so pointing --cache-dir at the shared stage
        # cache can never wipe accumulated results.
        cache_dir = os.path.join(cache_dir, "exec-bench")

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    log(f"workload: {n_pairs} two-mode FIR pairs "
        f"({sum(c.n_luts() for _n, m in pairs for c in m)} LUTs)")

    log("serial cold (seed execution model) ...")
    disabled = StageCache(enabled=False)
    t_serial, p_serial, sig_serial, _res = _run_workload(
        pairs, options, workers=1, cache=disabled
    )
    log(f"  {t_serial:.1f}s")

    log(f"parallel cold ({workers} workers, fresh cache) ...")
    cold_cache = StageCache(cache_dir)
    cold_cache.clear()
    t_cold, p_cold, sig_cold, res_cold = _run_workload(
        pairs, options, workers=workers, cache=cold_cache
    )
    log(f"  {t_cold:.1f}s")

    log("parallel warm (same cache) ...")
    warm_cache = StageCache(cache_dir)
    t_warm, p_warm, sig_warm, _res = _run_workload(
        pairs, options, workers=workers, cache=warm_cache
    )
    log(f"  {t_warm:.1f}s")

    if not (sig_serial == sig_cold == sig_warm):
        raise AssertionError(
            "bench paths disagree: serial/cold/warm results must be "
            "bit-identical"
        )

    # Timing-driven trajectory: the same workload with the
    # criticality model threaded through placement and routing; its
    # stage keys differ from the wirelength-driven run's, so both
    # coexist in the same cache directory.
    log(f"timing-driven cold ({workers} workers, same cache dir) ...")
    timed_options = FlowOptions(
        seed=seed, inner_num=inner_num, timing_driven=True
    )
    t_timed, p_timed, _sig, res_timed = _run_workload(
        pairs, timed_options, workers=workers,
        cache=StageCache(cache_dir),
    )
    log(f"  {t_timed:.1f}s")
    baseline_delay = _mean_critical_delay(res_cold)
    timed_delay = _mean_critical_delay(res_timed)

    log("router A/B/C (scalar vs vectorized vs batched vs "
        f"lookahead, {router_scale} scale) ...")
    router_phase = run_router_bench(scale=router_scale, seed=seed)
    batched_phase = router_phase.pop("batched")
    lookahead_phase = router_phase["lookahead"]
    log(
        f"  scalar {router_phase['scalar_seconds']:.1f}s, "
        f"vectorized {router_phase['vectorized_seconds']:.1f}s "
        f"({router_phase['speedup']:.2f}x), "
        f"batched {batched_phase['seconds']:.1f}s "
        f"({batched_phase['speedup_vs_scalar']:.2f}x vs scalar), "
        f"lookahead {lookahead_phase['vectorized_seconds']:.1f}s "
        f"({lookahead_phase['pop_reduction_vs_manhattan']:.2f}x "
        "fewer pops)"
    )

    baseline = None
    if baseline_src and workload != "fir_pairs":
        log(
            "skipping --baseline-src: the seed tree only knows the "
            "fir_pairs workload"
        )
        baseline_src = None
    if baseline_src:
        log(f"seed-baseline serial run against {baseline_src} ...")
        baseline = _measure_baseline_src(
            baseline_src, n_pairs, n_taps, inner_num, seed
        )
        if baseline:
            log(f"  {baseline['seconds']:.1f}s")

    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "kind": "injected" if injected else workload,
            "n_pairs": n_pairs,
            "n_mode_circuits": 2 * n_pairs,
            "n_luts": sum(
                c.n_luts() for _n, m in pairs for c in m
            ),
            "inner_num": inner_num,
            "seed": seed,
        },
        "workers": workers,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "serial_cold": {
            "seconds": round(t_serial, 3),
            "stages": p_serial.breakdown(),
        },
        "parallel_cold": {
            "seconds": round(t_cold, 3),
            "stages": p_cold.breakdown(),
        },
        "parallel_warm": {
            "seconds": round(t_warm, 3),
            "stages": p_warm.breakdown(),
        },
        "timing_driven_cold": {
            "seconds": round(t_timed, 3),
            "stages": p_timed.breakdown(),
            "mdr_mean_critical_delay": round(timed_delay, 4),
            "wirelength_mdr_mean_critical_delay": round(
                baseline_delay, 4
            ),
            "critical_delay_ratio_vs_wirelength": round(
                timed_delay / baseline_delay, 4
            ) if baseline_delay > 0 else None,
        },
        "router_vectorized": router_phase,
        "router_batched": batched_phase,
        "speedup_cold_vs_serial": round(t_serial / t_cold, 3),
        "warm_fraction_of_cold": round(t_warm / t_cold, 4),
        "results_identical": True,
    }
    if baseline:
        report["seed_serial_baseline"] = {
            "seconds": baseline["seconds"],
            "src": baseline["src"],
            "note": (
                "same workload executed serially by the seed "
                "implementation (pre repro.exec, pre hot-path "
                "optimisation)"
            ),
        }
        report["speedup_cold_vs_seed_serial"] = round(
            baseline["seconds"] / t_cold, 3
        )
    return report


def write_bench_json(report: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
