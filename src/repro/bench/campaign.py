"""Declarative flow campaigns over the suite registry.

A campaign is a sweep ``suites x variants x seeds``: every multi-mode
pair of every selected suite (:mod:`repro.gen.suites`) is implemented
once per :class:`CampaignVariant` (a ``FlowOptions`` configuration —
timing-driven on/off, criticality exponents, merge strategies) and per
seed, fanned out through the :mod:`repro.exec` scheduler and stage
cache.  Three artefacts come out:

* a **JSONL results database** — one record per run, deterministic
  and bit-identical across worker counts and warm/cold caches (no
  wall-clocks inside), so diffs between two JSONL files are pure QoR
  diffs;
* a **summary JSON** (``BENCH_campaign.json``, shaped like
  ``BENCH_exec.json``) — aggregate QoR per suite/variant group plus
  the non-deterministic envelope: wall-clock, per-stage breakdown,
  cache hits, platform;
* optionally a **QoR baseline** — the deterministic aggregates of a
  reference run.  :func:`compare_to_baseline` checks a fresh summary
  against it with per-metric tolerances; CI's ``qor-gate`` job fails
  the PR on wirelength/Fmax/speedup/runtime regressions, and
  ``repro campaign --write-baseline`` (see
  ``scripts/rebaseline-qor.sh``) re-baselines intentionally.

Whole runs are memoized under the ``campaign`` stage key
(:func:`campaign_stage_inputs` — the mode specs, the full
``FlowOptions`` and the strategies), so a warm rerun replays records
without touching the flow; on a miss, the per-stage caches inside
``implement_multi_mode`` still apply.

The JSONL file doubles as a **checkpoint**: when ``run_campaign`` is
given a ``checkpoint`` path it appends each record atomically as its
run completes (tmp-file + ``os.replace``, the :class:`StageCache`
idiom — a kill leaves complete lines only), and ``resume=True`` scans
the file on start, verifies each record's ``key`` field against the
current grid's :func:`record_key` fingerprints (code digest included,
so records from an edited tree are recomputed, never trusted), skips
the completed runs and finishes the rest.  An interrupted-and-resumed
sweep produces a JSONL byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.flow import FlowOptions, implement_multi_mode
from repro.core.merge import MergeStrategy
from repro.exec.cache import (
    StageCache,
    atomic_append_text,
    atomic_write_text,
)
from repro.exec.fingerprint import code_fingerprint, fingerprint
from repro.exec.progress import ProgressLog, StageRecord, timed_call
from repro.exec.jobs import (
    JobGraph,
    Task,
    executor_for,
    resolve_workers,
)
from repro.gen.spec import WorkloadSpec, build_circuit
from repro.gen.suites import canonical_suite_name, suite_pair_specs
from repro.netlist.lutcircuit import LutCircuit

#: Version of the per-run record payload; participates in the
#: ``campaign`` stage key so cached records never outlive their schema.
#: v2: the options block records the channel-sizing policy.
#: v3: records carry their grid-slot fingerprint (``key``) for
#: checkpoint/resume.
#: v4: the options block records the batched-core flags.
#: v5: the options block records the router-lookahead and
#: partial-rip-up flags.
RECORD_SCHEMA_VERSION = 5

#: Version of the summary / baseline envelope.
SUMMARY_SCHEMA_VERSION = 1

#: Gate tolerances: fractional slack on the deterministic QoR
#: aggregates, and a multiplicative bound on wall-clock (generous —
#: CI runners are noisy; the deterministic metrics carry the gate).
DEFAULT_TOLERANCES = {
    "wirelength": 0.05,
    "fmax": 0.05,
    "speedup": 0.10,
    "runtime_factor": 5.0,
}


@dataclass(frozen=True)
class CampaignVariant:
    """One ``FlowOptions`` configuration swept by a campaign."""

    label: str
    timing_driven: bool = False
    criticality_exponent: float = 1.0
    timing_tradeoff: float = 0.5
    strategies: Tuple[str, ...] = ("edge_matching", "wire_length")
    #: Channel-sizing policy: ``"estimate"`` (netlist statistics) or
    #: ``"search"`` (the paper's minimum-width binary search plus 20%
    #: slack — several trial routings per run, practical as a sweep
    #: axis since the vectorized router).
    sizing: str = "estimate"
    #: Route with the batched-wavefront PathFinder core (QoR-gated
    #: against its own trend series, not bit-identical to the
    #: default core).
    batched_router: bool = False
    #: Anneal placements with the batched-move engine.
    batched_placer: bool = False
    #: Route with the precomputed lookahead heuristic (QoR-gated
    #: against its own trend series: tighter lower bounds change
    #: tie-breaks against the Manhattan default).
    router_lookahead: bool = False
    #: Keep congestion-free routes between negotiation iterations
    #: and reroute only the congested remainder.
    partial_ripup: bool = False


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: suites x variants x seeds."""

    name: str
    description: str
    suites: Tuple[str, ...]
    scale: str = "default"
    seeds: Tuple[int, ...] = (0,)
    pairs_per_suite: Optional[int] = None
    inner_num: float = 0.1
    k: int = 4
    channel_width: Optional[int] = None
    variants: Tuple[CampaignVariant, ...] = (
        CampaignVariant("wirelength"),
    )

    def flow_options(self, variant: CampaignVariant,
                     seed: int) -> FlowOptions:
        return FlowOptions(
            seed=seed,
            k=self.k,
            inner_num=self.inner_num,
            channel_width=self.channel_width,
            sizing=variant.sizing,
            timing_driven=variant.timing_driven,
            criticality_exponent=variant.criticality_exponent,
            timing_tradeoff=variant.timing_tradeoff,
            batched_router=variant.batched_router,
            batched_placer=variant.batched_placer,
            router_lookahead=variant.router_lookahead,
            partial_ripup=variant.partial_ripup,
        )


_WIRELENGTH = CampaignVariant("wirelength")
_TIMING = CampaignVariant("timing", timing_driven=True)

#: Named campaigns (``repro campaign --preset``).
PRESETS: Dict[str, CampaignSpec] = {
    # The CI QoR gate: every generator family at tiny scale, both
    # flow modes.  Cold it runs in well under a CI minute budget;
    # warm (persisted stage cache) it replays from cached records.
    "ci-smoke": CampaignSpec(
        name="ci-smoke",
        description=(
            "tiny pairs of all four generator families, wirelength- "
            "and timing-driven (the CI qor-gate workload)"
        ),
        suites=("datapath", "fsm", "xbar", "klut"),
        scale="tiny",
        pairs_per_suite=2,
        inner_num=0.1,
        variants=(_WIRELENGTH, _TIMING),
    ),
    # The batched-core twin of ci-smoke: same pairs, routed with the
    # batched-wavefront PathFinder and placed with the batched-move
    # annealer.  The cores are QoR-equivalent, not bit-identical, so
    # nightly tracks this as its own trend series instead of diffing
    # it against the default cores' baseline.
    "ci-smoke-batched": CampaignSpec(
        name="ci-smoke-batched",
        description=(
            "ci-smoke pairs through the batched router and batched "
            "annealer (their own nightly trend series)"
        ),
        suites=("datapath", "fsm", "xbar", "klut"),
        scale="tiny",
        pairs_per_suite=2,
        inner_num=0.1,
        variants=(
            CampaignVariant(
                "wirelength-batched",
                batched_router=True, batched_placer=True,
            ),
            CampaignVariant(
                "timing-batched", timing_driven=True,
                batched_router=True, batched_placer=True,
            ),
        ),
    ),
    # The lookahead twin of ci-smoke: same pairs routed with the
    # precomputed lookahead heuristic plus partial rip-up.  The
    # tighter heuristic changes tie-breaks against the Manhattan
    # default, so nightly tracks this as its own trend series (the
    # scalar and vectorized cores stay bit-identical to each other
    # under it — asserted by tests/test_lookahead.py).
    "ci-smoke-lookahead": CampaignSpec(
        name="ci-smoke-lookahead",
        description=(
            "ci-smoke pairs with the router lookahead and partial "
            "rip-up enabled (their own nightly trend series)"
        ),
        suites=("datapath", "fsm", "xbar", "klut"),
        scale="tiny",
        pairs_per_suite=2,
        inner_num=0.1,
        variants=(
            CampaignVariant(
                "wirelength-lookahead",
                router_lookahead=True, partial_ripup=True,
            ),
            CampaignVariant(
                "timing-lookahead", timing_driven=True,
                router_lookahead=True, partial_ripup=True,
            ),
        ),
    ),
    # The paper's evaluation as one named campaign (see also
    # ``repro experiments``, which prints the tables instead).
    "paper": CampaignSpec(
        name="paper",
        description=(
            "the paper's three suites at full size, wirelength-driven "
            "(Figs. 5-7 source data as a JSONL database)"
        ),
        suites=("regexp", "fir", "mcnc"),
        scale="paper",
        inner_num=1.0,
    ),
    "classic-quick": CampaignSpec(
        name="classic-quick",
        description=(
            "the paper's three suites at quick scale, both flow modes"
        ),
        suites=("regexp", "fir", "mcnc"),
        scale="quick",
        inner_num=0.3,
        variants=(_WIRELENGTH, _TIMING),
    ),
    "gen-quick": CampaignSpec(
        name="gen-quick",
        description=(
            "all four generator families at quick scale, both flow "
            "modes"
        ),
        suites=("datapath", "fsm", "xbar", "klut"),
        scale="quick",
        inner_num=0.3,
        variants=(_WIRELENGTH, _TIMING),
    ),
    "exponent-sweep": CampaignSpec(
        name="exponent-sweep",
        description=(
            "criticality-exponent sweep (0.5/1/2) over datapath and "
            "klut pairs"
        ),
        suites=("datapath", "klut"),
        scale="tiny",
        inner_num=0.1,
        variants=(
            _WIRELENGTH,
            CampaignVariant(
                "timing-e0.5", timing_driven=True,
                criticality_exponent=0.5,
            ),
            CampaignVariant(
                "timing-e1", timing_driven=True,
                criticality_exponent=1.0,
            ),
            CampaignVariant(
                "timing-e2", timing_driven=True,
                criticality_exponent=2.0,
            ),
        ),
    ),
    # The sizing sweep the vectorized router makes practical: the
    # same tiny pairs implemented with the estimator and with the
    # paper's exact minimum-width search (several full trial routings
    # per run), so the JSONL database carries the width methodology
    # as a first-class axis.
    "sizing-search": CampaignSpec(
        name="sizing-search",
        description=(
            "channel sizing axis: estimate vs the paper's "
            "minimum-width search (tiny datapath/klut pairs)"
        ),
        suites=("datapath", "klut"),
        scale="tiny",
        pairs_per_suite=2,
        inner_num=0.1,
        variants=(
            CampaignVariant("estimate"),
            CampaignVariant("search", sizing="search"),
        ),
    ),
    "nightly": CampaignSpec(
        name="nightly",
        description=(
            "all seven suites at quick scale (first 3 pairs each), "
            "both flow modes, two seeds (the nightly QoR trajectory)"
        ),
        suites=(
            "regexp", "fir", "mcnc", "datapath", "fsm", "xbar", "klut"
        ),
        scale="quick",
        seeds=(0, 1),
        pairs_per_suite=3,
        inner_num=0.3,
        variants=(_WIRELENGTH, _TIMING),
    ),
}


# ---------------------------------------------------------------------------
# Per-run execution (scheduler task) and record extraction
# ---------------------------------------------------------------------------


def campaign_stage_inputs(
    specs: Tuple[WorkloadSpec, ...],
    options: FlowOptions,
    strategies: Tuple[MergeStrategy, ...],
) -> Tuple:
    """Key inputs of the ``campaign`` stage (one run's QoR record).

    The full options object participates (like the ``multimode`` key),
    so every ``FlowOptions`` field perturbs this key — asserted by
    ``tests/test_option_fingerprints.py``.
    """
    return (RECORD_SCHEMA_VERSION, specs, options, strategies)


def record_key(
    spec: CampaignSpec,
    suite: str,
    pair_name: str,
    pair_specs: Tuple[WorkloadSpec, ...],
    variant: CampaignVariant,
    seed: int,
) -> str:
    """Resume fingerprint of one grid slot's record.

    Covers the record's identity (campaign/suite/pair/variant/seed —
    two variants with identical flow options but different labels
    yield distinct records, so labels participate) plus everything
    the payload can depend on: :func:`campaign_stage_inputs` and the
    package source digest.  A checkpointed record is reused on resume
    only when its key matches the value recomputed here — any code,
    option or workload change orphans it, exactly like a stage-cache
    entry.
    """
    options = spec.flow_options(variant, seed)
    strategies = tuple(
        MergeStrategy(v) for v in variant.strategies
    )
    return fingerprint(
        code_fingerprint(),
        "campaign-record",
        spec.name,
        suite,
        pair_name,
        variant.label,
        seed,
        campaign_stage_inputs(pair_specs, options, strategies),
    )


def _round(value: float) -> float:
    return round(float(value), 6)


def _extract_payload(
    specs: Sequence[WorkloadSpec],
    modes: Sequence,
    result,
    options: FlowOptions,
    strategies: Tuple[MergeStrategy, ...],
) -> Dict[str, object]:
    """The deterministic QoR body of one run record."""
    mdr = result.mdr
    payload: Dict[str, object] = {
        "modes": [
            {
                "name": circuit.name,
                "kind": spec.kind,
                "gen_seed": spec.seed,
                "n_luts": circuit.n_luts(),
            }
            for spec, circuit in zip(specs, modes)
        ],
        "arch": {
            "nx": result.arch.nx,
            "ny": result.arch.ny,
            "channel_width": result.arch.channel_width,
        },
        "options": {
            "k": options.k,
            "inner_num": _round(options.inner_num),
            "sizing": options.sizing,
            "timing_driven": options.timing_driven,
            "criticality_exponent": _round(
                options.criticality_exponent
            ),
            "timing_tradeoff": _round(options.timing_tradeoff),
            "batched_router": options.batched_router,
            "batched_placer": options.batched_placer,
            "router_lookahead": options.router_lookahead,
            "partial_ripup": options.partial_ripup,
        },
        "mdr": {
            "total_bits": mdr.cost.total,
            "routing_bits": mdr.cost.routing_bits,
            "diff_routing_bits": mdr.diff.routing_bits,
            "wirelength": mdr.per_mode_wirelength(),
            "fmax": [_round(f) for f in mdr.per_mode_fmax()],
        },
    }
    dcs_rows: Dict[str, object] = {}
    for strategy in strategies:
        dcs = result.dcs[strategy]
        dcs_rows[strategy.value] = {
            "total_bits": dcs.cost.total,
            "routing_bits": dcs.cost.routing_bits,
            "speedup": _round(result.speedup(strategy)),
            "wirelength": dcs.per_mode_wirelength(),
            "wirelength_ratio": _round(
                result.wirelength_ratio(strategy)
            ),
            "fmax": [_round(f) for f in dcs.per_mode_fmax()],
            "frequency_ratios": [
                _round(r)
                for r in result.frequency_ratios(strategy)
            ],
        }
    payload["dcs"] = dcs_rows
    return payload


def _campaign_run_worker(
    pair_name: str,
    specs: Tuple[WorkloadSpec, ...],
    options: FlowOptions,
    strategy_values: Tuple[str, ...],
    cache_root: Optional[str],
    cache_enabled: bool,
) -> Tuple[Dict[str, object], List[StageRecord]]:
    """Implement one (pair, variant, seed) run; returns its payload.

    Scheduler task (runs in workers); the QoR payload is memoized
    under the ``campaign`` stage key, so a warm rerun neither builds
    the circuits nor touches the flow.
    """
    cache = StageCache(cache_root, enabled=cache_enabled)
    progress = ProgressLog()
    strategies = tuple(MergeStrategy(v) for v in strategy_values)

    def build(spec: WorkloadSpec) -> LutCircuit:
        # Generated circuits are memoized under their spec, so a pair
        # swept across several variants/seeds synthesises once.
        circuit, _hit = cache.memoize(
            "gen", (spec,), lambda: build_circuit(spec)
        )
        return circuit

    def compute() -> Dict[str, object]:
        modes = [build(spec) for spec in specs]
        result = implement_multi_mode(
            pair_name, modes, options, strategies=strategies,
            workers=1, cache=cache, progress=progress,
        )
        return _extract_payload(
            specs, modes, result, options, strategies
        )

    (payload, hit), record = timed_call(
        "campaign", pair_name, cache.memoize,
        "campaign",
        campaign_stage_inputs(specs, options, strategies),
        compute,
    )
    records = list(progress.records)
    records.append(replace(record, cache_hit=hit))
    return payload, records


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    records: List[Dict[str, object]]
    summary: Dict[str, object]


def campaign_runs(
    spec: CampaignSpec,
) -> List[Tuple[str, str, Tuple[WorkloadSpec, ...], CampaignVariant,
                int]]:
    """The (suite, pair, specs, variant, seed) grid, in run order."""
    runs = []
    for raw in spec.suites:
        suite = canonical_suite_name(raw)
        for seed in spec.seeds:
            pairs = suite_pair_specs(
                suite, seed=seed, k=spec.k, scale=spec.scale,
                limit=spec.pairs_per_suite,
            )
            for pair_name, pair_specs in pairs:
                for variant in spec.variants:
                    runs.append(
                        (suite, pair_name, pair_specs, variant, seed)
                    )
    return runs


def record_line(record: Dict[str, object]) -> str:
    """One record as a JSONL line (sorted keys: byte-stable)."""
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        + "\n"
    )


def load_checkpoint(
    path: str, expected_keys: Sequence[str]
) -> Dict[str, Dict[str, object]]:
    """Completed records of a (possibly torn) checkpoint JSONL.

    Returns ``key -> record`` for every parseable line whose ``key``
    is one the current grid expects.  A truncated final line (the
    only torn shape an atomic-append writer can leave, but arbitrary
    manual truncation is tolerated too) fails ``json.loads`` and is
    simply dropped — its run reruns.  Records from another grid,
    schema or source tree fail the key check and are dropped the same
    way.
    """
    expected = set(expected_keys)
    resumed: Dict[str, Dict[str, object]] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except (OSError, UnicodeDecodeError):
        return resumed
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        if record.get("schema") != RECORD_SCHEMA_VERSION:
            continue
        key = record.get("key")
        if key in expected:
            resumed[key] = record
    return resumed


def run_campaign(
    spec: CampaignSpec,
    workers: Optional[int] = None,
    cache: Optional[StageCache] = None,
    progress: Optional[ProgressLog] = None,
    verbose: bool = False,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> CampaignResult:
    """Execute the whole sweep; returns records plus summary.

    With *checkpoint*, every completed record is appended to that
    JSONL atomically as the sweep progresses (the file is the
    artefact *and* the checkpoint), and *resume* first harvests
    records from an existing file — see :func:`load_checkpoint` —
    so only the unfinished runs execute.  Without *resume* an
    existing checkpoint is overwritten.
    """
    cache = cache or StageCache(enabled=False)
    progress = progress or ProgressLog()
    workers = resolve_workers(workers)
    runs = campaign_runs(spec)
    keys = [
        record_key(spec, suite, pair_name, pair_specs, variant, seed)
        for suite, pair_name, pair_specs, variant, seed in runs
    ]
    cache_root = str(cache.root) if cache.enabled else None

    records_by_key: Dict[str, Dict[str, object]] = {}
    if checkpoint and resume:
        records_by_key = load_checkpoint(checkpoint, keys)
    pending = [
        (index, run)
        for index, run in enumerate(runs)
        if keys[index] not in records_by_key
    ]
    if checkpoint:
        # Rewrite the known-good prefix (in grid order, torn lines
        # and stale records dropped) so the file is a valid
        # checkpoint from the first appended record on.
        atomic_write_text(
            checkpoint,
            "".join(
                record_line(records_by_key[key])
                for key in keys
                if key in records_by_key
            ),
        )

    if verbose:
        resumed_note = (
            f", {len(records_by_key)} resumed from {checkpoint}"
            if records_by_key else ""
        )
        print(
            f"campaign {spec.name}: {len(runs)} runs "
            f"({len(spec.suites)} suites x "
            f"{len(spec.variants)} variants x "
            f"{len(spec.seeds)} seeds, scale {spec.scale})"
            + resumed_note,
            flush=True,
        )

    start = time.perf_counter()
    tasks = [
        Task(
            _campaign_run_worker,
            (
                pair_name, pair_specs,
                spec.flow_options(variant, seed),
                variant.strategies, cache_root, cache.enabled,
            ),
            name=f"{suite}/{pair_name}/{variant.label}/s{seed}",
        )
        for _index, (
            suite, pair_name, pair_specs, variant, seed
        ) in pending
    ]

    def on_result(position: int, outcome) -> None:
        index, (suite, pair_name, _specs, variant, seed) = (
            pending[position]
        )
        payload, stage_records = outcome
        progress.extend(stage_records)
        record: Dict[str, object] = {
            "schema": RECORD_SCHEMA_VERSION,
            "campaign": spec.name,
            "suite": suite,
            "pair": pair_name,
            "variant": variant.label,
            "seed": seed,
            "key": keys[index],
        }
        record.update(payload)
        records_by_key[keys[index]] = record
        if checkpoint:
            # Complete lines only: a kill between appends loses at
            # most in-flight runs, never corrupts finished ones.
            atomic_append_text(checkpoint, record_line(record))
        if verbose:
            wl = record["dcs"].get("wire_length") or next(
                iter(record["dcs"].values())
            )
            print(
                f"  {suite}/{pair_name} [{variant.label}, s{seed}]: "
                f"speedup {wl['speedup']:.2f}x, "
                f"wires {100 * wl['wirelength_ratio']:.0f}% of MDR",
                flush=True,
            )

    # The campaign is a direct client of the job-graph core: one
    # right-sized executor for the batch, jobs awaited in submission
    # order with the incremental-checkpoint callback.
    graph = JobGraph(executor_for(workers, len(tasks)))
    try:
        jobs = [graph.submit_task(task) for task in tasks]
        graph.wait(jobs, on_result=on_result)
    finally:
        graph.shutdown()
    seconds = time.perf_counter() - start

    records = [records_by_key[key] for key in keys]
    if checkpoint:
        # Final rewrite in grid order: resumed-and-finished files are
        # byte-identical to uninterrupted ones even when the harvested
        # records were not a prefix of the grid.
        atomic_write_text(checkpoint, records_jsonl(records))

    summary = summarize(
        spec, records, seconds=seconds, progress=progress,
        workers=workers,
        resumed=len(runs) - len(pending),
    )
    return CampaignResult(spec, records, summary)


def records_jsonl(records: Sequence[Dict[str, object]]) -> str:
    """Serialise records as JSON Lines (sorted keys: byte-stable)."""
    return "".join(record_line(record) for record in records)


def write_jsonl(records: Sequence[Dict[str, object]],
                path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(records_jsonl(records))


# ---------------------------------------------------------------------------
# Summary and the QoR gate
# ---------------------------------------------------------------------------


def qor_metrics(
    records: Sequence[Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Deterministic aggregates per ``suite/variant`` group.

    Wirelengths are summed (regressions anywhere in the group move
    the total); Fmax, speed-up and the MDR:DCS frequency ratio are
    means over every mode of every run.
    """
    groups: Dict[str, Dict[str, list]] = {}
    for record in records:
        key = f"{record['suite']}/{record['variant']}"
        group = groups.setdefault(
            key,
            {
                "mdr_wl": [], "dcs_wl": [], "speedup": [],
                "mdr_fmax": [], "dcs_fmax": [], "freq_ratio": [],
            },
        )
        group["mdr_wl"].extend(record["mdr"]["wirelength"])
        group["mdr_fmax"].extend(record["mdr"]["fmax"])
        dcs = record["dcs"].get("wire_length") or next(
            iter(record["dcs"].values())
        )
        group["dcs_wl"].extend(dcs["wirelength"])
        group["dcs_fmax"].extend(dcs["fmax"])
        group["speedup"].append(dcs["speedup"])
        group["freq_ratio"].extend(dcs["frequency_ratios"])

    def mean(values: list) -> float:
        return _round(sum(values) / len(values)) if values else 0.0

    return {
        key: {
            "n_runs": len(group["speedup"]),
            "mdr_wirelength": sum(group["mdr_wl"]),
            "dcs_wirelength": sum(group["dcs_wl"]),
            "mean_speedup": mean(group["speedup"]),
            "mean_mdr_fmax": mean(group["mdr_fmax"]),
            "mean_dcs_fmax": mean(group["dcs_fmax"]),
            "mean_frequency_ratio": mean(group["freq_ratio"]),
        }
        for key, group in sorted(groups.items())
    }


def summarize(
    spec: CampaignSpec,
    records: Sequence[Dict[str, object]],
    seconds: float,
    progress: ProgressLog,
    workers: int,
    resumed: int = 0,
) -> Dict[str, object]:
    """The machine-readable campaign summary (``BENCH_campaign.json``,
    same envelope style as ``BENCH_exec.json``)."""
    breakdown = progress.breakdown()
    campaign_row = breakdown.get("campaign", {})
    return {
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "campaign": spec.name,
        "description": spec.description,
        "suites": list(spec.suites),
        "scale": spec.scale,
        "seeds": list(spec.seeds),
        "variants": [v.label for v in spec.variants],
        "n_runs": len(records),
        "workers": workers,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "seconds": round(seconds, 3),
        "cache": {
            "record_hits": campaign_row.get("cache_hits", 0),
            "record_misses": (
                campaign_row.get("count", 0)
                - campaign_row.get("cache_hits", 0)
            ),
            "resumed_records": resumed,
        },
        "stages": breakdown,
        "qor": qor_metrics(records),
    }


def write_summary(summary: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")


def baseline_from_summary(
    summary: Dict[str, object]
) -> Dict[str, object]:
    """The committed-baseline subset of a summary."""
    return {
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "campaign": summary["campaign"],
        "n_runs": summary["n_runs"],
        "seconds": summary["seconds"],
        "qor": summary["qor"],
    }


def write_baseline(summary: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline_from_summary(summary), handle, indent=2)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    summary: Dict[str, object],
    baseline: Dict[str, object],
    tolerances: Optional[Dict[str, float]] = None,
) -> List[str]:
    """QoR-gate check; returns violation messages (empty = pass).

    Only *regressions* fail: wirelength totals may not grow beyond
    ``1 + wirelength`` of the baseline, mean Fmax / speed-up may not
    drop below ``1 - fmax`` / ``1 - speedup``, and wall-clock may not
    exceed ``runtime_factor`` times the baseline's.  Improvements (or
    a shrunk runtime) pass — re-baseline to lock them in.
    """
    tol = dict(DEFAULT_TOLERANCES)
    tol.update(tolerances or {})
    violations: List[str] = []

    if summary.get("campaign") != baseline.get("campaign"):
        violations.append(
            "baseline is for campaign "
            f"{baseline.get('campaign')!r}, summary is "
            f"{summary.get('campaign')!r}"
        )
        return violations

    current_qor = summary.get("qor", {})
    for group, base in baseline.get("qor", {}).items():
        cur = current_qor.get(group)
        if cur is None:
            violations.append(
                f"{group}: group missing from the campaign output"
            )
            continue
        for metric in ("mdr_wirelength", "dcs_wirelength"):
            limit = base[metric] * (1.0 + tol["wirelength"])
            if cur[metric] > limit:
                violations.append(
                    f"{group}: {metric} regressed "
                    f"{base[metric]} -> {cur[metric]} "
                    f"(+{100 * (cur[metric] / base[metric] - 1):.1f}%"
                    f", tolerance +{100 * tol['wirelength']:.0f}%)"
                )
        for metric, key in (
            ("mean_mdr_fmax", "fmax"),
            ("mean_dcs_fmax", "fmax"),
            ("mean_speedup", "speedup"),
        ):
            floor = base[metric] * (1.0 - tol[key])
            if cur[metric] < floor:
                violations.append(
                    f"{group}: {metric} regressed "
                    f"{base[metric]:.4f} -> {cur[metric]:.4f} "
                    f"(-{100 * (1 - cur[metric] / base[metric]):.1f}%"
                    f", tolerance -{100 * tol[key]:.0f}%)"
                )

    # A baseline recorded against a warm cache (or an empty grid) has
    # a near-zero wall-clock that no cold run could honour; below one
    # second the runtime bound is meaningless, so it is skipped rather
    # than failing every PR (the deterministic metrics above still
    # gate).  scripts/rebaseline-qor.sh always measures cold.
    base_seconds = baseline.get("seconds")
    if base_seconds and base_seconds >= 1.0:
        limit = base_seconds * tol["runtime_factor"]
        if summary.get("seconds", 0.0) > limit:
            violations.append(
                f"runtime regressed: {base_seconds:.1f}s -> "
                f"{summary['seconds']:.1f}s (bound "
                f"{tol['runtime_factor']:.1f}x baseline)"
            )
    return violations
