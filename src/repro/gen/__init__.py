"""Seeded, parameterized multi-mode workload generators.

The evaluation layer's circuit factory: every workload the harness,
the campaign runner and ``bench-exec`` consume is described by a
:class:`~repro.gen.spec.WorkloadSpec` (generator family + seed +
parameters) and materialised through one ``WorkloadSpec ->
LutCircuit`` interface.  Families:

* :mod:`repro.gen.datapath` — constant-folded MAC/DSP pipelines;
* :mod:`repro.gen.fsm` — banks of one-hot Moore controllers;
* :mod:`repro.gen.xbar` — word-wide crossbars (wiring-dominated);
* :mod:`repro.gen.klut` — random k-LUT networks with a tunable Rent
  exponent and register density;
* plus spec wrappers for the paper's classic generators
  (``regexp``/``fir``/``mcnc``, see :mod:`repro.gen.suites`).

:mod:`repro.gen.suites` groups families into named *suites* that
yield multi-mode pairs at four scales (``tiny``/``quick``/
``default``/``paper``); the suite registry is what
``repro campaign --list`` prints.
"""

from repro.gen.spec import (
    WorkloadSpec,
    build_circuit,
    register_generator,
    registered_kinds,
)
from repro.gen import datapath, fsm, klut, xbar  # noqa: F401 (register)
from repro.gen.suites import (
    SCALES,
    SuiteDef,
    canonical_suite_name,
    register_suite,
    registered_suites,
    suite_pair_specs,
    suite_pairs,
)

__all__ = [
    "SCALES",
    "SuiteDef",
    "WorkloadSpec",
    "build_circuit",
    "canonical_suite_name",
    "register_generator",
    "register_suite",
    "registered_kinds",
    "registered_suites",
    "suite_pair_specs",
    "suite_pairs",
]
