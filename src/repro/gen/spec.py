"""Parameterized workload specifications.

A :class:`WorkloadSpec` is the value-object interface between the
benchmark layer and the circuit generators: it names a registered
generator family (``kind``), a seed, the LUT arity and a flat tuple of
family parameters, and :meth:`WorkloadSpec.build` turns it into a
:class:`~repro.netlist.lutcircuit.LutCircuit`.  Specs are frozen
dataclasses, so they hash, compare, pickle across process boundaries,
and fingerprint canonically — campaign records and stage-cache keys
embed them directly, and rebuilding a spec in a worker process yields
a bit-identical circuit (every generator draws randomness only from
:func:`repro.utils.rng.make_rng` over the spec's seed).

Generator families register themselves with
:func:`register_generator`; importing :mod:`repro.gen` loads every
built-in family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.netlist.lutcircuit import LutCircuit


@dataclass(frozen=True)
class WorkloadSpec:
    """One generated circuit: family ``kind``, seed, and parameters.

    ``params`` is a sorted tuple of ``(name, value)`` pairs rather
    than a dict so the spec stays hashable; build specs through
    :meth:`create` and read parameters through :meth:`param`.
    """

    kind: str
    name: str
    seed: int = 0
    k: int = 4
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def create(cls, kind: str, name: str, seed: int = 0, k: int = 4,
               **params: object) -> "WorkloadSpec":
        return cls(kind, name, seed, k, tuple(sorted(params.items())))

    def param(self, key: str, default: object = None) -> object:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def build(self) -> LutCircuit:
        """Generate this spec's circuit (deterministic in the spec)."""
        return build_circuit(self)


GeneratorFn = Callable[[WorkloadSpec], LutCircuit]

_GENERATORS: Dict[str, GeneratorFn] = {}


def register_generator(
    kind: str,
) -> Callable[[GeneratorFn], GeneratorFn]:
    """Class decorator registering a ``WorkloadSpec -> LutCircuit``
    builder under *kind*; duplicate registrations are a bug."""

    def decorate(fn: GeneratorFn) -> GeneratorFn:
        if kind in _GENERATORS:
            raise ValueError(f"generator {kind!r} already registered")
        _GENERATORS[kind] = fn
        return fn

    return decorate


def registered_kinds() -> List[str]:
    """Sorted names of every registered generator family."""
    return sorted(_GENERATORS)


def build_circuit(spec: WorkloadSpec) -> LutCircuit:
    """Dispatch *spec* to its registered generator."""
    try:
        generator = _GENERATORS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {spec.kind!r}; registered kinds: "
            f"{', '.join(registered_kinds())}"
        ) from None
    return generator(spec)
