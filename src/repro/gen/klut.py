"""Random k-LUT network workloads (``kind="klut"``).

The direct LUT-level generalisation of the MCNC stand-ins in
:mod:`repro.bench.mcnc`: a feed-forward network of ``n_luts`` random
K-LUTs grown block by block, with two knobs real suites differ in:

* ``rent`` — the Rent exponent *p* steering wiring locality.  Block
  *t* draws its fanins from a trailing window of ``~(t + n_inputs)**p``
  recently created signals: ``p -> 1`` approaches uniformly random
  (global, congestion-heavy) wiring, small *p* gives tightly local
  clusters.  This is the standard Rent's-rule reading — terminal count
  grows as ``B**p`` with block count — applied generatively.
* ``reg_density`` — the fraction of LUT outputs that are registered,
  from pure combinational clouds (0.0) to pipeline-saturated
  datapath-like fabrics.

Because blocks are generated straight as :class:`LutBlock`\\ s, the
circuit skips synthesis/techmap entirely: sizes are exact and builds
are fast, which is what the campaign sweeps and the CI smoke preset
need.

Parameters (``WorkloadSpec.params``): ``n_luts`` (default 60),
``n_inputs`` (10), ``n_outputs`` (8), ``rent`` (0.7), ``reg_density``
(0.1), ``global_fraction`` (0.1) — the share of fanin draws that
ignore the locality window, keeping some long wires at any *p*.
"""

from __future__ import annotations

from typing import List

from repro.gen.spec import WorkloadSpec, register_generator
from repro.netlist.lutcircuit import LutCircuit
from repro.netlist.truthtable import TruthTable
from repro.utils.rng import make_rng


@register_generator("klut")
def generate_klut_circuit(spec: WorkloadSpec) -> LutCircuit:
    """Grow the random K-LUT network for *spec*."""
    n_luts = int(spec.param("n_luts", 60))
    n_inputs = int(spec.param("n_inputs", 10))
    n_outputs = int(spec.param("n_outputs", 8))
    rent = float(spec.param("rent", 0.7))
    reg_density = float(spec.param("reg_density", 0.1))
    global_fraction = float(spec.param("global_fraction", 0.1))
    if n_luts < 1 or n_inputs < 2 or n_outputs < 1:
        raise ValueError(
            "klut needs n_luts >= 1, n_inputs >= 2, n_outputs >= 1"
        )
    if spec.k < 2:
        raise ValueError("klut needs k >= 2")
    if not 0.0 <= rent <= 1.0:
        raise ValueError("rent exponent must be in [0, 1]")
    if not 0.0 <= reg_density <= 1.0:
        raise ValueError("reg_density must be in [0, 1]")

    rng = make_rng(spec.seed, "gen:klut")
    circuit = LutCircuit(spec.name, k=spec.k)
    signals: List[str] = [
        circuit.add_input(f"pi{i}") for i in range(n_inputs)
    ]

    for t in range(n_luts):
        # Short-circuit order keeps the draw sequence (and thus every
        # existing k>=3 circuit) unchanged while k=2 stays legal.
        arity = (
            2 if spec.k <= 2 or rng.random() < 0.5
            else rng.randint(3, spec.k)
        )
        arity = min(arity, len(signals))
        window = max(arity + 1, round((t + n_inputs) ** rent))
        pool = signals[-window:]
        fanins: List[str] = []
        while len(fanins) < arity:
            source = (
                signals
                if rng.random() < global_fraction or len(pool) < arity
                else pool
            )
            cand = source[rng.randrange(len(source))]
            if cand not in fanins:
                fanins.append(cand)
        table = TruthTable(arity, rng.getrandbits(1 << arity))
        if table.is_const():
            table = TruthTable.var(0, arity)
        registered = rng.random() < reg_density
        name = f"n{t}"
        circuit.add_block(name, fanins, table, registered=registered)
        signals.append(name)

    # Outputs from the tail of the creation order (the "results" of
    # the computation), like real mapped netlists.
    candidates = [s for s in signals if s not in circuit.inputs]
    n_outputs = min(n_outputs, len(candidates))
    tail = candidates[-max(4 * n_outputs, n_outputs):]
    for out in rng.sample(tail, n_outputs):
        circuit.add_output(out)
    circuit.validate()
    return circuit
