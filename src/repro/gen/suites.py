"""Suite registry: named workload families -> multi-mode pairs.

A *suite* is a named recipe producing the multi-mode circuits (mode
pairs) of one workload family at a given scale.  The classic paper
suites (``regexp``, ``fir``, ``mcnc``) and the generator families of
:mod:`repro.gen` (``datapath``, ``fsm``, ``xbar``, ``klut``) register
here behind one interface, so the experiment harness, the campaign
runner and ``bench-exec`` all draw workloads from the same registry:

* :func:`suite_pair_specs` — the pairs as ``WorkloadSpec`` tuples
  (cheap; what campaign records and cache keys embed);
* :func:`suite_pairs` — the pairs materialised into
  :class:`~repro.netlist.lutcircuit.LutCircuit`\\ s (specs shared by
  several pairs build once);
* :func:`registered_suites` — name -> :class:`SuiteDef` for listings.

Scales trade size for runtime: ``tiny`` (seconds per pair — CI smoke
and unit tests), ``quick``/``default`` (the harness's calibrated
subsets), ``medium`` (router-bench A/B runs: large enough for search
costs to dominate, small enough for a bench loop) and ``paper`` (full
experiment sizes).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.gen.spec import (
    WorkloadSpec,
    build_circuit,
    register_generator,
)
from repro.netlist.lutcircuit import LutCircuit

SCALES = ("tiny", "quick", "default", "medium", "paper")

#: Harness-facing aliases (the paper's suite spellings).
SUITE_ALIASES = {"RegExp": "regexp", "FIR": "fir", "MCNC": "mcnc"}

PairSpecs = List[Tuple[str, Tuple[WorkloadSpec, ...]]]
PairSpecFn = Callable[[int, int, str], PairSpecs]


@dataclass(frozen=True)
class SuiteDef:
    """One registered suite: metadata plus the pair-spec builder."""

    name: str
    description: str
    pair_specs: PairSpecFn


_SUITES: Dict[str, SuiteDef] = {}


def register_suite(
    name: str, description: str
) -> Callable[[PairSpecFn], PairSpecFn]:
    def decorate(fn: PairSpecFn) -> PairSpecFn:
        if name in _SUITES:
            raise ValueError(f"suite {name!r} already registered")
        _SUITES[name] = SuiteDef(name, description, fn)
        return fn

    return decorate


def registered_suites() -> Dict[str, SuiteDef]:
    """Registered suites by canonical name (sorted)."""
    return {name: _SUITES[name] for name in sorted(_SUITES)}


def canonical_suite_name(name: str) -> str:
    """Resolve aliases/case; raises ``ValueError`` with a listing."""
    resolved = SUITE_ALIASES.get(name, name).lower()
    if resolved not in _SUITES:
        raise ValueError(
            f"unknown suite {name!r}; registered suites: "
            f"{', '.join(sorted(_SUITES))}"
        )
    return resolved


def _check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; use one of {', '.join(SCALES)}"
        )
    return scale


def suite_pair_specs(
    name: str,
    seed: int = 0,
    k: int = 4,
    scale: str = "default",
    limit: Optional[int] = None,
) -> PairSpecs:
    """The (pair name, mode specs) list of one suite."""
    suite = _SUITES[canonical_suite_name(name)]
    pairs = suite.pair_specs(seed, k, _check_scale(scale))
    if limit is not None:
        pairs = pairs[:limit]
    return pairs


def suite_pairs(
    name: str,
    seed: int = 0,
    k: int = 4,
    scale: str = "default",
    limit: Optional[int] = None,
) -> List[Tuple[str, List[LutCircuit]]]:
    """The pairs with circuits built (shared specs build once)."""
    built: Dict[WorkloadSpec, LutCircuit] = {}

    def build(spec: WorkloadSpec) -> LutCircuit:
        if spec not in built:
            built[spec] = build_circuit(spec)
        return built[spec]

    return [
        (pair_name, [build(spec) for spec in specs])
        for pair_name, specs in suite_pair_specs(
            name, seed=seed, k=k, scale=scale, limit=limit
        )
    ]


# ---------------------------------------------------------------------------
# Classic suites (the paper's three experiments) behind the interface
# ---------------------------------------------------------------------------


@register_generator("regexp")
def _generate_regexp(spec: WorkloadSpec) -> LutCircuit:
    from repro.bench.regex import compile_regex_circuit

    return compile_regex_circuit(
        str(spec.param("pattern")), name=spec.name, k=spec.k
    )


@register_generator("fir")
def _generate_fir(spec: WorkloadSpec) -> LutCircuit:
    from repro.bench.fir import generate_fir_circuit

    return generate_fir_circuit(
        str(spec.param("filter", "lowpass")),
        seed=spec.seed,
        n_taps=int(spec.param("n_taps", 8)),
        n_nonzero=int(spec.param("n_nonzero", 5)),
        k=spec.k,
        generic=bool(spec.param("generic", False)),
        name=spec.name,
    )


@register_generator("mcnc")
def _generate_mcnc(spec: WorkloadSpec) -> LutCircuit:
    from repro.bench.mcnc import DEFAULT_PROFILES, generate_mcnc_circuit

    wanted = spec.param("profile")
    for profile in DEFAULT_PROFILES:
        if profile.name == wanted:
            return generate_mcnc_circuit(profile, k=spec.k)
    raise ValueError(
        f"unknown MCNC profile {wanted!r}; known: "
        f"{', '.join(p.name for p in DEFAULT_PROFILES)}"
    )


def _all_pairs(names_specs: List[Tuple[str, WorkloadSpec]],
               pair_prefix: str) -> PairSpecs:
    """All C(n, 2) combinations, named ``{prefix}_{i}{j}``."""
    return [
        (f"{pair_prefix}_{i}{j}",
         (names_specs[i][1], names_specs[j][1]))
        for i, j in itertools.combinations(range(len(names_specs)), 2)
    ]


@register_suite(
    "regexp",
    "regex matching engines (Thompson NFA, one-hot), all pairings",
)
def _regexp_pairs(seed: int, k: int, scale: str) -> PairSpecs:
    from repro.bench.regex import DEFAULT_PATTERNS

    patterns = DEFAULT_PATTERNS[:3] if scale == "tiny" else (
        DEFAULT_PATTERNS
    )
    specs = [
        (f"regexp{i}",
         WorkloadSpec.create(
             "regexp", f"regexp{i}", seed=seed, k=k, pattern=p
         ))
        for i, p in enumerate(patterns)
    ]
    return _all_pairs(specs, "regexp")


@register_suite(
    "fir",
    "constant-folded FIR filter banks, low-pass i paired with "
    "high-pass i",
)
def _fir_pairs(seed: int, k: int, scale: str) -> PairSpecs:
    n = {
        "tiny": 2, "quick": 2, "default": 4, "medium": 6, "paper": 10,
    }[scale]
    n_taps = 4 if scale == "tiny" else 8
    n_nonzero = 3 if scale == "tiny" else 5
    pairs: PairSpecs = []
    for i in range(n):
        lp = WorkloadSpec.create(
            "fir", f"fir_lp{i}", seed=seed + i, k=k,
            filter="lowpass", n_taps=n_taps, n_nonzero=n_nonzero,
        )
        hp = WorkloadSpec.create(
            "fir", f"fir_hp{i}", seed=seed + i, k=k,
            filter="highpass", n_taps=n_taps, n_nonzero=n_nonzero,
        )
        pairs.append((f"fir_{i}", (lp, hp)))
    return pairs


@register_suite(
    "mcnc",
    "MCNC-class random-logic stand-ins (Table I sizes), all pairings",
)
def _mcnc_pairs(seed: int, k: int, scale: str) -> PairSpecs:
    from repro.bench.mcnc import DEFAULT_PROFILES

    specs = [
        (profile.name,
         WorkloadSpec.create(
             "mcnc", profile.name, seed=profile.seed, k=k,
             profile=profile.name,
         ))
        for profile in DEFAULT_PROFILES
    ]
    return _all_pairs(specs, "mcnc")


# ---------------------------------------------------------------------------
# Generator-family suites: same-shape, different-seed mode pairs
# ---------------------------------------------------------------------------


def _seeded_pairs(kind: str, prefix: str, seed: int, k: int,
                  n_pairs: int, params_for: Callable[[int], dict]
                  ) -> PairSpecs:
    """Pair two same-shape instances with distinct derived seeds."""
    pairs: PairSpecs = []
    for i in range(n_pairs):
        params = params_for(i)
        a = WorkloadSpec.create(
            kind, f"{prefix}{i}a", seed=seed + 2 * i, k=k, **params
        )
        b = WorkloadSpec.create(
            kind, f"{prefix}{i}b", seed=seed + 2 * i + 1, k=k, **params
        )
        pairs.append((f"{prefix}_{i}", (a, b)))
    return pairs


_N_PAIRS = {
    "tiny": 2, "quick": 2, "default": 4, "medium": 6, "paper": 10,
}


@register_suite(
    "datapath",
    "constant-folded MAC/DSP pipelines (seeded coefficient sets)",
)
def _datapath_pairs(seed: int, k: int, scale: str) -> PairSpecs:
    shape = {
        "tiny": dict(width=4, n_terms=2, coeff_width=4),
        "quick": dict(width=6, n_terms=3, coeff_width=5),
        "default": dict(width=8, n_terms=4, coeff_width=6),
        "medium": dict(width=9, n_terms=5, coeff_width=6),
        "paper": dict(width=10, n_terms=6, coeff_width=6),
    }[scale]
    return _seeded_pairs(
        "datapath", "dp", seed, k, _N_PAIRS[scale], lambda i: shape
    )


@register_suite(
    "fsm",
    "banks of one-hot Moore controllers on a shared command bus",
)
def _fsm_pairs(seed: int, k: int, scale: str) -> PairSpecs:
    shape = {
        "tiny": dict(n_states=5, n_controllers=1, in_bits=3,
                     out_bits=3),
        "quick": dict(n_states=6, n_controllers=2, in_bits=4,
                      out_bits=4),
        "default": dict(n_states=8, n_controllers=2, in_bits=4,
                        out_bits=4),
        "medium": dict(n_states=9, n_controllers=3, in_bits=5,
                       out_bits=5),
        "paper": dict(n_states=10, n_controllers=3, in_bits=5,
                      out_bits=6),
    }[scale]
    return _seeded_pairs(
        "fsm", "fsm", seed, k, _N_PAIRS[scale], lambda i: shape
    )


@register_suite(
    "xbar",
    "word-wide crossbars (mux trees, wiring-dominated)",
)
def _xbar_pairs(seed: int, k: int, scale: str) -> PairSpecs:
    shape = {
        "tiny": dict(n_ports=2, width=3),
        "quick": dict(n_ports=4, width=2),
        "default": dict(n_ports=4, width=3),
        "medium": dict(n_ports=6, width=3),
        "paper": dict(n_ports=8, width=4),
    }[scale]
    return _seeded_pairs(
        "xbar", "xbar", seed, k, _N_PAIRS[scale], lambda i: shape
    )


@register_suite(
    "klut",
    "random k-LUT networks (tunable Rent exponent, register density)",
)
def _klut_pairs(seed: int, k: int, scale: str) -> PairSpecs:
    shape = {
        "tiny": dict(n_luts=30, n_inputs=8, n_outputs=6),
        "quick": dict(n_luts=60, n_inputs=10, n_outputs=8),
        "default": dict(n_luts=120, n_inputs=14, n_outputs=10),
        "medium": dict(n_luts=180, n_inputs=16, n_outputs=10),
        "paper": dict(n_luts=300, n_inputs=18, n_outputs=12),
    }[scale]
    rents = (0.55, 0.7, 0.85)
    densities = (0.0, 0.1, 0.2)

    def params_for(i: int) -> dict:
        return dict(
            shape,
            rent=rents[i % len(rents)],
            reg_density=densities[i % len(densities)],
        )

    return _seeded_pairs(
        "klut", "klut", seed, k, _N_PAIRS[scale], params_for
    )
