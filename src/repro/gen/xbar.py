"""Crossbar / interconnect-heavy workloads (``kind="xbar"``).

An ``n_ports`` x ``n_ports`` word-wide crossbar: every output port
selects one input port through a mux tree steered by its own select
bus.  Logic is shallow and cheap, but every input bit fans out to
every output port's mux tree — wiring dominates, which is exactly the
stress the paper's wire-length experiments care about (routing bits
and channel congestion, not LUT count).  The seed draws a per-output
leaf permutation and a polarity mask, so two same-shape instances wire
the same muxes completely differently — a low-similarity mode pair by
construction.

Parameters (``WorkloadSpec.params``):

* ``n_ports`` — ports per side, rounded up to a power of two
  (default 4);
* ``width`` — bits per port (default 2);
* ``registered`` — register the output ports (default True).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.gen.spec import WorkloadSpec, register_generator
from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit
from repro.synth.optimize import optimize_network
from repro.synth.synthesis import WordBuilder
from repro.synth.techmap import tech_map
from repro.utils.rng import make_rng


def _mux_tree(wb: WordBuilder, sel: Sequence[str],
              leaves: Sequence[str]) -> str:
    """Select ``leaves[int(sel)]`` with a balanced mux tree."""
    level = list(leaves)
    for bit in sel:
        nxt = []
        for i in range(0, len(level), 2):
            nxt.append(wb.gate_mux(bit, level[i], level[i + 1]))
        level = nxt
    return level[0]


def xbar_network(spec: WorkloadSpec) -> LogicNetwork:
    """Build the crossbar logic network for *spec*."""
    n_ports = int(spec.param("n_ports", 4))
    width = int(spec.param("width", 2))
    registered = bool(spec.param("registered", True))
    if n_ports < 2 or width < 1:
        raise ValueError("xbar needs n_ports >= 2, width >= 1")
    sel_bits = max(1, (n_ports - 1).bit_length())
    n_ports = 1 << sel_bits  # full mux trees only

    rng = make_rng(spec.seed, "gen:xbar")
    network = LogicNetwork(spec.name)
    wb = WordBuilder(network, prefix="_xb")
    ports: List[List[str]] = [
        wb.input_word(f"in{p}", width) for p in range(n_ports)
    ]
    selects: List[List[str]] = [
        wb.input_word(f"sel{p}", sel_bits) for p in range(n_ports)
    ]

    for p in range(n_ports):
        # Seeded leaf order and polarity: the wiring pattern (which
        # input reaches which mux leaf, straight or inverted) is what
        # distinguishes two crossbar modes.
        order = list(range(n_ports))
        rng.shuffle(order)
        invert_mask = rng.getrandbits(width)
        out_bits = []
        for b in range(width):
            leaves = [ports[src][b] for src in order]
            picked = _mux_tree(wb, selects[p], leaves)
            if invert_mask >> b & 1:
                picked = wb.gate_not(picked)
            out_bits.append(picked)
        if registered:
            out_bits = wb.register_word(out_bits, base=f"q{p}")
        wb.output_word(f"out{p}", out_bits)
    network.validate()
    return network


@register_generator("xbar")
def generate_xbar_circuit(spec: WorkloadSpec) -> LutCircuit:
    """Full front-end: spec -> optimised K-LUT circuit."""
    network = optimize_network(xbar_network(spec))
    return tech_map(network, k=spec.k)
