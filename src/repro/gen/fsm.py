"""FSM + controller-bank workloads (``kind="fsm"``).

A bank of independent one-hot Moore controllers sharing one command
bus — the control-plane counterpart of the datapath family, and the
register-rich, decoder-heavy shape real mode controllers have (compare
the one-hot NFA construction in :mod:`repro.bench.regex`).  Each
controller draws a seeded random transition graph: every state gets a
few outgoing edges guarded by equality decoders on a slice of the
command bus, with a default edge keeping the state machine live.
Status outputs OR random state subsets across the whole bank.

Parameters (``WorkloadSpec.params``):

* ``n_states`` — states per controller (default 8);
* ``n_controllers`` — independent FSMs in the bank (default 2);
* ``in_bits`` — command bus width (default 4);
* ``out_bits`` — status outputs (default 4);
* ``edges_per_state`` — guarded outgoing edges per state (default 2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.gen.spec import WorkloadSpec, register_generator
from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit
from repro.synth.optimize import optimize_network
from repro.synth.synthesis import WordBuilder
from repro.synth.techmap import tech_map
from repro.utils.rng import make_rng


def fsm_network(spec: WorkloadSpec) -> LogicNetwork:
    """Build the controller-bank logic network for *spec*."""
    n_states = int(spec.param("n_states", 8))
    n_ctrl = int(spec.param("n_controllers", 2))
    in_bits = int(spec.param("in_bits", 4))
    out_bits = int(spec.param("out_bits", 4))
    edges = int(spec.param("edges_per_state", 2))
    if n_states < 2 or n_ctrl < 1 or in_bits < 2 or edges < 1:
        raise ValueError(
            "fsm needs n_states >= 2, n_controllers >= 1, "
            "in_bits >= 2, edges_per_state >= 1"
        )

    rng = make_rng(spec.seed, "gen:fsm")
    network = LogicNetwork(spec.name)
    wb = WordBuilder(network, prefix="_fs")
    cmd = wb.input_word("cmd", in_bits)

    all_states: List[str] = []
    for ctrl in range(n_ctrl):
        # State flip-flops first: their next-state data signals are
        # forward references resolved once the transition logic below
        # exists (latch feedback loops are legal; only combinational
        # cycles are not).
        states = [
            network.add_latch(
                f"c{ctrl}_s{q}", f"c{ctrl}_s{q}$next", init=(q == 0)
            )
            for q in range(n_states)
        ]
        all_states.extend(states)

        # Guarded edges: state q fires towards a random successor when
        # a 2-bit command slice equals a random literal.
        incoming: Dict[int, List[str]] = {q: [] for q in range(n_states)}
        for q in range(n_states):
            guards: List[str] = []
            for _ in range(edges):
                lo = rng.randrange(in_bits - 1)
                value = rng.randrange(4)
                guard = wb.equals_const(cmd[lo:lo + 2], value)
                succ = rng.randrange(n_states)
                incoming[succ].append(
                    wb.gate_and((states[q], guard))
                )
                guards.append(guard)
            # Default edge: no guard fired -> hold (or advance, for a
            # counter-flavoured controller).
            stay = wb.gate_and(
                (states[q],
                 wb.gate_not(wb.gate_or(guards)))
            )
            hold_target = q if rng.random() < 0.7 else (
                (q + 1) % n_states
            )
            incoming[hold_target].append(stay)
        for q in range(n_states):
            terms = incoming[q]
            if not terms:
                terms = [wb.const_bit(False)]
            network.add_buf(
                f"c{ctrl}_s{q}$next", wb.gate_or(terms)
            )

    for o in range(out_bits):
        subset = rng.sample(all_states, max(1, len(all_states) // 4))
        wb.output_word(f"st{o}", [wb.gate_or(subset)])
    network.validate()
    return network


@register_generator("fsm")
def generate_fsm_circuit(spec: WorkloadSpec) -> LutCircuit:
    """Full front-end: spec -> optimised K-LUT circuit."""
    network = optimize_network(fsm_network(spec))
    return tech_map(network, k=spec.k)
