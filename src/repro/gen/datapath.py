"""Datapath/DSP pipeline workloads (``kind="datapath"``).

A seeded multiply-accumulate pipeline shaped like the constant-folded
DSP blocks specialised circuits are made of (the generalisation of the
FIR construction in :mod:`repro.bench.fir`): the input word broadcasts
to ``n_terms`` constant multipliers (CSD shift-add networks, like the
paper's specialised filters), whose products reduce through a balanced
adder tree with an optional pipeline register rank between tree
levels.  Different seeds draw different sparse constant sets, so two
same-shape instances make a structurally similar but logically
distinct mode pair — the workload shape where merging pays off.

Parameters (``WorkloadSpec.params``):

* ``width`` — input word width (default 8);
* ``n_terms`` — constant multipliers feeding the tree (default 4);
* ``coeff_width`` — constant magnitude bound ``2**(coeff_width-1)-1``
  (default 6);
* ``pipeline`` — register the adder tree between levels (default
  True);
* ``accumulate`` — feed the tree root back through an accumulator
  register (default False; turns the pipeline into a running MAC).
"""

from __future__ import annotations

import math
from typing import List

from repro.gen.spec import WorkloadSpec, register_generator
from repro.netlist.logic import LogicNetwork
from repro.netlist.lutcircuit import LutCircuit
from repro.synth.optimize import optimize_network
from repro.synth.synthesis import WordBuilder
from repro.synth.techmap import tech_map
from repro.utils.rng import make_rng


def datapath_network(spec: WorkloadSpec) -> LogicNetwork:
    """Build the MAC-pipeline logic network for *spec*."""
    width = int(spec.param("width", 8))
    n_terms = int(spec.param("n_terms", 4))
    coeff_width = int(spec.param("coeff_width", 6))
    pipeline = bool(spec.param("pipeline", True))
    accumulate = bool(spec.param("accumulate", False))
    if width < 2 or n_terms < 1 or coeff_width < 2:
        raise ValueError(
            "datapath needs width >= 2, n_terms >= 1, "
            "coeff_width >= 2"
        )

    rng = make_rng(spec.seed, "gen:datapath")
    max_mag = (1 << (coeff_width - 1)) - 1
    coefficients = []
    for _ in range(n_terms):
        magnitude = rng.randint(1, max_mag)
        coefficients.append(
            magnitude if rng.random() < 0.5 else -magnitude
        )

    gain = sum(abs(c) for c in coefficients) or 1
    acc_width = width + max(1, math.ceil(math.log2(gain))) + 1

    network = LogicNetwork(spec.name)
    wb = WordBuilder(network, prefix="_dp")
    x = wb.input_word("x", width)

    level: List[List[str]] = [
        wb.mul_const(x, coeff, acc_width) for coeff in coefficients
    ]
    rank = 0
    while len(level) > 1:
        nxt: List[List[str]] = []
        for i in range(0, len(level), 2):
            if i + 1 < len(level):
                nxt.append(
                    wb.adder(level[i], level[i + 1], width=acc_width)
                )
            else:
                nxt.append(level[i])
        if pipeline and len(nxt) > 1:
            nxt = [
                wb.register_word(word, base=f"p{rank}_{j}")
                for j, word in enumerate(nxt)
            ]
        level = nxt
        rank += 1
    result = level[0]
    if accumulate:
        # y[t] = result[t] + y[t-1]: the classic running MAC loop.
        acc_reg = [
            wb.flipflop(bit, name=f"acc[{i}]")
            for i, bit in enumerate(
                [f"accd[{i}]" for i in range(acc_width)]
            )
        ]
        summed = wb.adder(result, acc_reg, width=acc_width)
        for i, bit in enumerate(summed):
            network.add_buf(f"accd[{i}]", bit)
        result = summed
    wb.output_word("y", result)
    network.validate()
    return network


@register_generator("datapath")
def generate_datapath_circuit(spec: WorkloadSpec) -> LutCircuit:
    """Full front-end: spec -> optimised K-LUT circuit."""
    network = optimize_network(datapath_network(spec))
    return tech_map(network, k=spec.k)
