"""Fingerprint-coverage checker (RPR101, RPR102).

The stage cache keys every memoized stage on the FlowOptions-derived
inputs that reach its computation, and ``OPTION_STAGE_COVERAGE``
declares, per field, which stage keys the field perturbs.  A field
read reachable from a stage body whose stage is missing from the
field's declared set is the stale-cache aliasing bug class: two runs
differing only in that field would collide on one cache entry.

This pass turns the runtime never-alias test into a static one that
names the uncovered read site.  It is generic over a source tree: it
locates the ``FlowOptions`` class and the ``OPTION_STAGE_COVERAGE``
literal wherever they live, so the test suite can point it at a
synthetic fixture tree.

Read-set construction per memoize/key site:

* direct ``options.<field>`` attribute reads in the key-inputs
  expression and in the compute closure body;
* ``options.<method>()`` calls expand to the method's own transitive
  field reads (``schedule()`` -> ``inner_num``, ``criticality()`` ->
  the timing triple);
* calls passing an options-typed argument to a resolvable helper
  (same module first, then package-unique name) recurse into it;
* assignments in the enclosing function feeding names used by the
  closure or inputs (``timing = options.criticality()``) contribute
  their reads;
* a bare options object embedded in the key data ("whole-object
  keyed", the ``multimode``/``campaign`` shape) covers every field,
  so such sites are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .base import Finding, SourceFile, const_str, dotted_name

OPTIONS_CLASS = "FlowOptions"
COVERAGE_NAME = "OPTION_STAGE_COVERAGE"

#: Parameter names treated as options-typed even without annotation.
_OPTIONS_PARAM_NAMES = {"options", "opts", "flow_options"}


# ---------------------------------------------------------------------------
# Project model
# ---------------------------------------------------------------------------


@dataclass
class _FuncInfo:
    module: str  # rel path of defining file
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    sf: SourceFile


@dataclass
class _OptionsModel:
    fields: Set[str] = field(default_factory=set)
    #: method name -> transitive set of fields it reads
    method_reads: Dict[str, Set[str]] = field(default_factory=dict)
    class_site: Optional[Tuple[SourceFile, int]] = None
    coverage: Dict[str, Set[str]] = field(default_factory=dict)
    coverage_site: Optional[Tuple[SourceFile, int]] = None


def _is_options_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return OPTIONS_CLASS in node.value
    name = dotted_name(node)
    if name is not None and name.split(".")[-1] == OPTIONS_CLASS:
        return True
    if isinstance(node, ast.Subscript):  # Optional[FlowOptions]
        return any(
            _is_options_annotation(child)
            for child in ast.walk(node.slice)
            if isinstance(child, ast.expr)
        )
    return False


def _options_params(node: ast.AST) -> Set[str]:
    """Parameter names of ``node`` that carry an options object."""
    out: Set[str] = set()
    args = getattr(node, "args", None)
    if args is None:
        return out
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
    ):
        if arg.arg in _OPTIONS_PARAM_NAMES or _is_options_annotation(
            arg.annotation
        ):
            out.add(arg.arg)
    return out


def _direct_self_reads(
    node: ast.AST, fields_: Set[str]
) -> Tuple[Set[str], Set[str]]:
    """(field reads, self-method calls) on ``self`` inside a method."""
    reads: Set[str] = set()
    calls: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and isinstance(
            sub.value, ast.Name
        ):
            if sub.value.id != "self":
                continue
            if sub.attr in fields_:
                reads.add(sub.attr)
            else:
                calls.add(sub.attr)
    return reads, calls


def _extract_stage_set(node: ast.expr) -> Optional[Set[str]]:
    """Stage-name strings out of ``frozenset({...})`` / set literals."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in {"frozenset", "set"} and len(node.args) <= 1:
            if not node.args:
                return set()
            return _extract_stage_set(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out = set()
        for elt in node.elts:
            s = const_str(elt)
            if s is None:
                return None
            out.add(s)
        return out
    return None


def _build_options_model(
    files: Sequence[SourceFile],
) -> Optional[_OptionsModel]:
    model = _OptionsModel()
    for sf in files:
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name == OPTIONS_CLASS
            ):
                model.class_site = (sf, node.lineno)
                _fill_class(model, node)
            elif isinstance(node, ast.Assign):
                targets = [
                    t.id
                    for t in node.targets
                    if isinstance(t, ast.Name)
                ]
                if COVERAGE_NAME in targets and isinstance(
                    node.value, ast.Dict
                ):
                    model.coverage_site = (sf, node.lineno)
                    _fill_coverage(model, node.value)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == COVERAGE_NAME
                and isinstance(node.value, ast.Dict)
            ):
                model.coverage_site = (sf, node.lineno)
                _fill_coverage(model, node.value)
    if model.class_site is None:
        return None
    return model


def _fill_class(model: _OptionsModel, cls: ast.ClassDef) -> None:
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            name = stmt.target.id
            anno = ast.dump(stmt.annotation)
            if not name.startswith("_") and "ClassVar" not in anno:
                model.fields.add(name)
    # Methods: direct reads first, then expand self-method calls to a
    # fixpoint so schedule()/criticality() chains resolve fully.
    direct: Dict[str, Tuple[Set[str], Set[str]]] = {}
    for stmt in cls.body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            direct[stmt.name] = _direct_self_reads(stmt, model.fields)
    reads = {name: set(r) for name, (r, _c) in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, (_r, calls) in direct.items():
            for callee in calls:
                extra = reads.get(callee)
                if extra and not extra <= reads[name]:
                    reads[name] |= extra
                    changed = True
    model.method_reads = reads


def _fill_coverage(model: _OptionsModel, node: ast.Dict) -> None:
    for key, value in zip(node.keys, node.values):
        if key is None:
            continue
        name = const_str(key)
        stages = _extract_stage_set(value)
        if name is not None and stages is not None:
            model.coverage[name] = stages


def _index_functions(
    files: Sequence[SourceFile],
) -> Tuple[Dict[str, Dict[str, _FuncInfo]], Dict[str, List[_FuncInfo]]]:
    """(per-module name->func, package-wide name->funcs)."""
    per_module: Dict[str, Dict[str, _FuncInfo]] = {}
    by_name: Dict[str, List[_FuncInfo]] = {}
    for sf in files:
        table: Dict[str, _FuncInfo] = {}
        for stmt in sf.tree.body:  # type: ignore[attr-defined]
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                info = _FuncInfo(module=sf.rel, node=stmt, sf=sf)
                table[stmt.name] = info
                by_name.setdefault(stmt.name, []).append(info)
        per_module[sf.rel] = table
    return per_module, by_name


# ---------------------------------------------------------------------------
# Stage sites
# ---------------------------------------------------------------------------


@dataclass
class _StageSite:
    stage: str
    inputs: List[ast.expr]
    compute: Optional[ast.expr]
    call: ast.Call
    enclosing: Optional[ast.AST]  # enclosing function, if any
    sf: SourceFile


def _find_stage_sites(sf: SourceFile) -> List[_StageSite]:
    sites: List[_StageSite] = []
    parents: Dict[ast.AST, Optional[ast.AST]] = {}

    def _walk(node: ast.AST, func: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            parents[child] = func
            _walk(
                child,
                child
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                else func,
            )

    _walk(sf.tree, None)

    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        site = _classify_call(node, sf)
        if site is not None:
            site.enclosing = parents.get(node)
            sites.append(site)
    return sites


def _classify_call(
    node: ast.Call, sf: SourceFile
) -> Optional[_StageSite]:
    func = node.func
    # cache.memoize("stage", inputs, compute)
    if isinstance(func, ast.Attribute) and func.attr == "memoize":
        stage = const_str(node.args[0]) if node.args else None
        if stage is not None and len(node.args) >= 2:
            return _StageSite(
                stage=stage,
                inputs=[node.args[1]],
                compute=node.args[2] if len(node.args) > 2 else None,
                call=node,
                enclosing=None,
                sf=sf,
            )
    # cache.key("stage", *inputs) (+ later cache.get/cache.put)
    if isinstance(func, ast.Attribute) and func.attr == "key":
        stage = const_str(node.args[0]) if node.args else None
        if stage is not None and len(node.args) >= 2:
            return _StageSite(
                stage=stage,
                inputs=list(node.args[1:]),
                compute=None,
                call=node,
                enclosing=None,
                sf=sf,
            )
    # timed_call(label, item, cache.memoize, "stage", inputs, compute)
    for idx, arg in enumerate(node.args):
        if (
            isinstance(arg, ast.Attribute)
            and arg.attr == "memoize"
            and idx + 2 < len(node.args)
        ):
            stage = const_str(node.args[idx + 1])
            if stage is not None:
                compute = (
                    node.args[idx + 3]
                    if idx + 3 < len(node.args)
                    else None
                )
                return _StageSite(
                    stage=stage,
                    inputs=[node.args[idx + 2]],
                    compute=compute,
                    call=node,
                    enclosing=None,
                    sf=sf,
                )
    return None


# ---------------------------------------------------------------------------
# Read-set extraction
# ---------------------------------------------------------------------------


@dataclass
class _ReadSet:
    #: field name -> first (SourceFile, line, via) it was read at
    reads: Dict[str, Tuple[SourceFile, int, str]] = field(
        default_factory=dict
    )
    whole_object: bool = False


class _Extractor:
    def __init__(
        self,
        model: _OptionsModel,
        per_module: Dict[str, Dict[str, _FuncInfo]],
        by_name: Dict[str, List[_FuncInfo]],
    ) -> None:
        self.model = model
        self.per_module = per_module
        self.by_name = by_name
        self._visiting: Set[int] = set()

    def _resolve_func(
        self, name: str, sf: SourceFile
    ) -> Optional[_FuncInfo]:
        info = self.per_module.get(sf.rel, {}).get(name)
        if info is not None:
            return info
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def expr_reads(
        self,
        expr: ast.AST,
        options_names: Set[str],
        sf: SourceFile,
        out: _ReadSet,
        via: str,
    ) -> None:
        """Accumulate options-field reads from ``expr`` into ``out``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in options_names
                ):
                    self._record_attr(node, sf, out, via)
            elif isinstance(node, ast.Name):
                if node.id in options_names and _is_data_position(
                    node, expr
                ):
                    out.whole_object = True
            elif isinstance(node, ast.Call):
                self._maybe_recurse_call(
                    node, options_names, sf, out, via
                )

    def _record_attr(
        self,
        node: ast.Attribute,
        sf: SourceFile,
        out: _ReadSet,
        via: str,
    ) -> None:
        attr = node.attr
        if attr in self.model.fields:
            out.reads.setdefault(attr, (sf, node.lineno, via))
        else:
            expanded = self.model.method_reads.get(attr)
            if expanded:
                for fld in expanded:
                    out.reads.setdefault(
                        fld, (sf, node.lineno, f"{via}.{attr}()")
                    )

    def _maybe_recurse_call(
        self,
        node: ast.Call,
        options_names: Set[str],
        sf: SourceFile,
        out: _ReadSet,
        via: str,
    ) -> None:
        """Recurse into helpers that receive an options argument."""
        passed = [
            arg
            for arg in node.args
            if isinstance(arg, ast.Name) and arg.id in options_names
        ]
        passed += [
            kw.value
            for kw in node.keywords
            if isinstance(kw.value, ast.Name)
            and kw.value.id in options_names
        ]
        if not passed:
            return
        name = dotted_name(node.func)
        if name is None or "." in name:
            return  # method/attribute call on an object: opaque
        info = self._resolve_func(name, sf)
        if info is None:
            # Unresolvable call receiving the options object: assume
            # it embeds the whole object (conservative, never a false
            # positive).
            out.whole_object = True
            return
        key = id(info.node)
        if key in self._visiting:
            return
        self._visiting.add(key)
        try:
            inner_names = _options_params(info.node)
            # positional matching is overkill here: inside the helper
            # the options param is recognised by name/annotation.
            body = getattr(info.node, "body", [])
            for stmt in body:
                self.expr_reads(
                    stmt, inner_names, info.sf, out, f"{via}->{name}"
                )
        finally:
            self._visiting.discard(key)

    # -- site-level analysis ----------------------------------------

    def site_reads(self, site: _StageSite) -> _ReadSet:
        out = _ReadSet()
        enclosing = site.enclosing
        options_names = (
            _options_params(enclosing) if enclosing is not None else set()
        )
        scope_sets = _scope_assignments(enclosing)

        roots: List[ast.AST] = list(site.inputs)
        compute_body = _resolve_compute(site, enclosing)
        roots.extend(compute_body)

        # Names referenced by the inputs/compute that are fed by
        # enclosing-scope assignments (closure captures like
        # ``timing = options.criticality()``).
        referenced: Set[str] = set()
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, ast.Name):
                    referenced.add(node.id)
        for name in sorted(referenced & set(scope_sets)):
            roots.append(scope_sets[name])
            for node in ast.walk(scope_sets[name]):
                if isinstance(node, ast.Name):
                    referenced.add(node.id)

        for root in roots:
            self.expr_reads(
                root, options_names, site.sf, out, site.stage
            )
        return out


def _is_data_position(name: ast.Name, root: ast.AST) -> bool:
    """True when ``name`` is embedded in key data rather than passed
    to a call (call args are handled by helper recursion)."""
    parent_map: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parent_map[child] = node
    parent = parent_map.get(name)
    if isinstance(parent, ast.Call):
        return False
    if isinstance(parent, ast.keyword):
        return False
    if isinstance(parent, ast.Attribute):
        return False
    return True


def _scope_assignments(
    enclosing: Optional[ast.AST],
) -> Dict[str, ast.expr]:
    """Simple ``name = expr`` assignments in the enclosing function
    (not descending into nested defs)."""
    out: Dict[str, ast.expr] = {}
    if enclosing is None:
        return out
    for stmt in getattr(enclosing, "body", []):
        for node in _statements_shallow(stmt):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    out[target.id] = node.value
    return out


def _statements_shallow(stmt: ast.stmt):
    yield stmt
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            yield from _statements_shallow(child)
        else:
            for grand in ast.walk(child):
                if isinstance(grand, ast.stmt):
                    yield from _statements_shallow(grand)


def _resolve_compute(
    site: _StageSite, enclosing: Optional[ast.AST]
) -> List[ast.AST]:
    compute = site.compute
    if compute is None:
        return []
    if isinstance(compute, ast.Lambda):
        return [compute.body]
    if isinstance(compute, ast.Name) and enclosing is not None:
        for stmt in ast.walk(enclosing):
            if (
                isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                and stmt.name == compute.id
            ):
                return list(stmt.body)
    return [compute]


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_coverage(files: Sequence[SourceFile]) -> List[Finding]:
    model = _build_options_model(list(files))
    if model is None:
        return []  # tree does not define FlowOptions: nothing to do
    findings: List[Finding] = []

    if model.coverage_site is not None:
        sf, lineno = model.coverage_site
        declared = set(model.coverage)
        missing = sorted(model.fields - declared)
        extra = sorted(declared - model.fields)
        for name in missing:
            findings.append(
                Finding(
                    rule="RPR102",
                    path=sf.rel,
                    line=lineno,
                    col=0,
                    message=(
                        f"{COVERAGE_NAME} is missing FlowOptions "
                        f"field {name!r}; every knob must declare "
                        "which stage keys it perturbs"
                    ),
                    snippet=sf.snippet(lineno),
                )
            )
        for name in extra:
            findings.append(
                Finding(
                    rule="RPR102",
                    path=sf.rel,
                    line=lineno,
                    col=0,
                    message=(
                        f"{COVERAGE_NAME} declares {name!r} which is "
                        "not a FlowOptions field (stale entry?)"
                    ),
                    snippet=sf.snippet(lineno),
                )
            )

    per_module, by_name = _index_functions(files)
    extractor = _Extractor(model, per_module, by_name)

    for sf in files:
        for site in _find_stage_sites(sf):
            reads = extractor.site_reads(site)
            if reads.whole_object:
                continue  # whole options object is in the key
            for fld in sorted(reads.reads):
                read_sf, lineno, via = reads.reads[fld]
                stages = model.coverage.get(fld, set())
                if site.stage in stages:
                    continue
                declared = (
                    "{" + ", ".join(sorted(stages)) + "}"
                    if stages
                    else "nothing"
                )
                findings.append(
                    Finding(
                        rule="RPR101",
                        path=read_sf.rel,
                        line=lineno,
                        col=0,
                        message=(
                            f"FlowOptions.{fld} is read in the "
                            f"{site.stage!r} stage body (via {via}) "
                            f"but {COVERAGE_NAME} maps it to "
                            f"{declared}; add the stage or key the "
                            "read out of the stage computation"
                        ),
                        snippet=read_sf.snippet(lineno),
                    )
                )
    return findings
