"""Orchestration for `repro lint`: parse, check, suppress, report."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from .base import (
    ALL_RULES,
    Finding,
    SourceFile,
    filter_baselined,
    load_baseline,
    load_source_file,
    walk_tree,
)
from .coverage import check_coverage
from .determinism import DEFAULT_TIMING_ALLOWLIST, check_determinism
from .threads import check_threads


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed_pragma: int = 0
    suppressed_baseline: int = 0
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def to_json(self) -> str:
        payload = {
            "files_checked": self.files_checked,
            "suppressed_pragma": self.suppressed_pragma,
            "suppressed_baseline": self.suppressed_baseline,
            "errors": self.errors,
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "snippet": f.snippet,
                }
                for f in self.findings
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in "
            f"{self.files_checked} file(s)"
        )
        extras = []
        if self.suppressed_pragma:
            extras.append(f"{self.suppressed_pragma} pragma-allowed")
        if self.suppressed_baseline:
            extras.append(f"{self.suppressed_baseline} baselined")
        if extras:
            summary += " (" + ", ".join(extras) + ")"
        lines.append(summary)
        lines.extend(f"error: {e}" for e in self.errors)
        return "\n".join(lines)


def _load_files(
    root: Path, paths: Optional[Sequence[Path]], result: LintResult
) -> List[SourceFile]:
    if paths:
        candidates: List[Path] = []
        for p in paths:
            candidates.extend(walk_tree(p) if p.is_dir() else [p])
        candidates = sorted(set(candidates))
    else:
        candidates = walk_tree(root)
    files: List[SourceFile] = []
    for path in candidates:
        try:
            files.append(load_source_file(path, root))
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            result.errors.append(f"{path}: {exc}")
    return files


def lint_tree(
    root: Path,
    paths: Optional[Sequence[Path]] = None,
    baseline_path: Optional[Path] = None,
    timing_allowlist: Sequence[str] = DEFAULT_TIMING_ALLOWLIST,
    rules: Optional[Set[str]] = None,
) -> LintResult:
    """Lint every python file under ``root`` (or just ``paths``).

    ``root`` anchors relative paths in findings, the RPR001 module
    allowlist and baseline identity, so pass the directory that
    contains the ``repro`` package (``src/``), not the package itself.
    """
    result = LintResult()
    files = _load_files(root, paths, result)
    result.files_checked = len(files)

    raw: List[Finding] = []
    for sf in files:
        raw.extend(check_determinism(sf, timing_allowlist))
    raw.extend(check_coverage(files))
    raw.extend(check_threads(files))

    if rules is not None:
        raw = [f for f in raw if f.rule in rules]

    by_rel = {sf.rel: sf for sf in files}
    kept: List[Finding] = []
    for f in sorted(raw, key=Finding.sort_key):
        sf = by_rel.get(f.path)
        if sf is not None and sf.allowed(f.rule, f.line):
            result.suppressed_pragma += 1
            continue
        kept.append(f)

    if baseline_path is not None and baseline_path.exists():
        baseline = load_baseline(baseline_path)
        fresh = filter_baselined(kept, baseline)
        result.suppressed_baseline = len(kept) - len(fresh)
        kept = fresh

    result.findings = kept
    return result


def lint_paths(
    paths: Sequence[str],
    root: str = "src",
    baseline: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> LintResult:
    """Convenience wrapper used by the CLI."""
    root_path = Path(root)
    path_objs = [Path(p) for p in paths] if paths else None
    rule_set = set(rules) if rules else None
    if rule_set is not None:
        unknown = rule_set - set(ALL_RULES)
        if unknown:
            raise ValueError(
                "unknown rule id(s): " + ", ".join(sorted(unknown))
            )
    return lint_tree(
        root_path,
        paths=path_objs,
        baseline_path=Path(baseline) if baseline else None,
        rules=rule_set,
    )


def describe_rules() -> List[Tuple[str, str]]:
    return sorted(ALL_RULES.items())
