"""Project-specific static analysis (`repro lint`).

Three checker families guard the invariants the reproduction's results
stand on:

* determinism (RPR0xx) -- wall-clock reads, unseeded entropy, unsorted
  set / filesystem iteration feeding result-producing code, identity
  hashes used for ordering, float sums over unordered collections;
* fingerprint coverage (RPR1xx) -- every ``FlowOptions`` field read
  reachable from a stage body must be declared in
  ``OPTION_STAGE_COVERAGE``;
* shared state (RPR2xx) -- unlocked writes to shared mutable state
  from functions reachable from thread-pool entry points.

Accepted findings live in a committed baseline file so CI only fails
on *new* ones; individual lines opt out with
``# repro: allow[RPRnnn] reason``.
"""

from .base import (
    ALL_RULES,
    Finding,
    load_baseline,
    write_baseline,
)
from .runner import LintResult, lint_paths, lint_tree

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "lint_paths",
    "lint_tree",
    "load_baseline",
    "write_baseline",
]
