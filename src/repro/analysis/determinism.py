"""Determinism checkers (RPR001-RPR006).

The flow's QoR must be bit-identical across runs, worker counts and
warm/cold caches, so anything that injects wall-clock time, process
entropy or container-iteration order into result-producing code is a
bug.  These checkers encode the exact classes PR 1 fixed by hand:
PYTHONHASHSEED-dependent set iteration, float sums over unordered
collections, and unseeded RNG use outside ``repro.utils.rng``.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .base import Finding, SourceFile, dotted_name

#: Modules whose whole purpose is measuring wall-clock time (bench
#: harnesses, progress reporting, the job scheduler's drain timeouts,
#: the HTTP service).  Wall-clock reads are legitimate there; anywhere
#: else they need a pragma.
DEFAULT_TIMING_ALLOWLIST: Sequence[str] = (
    "repro/bench/*",
    "repro/exec/progress.py",
    "repro/exec/jobs.py",
    "repro/serve/*",
)

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_GLOBAL_RANDOM_DRAWS = {
    "random",
    "randint",
    "randrange",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "paretovariate",
    "vonmisesvariate",
    "weibullvariate",
    "getrandbits",
}

_NUMPY_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "RandomState",
    "PCG64",
    "Philox",
}

_ENTROPY_EXACT = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Call names whose result is a filesystem enumeration in OS order.
_FS_ENUM_CALLS = {
    "os.listdir",
    "os.walk",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
}

#: Path-object methods returning entries in OS order.
_FS_ENUM_METHODS = {"glob", "rglob", "iterdir"}

#: Attribute calls that mutate an ordered container (sink evidence).
_ORDERED_APPENDS = {"append", "extend", "insert"}

_KEYED_CALLS = {
    "sorted",
    "min",
    "max",
    "heapq.nsmallest",
    "heapq.nlargest",
}


class _Imports:
    """Resolve local aliases back to canonical dotted module names."""

    def __init__(self, tree: ast.AST) -> None:
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        if head in self.names:
            head = self.names[head]
        elif head in self.modules:
            head = self.modules[head]
        return f"{head}.{rest}" if rest else head


def _resolved_call(imports: _Imports, node: ast.Call) -> Optional[str]:
    name = dotted_name(node.func)
    if name is None:
        return None
    return imports.resolve(name)


def _is_fs_enum(imports: _Imports, node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = _resolved_call(imports, node)
    if resolved in _FS_ENUM_CALLS:
        return True
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _FS_ENUM_METHODS
    ):
        return True
    return False


def _is_set_expr(
    node: ast.AST,
    set_vars: Set[str],
) -> bool:
    """Syntactic inference: does ``node`` evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return _is_set_expr(node.func.value, set_vars)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    if isinstance(node, ast.Name):
        return node.id in set_vars
    return False


def _collect_set_vars(
    body: Sequence[ast.stmt],
    inherited: Set[str],
) -> Set[str]:
    """Names assigned a set-typed value in this scope (one forward
    pass to a small fixpoint, nested scopes excluded)."""
    set_vars = set(inherited)
    for _ in range(2):  # two passes pick up simple chains
        for stmt in _scope_statements(body):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expr(stmt.value, set_vars):
                        set_vars.add(target.id)
                    elif target.id in set_vars and not isinstance(
                        stmt.value, ast.Name
                    ):
                        # reassigned to something non-set: drop it
                        set_vars.discard(target.id)
    return set_vars


def _scope_statements(body: Sequence[ast.stmt]) -> Iterable[ast.stmt]:
    """All statements in a scope, not descending into nested
    function/class definitions (those are separate scopes)."""
    stack: List[ast.stmt] = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(
            stmt,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(
                    grand
                    for grand in ast.walk(child)
                    if isinstance(grand, ast.stmt)
                )


def _body_accumulates(body: Sequence[ast.stmt]) -> bool:
    """Does a loop body append/extend/yield -- i.e. build an ordered
    result from iteration order?"""
    for stmt in _scope_statements(body):
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDERED_APPENDS
            ):
                return True
    return False


def _key_uses_identity(key: ast.expr) -> bool:
    if isinstance(key, ast.Name) and key.id in {"id", "hash"}:
        return True
    if isinstance(key, ast.Lambda):
        for node in ast.walk(key.body):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in {"id", "hash"}:
                    return True
    return False


class _DeterminismScan:
    def __init__(self, sf: SourceFile, timing_allowed: bool) -> None:
        self.sf = sf
        self.timing_allowed = timing_allowed
        self.imports = _Imports(sf.tree)
        self.findings: List[Finding] = []

    # -- emission ----------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.sf.rel,
                line=line,
                col=col,
                message=message,
                snippet=self.sf.snippet(line),
            )
        )

    # -- entry -------------------------------------------------------

    def run(self) -> List[Finding]:
        module_body = self.sf.tree.body  # type: ignore[attr-defined]
        self._scan_scope(module_body, set())
        return self.findings

    def _scan_scope(
        self,
        body: Sequence[ast.stmt],
        inherited_sets: Set[str],
    ) -> None:
        set_vars = _collect_set_vars(body, inherited_sets)
        for stmt in _scope_statements(body):
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._scan_scope(stmt.body, set_vars)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._scan_scope(stmt.body, set_vars)
                continue
            self._scan_statement(stmt, set_vars)

    # -- per-statement checks ---------------------------------------

    def _scan_statement(
        self,
        stmt: ast.stmt,
        set_vars: Set[str],
    ) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_loop(stmt, set_vars)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._check_call(node, set_vars)
            elif isinstance(node, ast.ListComp):
                self._check_listcomp(node, set_vars)

    def _check_loop(self, stmt: ast.stmt, set_vars: Set[str]) -> None:
        iterable = stmt.iter  # type: ignore[attr-defined]
        if not _body_accumulates(stmt.body):  # type: ignore
            return
        if _is_set_expr(iterable, set_vars):
            self._emit(
                "RPR003",
                iterable,
                "loop over a set builds an ordered result; iteration "
                "order depends on PYTHONHASHSEED -- wrap the iterable "
                "in sorted()",
            )
        elif _is_fs_enum(self.imports, iterable):
            self._emit(
                "RPR004",
                iterable,
                "loop over an OS-ordered directory listing builds an "
                "ordered result -- wrap the enumeration in sorted()",
            )

    def _check_listcomp(
        self, node: ast.ListComp, set_vars: Set[str]
    ) -> None:
        first = node.generators[0].iter
        if _is_set_expr(first, set_vars):
            self._emit(
                "RPR003",
                first,
                "list comprehension over a set produces "
                "PYTHONHASHSEED-dependent element order -- wrap the "
                "iterable in sorted()",
            )
        elif _is_fs_enum(self.imports, first):
            self._emit(
                "RPR004",
                first,
                "list comprehension over an OS-ordered directory "
                "listing -- wrap the enumeration in sorted()",
            )

    def _check_call(self, node: ast.Call, set_vars: Set[str]) -> None:
        resolved = _resolved_call(self.imports, node)
        name = dotted_name(node.func)

        if resolved in _WALL_CLOCK and not self.timing_allowed:
            self._emit(
                "RPR001",
                node,
                f"wall-clock read {resolved}() outside the timing "
                "allowlist; results must not depend on the clock",
            )
        self._check_entropy(node, resolved)
        self._check_order_sinks(node, name, set_vars)
        self._check_identity_key(node, name, resolved)
        if name == "sum" and node.args:
            self._check_sum(node, set_vars)

    def _check_entropy(
        self, node: ast.Call, resolved: Optional[str]
    ) -> None:
        if resolved is None:
            return
        if resolved in _ENTROPY_EXACT or resolved.startswith("secrets."):
            self._emit(
                "RPR002",
                node,
                f"{resolved}() draws process entropy; thread a seeded "
                "generator from repro.utils.rng.make_rng instead",
            )
            return
        parts = resolved.split(".")
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _GLOBAL_RANDOM_DRAWS
        ):
            self._emit(
                "RPR002",
                node,
                f"module-level {resolved}() uses the shared unseeded "
                "RNG; use repro.utils.rng.make_rng",
            )
            return
        if (
            len(parts) >= 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _NUMPY_RANDOM_OK
        ):
            self._emit(
                "RPR002",
                node,
                f"global {resolved}() bypasses seeded Generator "
                "state; use numpy.random.default_rng(seed)",
            )

    def _check_order_sinks(
        self,
        node: ast.Call,
        name: Optional[str],
        set_vars: Set[str],
    ) -> None:
        is_join = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
        )
        if name not in {"list", "tuple", "enumerate"} and not is_join:
            return
        if not node.args:
            return
        arg = node.args[0]
        target = arg
        if isinstance(arg, ast.GeneratorExp):
            target = arg.generators[0].iter
        what = name if name else "str.join"
        if _is_set_expr(target, set_vars):
            self._emit(
                "RPR003",
                node,
                f"{what}() over a set captures PYTHONHASHSEED-"
                "dependent order -- wrap the iterable in sorted()",
            )
        elif _is_fs_enum(self.imports, target):
            self._emit(
                "RPR004",
                node,
                f"{what}() over an OS-ordered directory listing -- "
                "wrap the enumeration in sorted()",
            )

    def _check_identity_key(
        self,
        node: ast.Call,
        name: Optional[str],
        resolved: Optional[str],
    ) -> None:
        is_sort_method = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort"
        )
        if (
            name not in _KEYED_CALLS
            and resolved not in _KEYED_CALLS
            and not is_sort_method
        ):
            return
        for kw in node.keywords:
            if kw.arg == "key" and _key_uses_identity(kw.value):
                self._emit(
                    "RPR005",
                    node,
                    "ordering key uses id()/hash(): both vary across "
                    "processes (ASLR / PYTHONHASHSEED); key on stable "
                    "content instead",
                )

    def _check_sum(self, node: ast.Call, set_vars: Set[str]) -> None:
        arg = node.args[0]
        target = arg
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            target = arg.generators[0].iter
        if _is_set_expr(target, set_vars):
            self._emit(
                "RPR006",
                node,
                "sum() over a set accumulates in PYTHONHASHSEED-"
                "dependent order; float sums are order-sensitive -- "
                "iterate sorted()",
            )


def check_determinism(
    sf: SourceFile,
    timing_allowlist: Sequence[str] = DEFAULT_TIMING_ALLOWLIST,
) -> List[Finding]:
    timing_allowed = any(
        fnmatch(sf.rel, pattern) for pattern in timing_allowlist
    )
    return _DeterminismScan(sf, timing_allowed).run()
