"""Shared infrastructure for the `repro lint` checkers.

A checker produces :class:`Finding` objects; the runner suppresses
those matched by an inline pragma or by the committed baseline and
reports the rest.  Baseline identity deliberately excludes line
numbers -- a finding is keyed on (rule, path, stripped source line,
occurrence index) so unrelated edits above a finding do not invalidate
the baseline.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Rule id -> one-line description.  The registry is the single source
#: of truth: the CLI's ``--list-rules``, the docs table and the tests
#: all read it.
ALL_RULES: Dict[str, str] = {
    "RPR001": (
        "wall-clock read (time.time/perf_counter/datetime.now) outside "
        "the allowlisted bench/serve timing modules"
    ),
    "RPR002": (
        "unseeded entropy source (module-level random.*, os.urandom, "
        "uuid.uuid4, secrets.*, global numpy.random.*)"
    ),
    "RPR003": (
        "iteration over a set feeding order-sensitive code "
        "(list/tuple/enumerate/join/append/yield) without sorted()"
    ),
    "RPR004": (
        "unsorted filesystem enumeration (os.listdir/walk/scandir, "
        "glob, Path.glob/rglob/iterdir) feeding ordered accumulation"
    ),
    "RPR005": (
        "id() or default object hash() used as an ordering key "
        "(sorted/sort/min/max/heapq key=)"
    ),
    "RPR006": (
        "float-sensitive sum() over a set-typed iterable "
        "(accumulation order is not deterministic)"
    ),
    "RPR101": (
        "FlowOptions field read reachable from a stage body but not "
        "mapped to that stage in OPTION_STAGE_COVERAGE"
    ),
    "RPR102": (
        "OPTION_STAGE_COVERAGE keys do not exactly match the "
        "FlowOptions field set"
    ),
    "RPR201": (
        "unlocked write to shared instance or module state from a "
        "function reachable from a thread-pool entry point"
    ),
    "RPR202": (
        "unlocked write to a global/nonlocal-declared name from a "
        "function reachable from a thread-pool entry point"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One lint finding at a concrete source location."""

    rule: str
    path: str  # posix-style path relative to the scanned root
    line: int
    col: int
    message: str
    snippet: str  # stripped text of the offending source line

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} {self.message}"
        )


@dataclass
class SourceFile:
    """A parsed source file handed to every checker."""

    path: Path  # absolute
    rel: str  # posix path relative to the scanned root
    text: str
    lines: List[str]
    tree: ast.AST
    #: line number -> set of rule ids allowed on that line ('*' = all)
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def allowed(self, rule: str, line: int) -> bool:
        """True when a pragma on this or the preceding line allows
        ``rule``."""
        for cand in (line, line - 1):
            rules = self.pragmas.get(cand)
            if rules and ("*" in rules or rule in rules):
                return True
        return False


_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9*,\s]+)\]"
)


def parse_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Extract ``# repro: allow[RPRnnn, ...] reason`` pragmas."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        m = _PRAGMA_RE.search(line)
        if not m:
            continue
        rules = {
            part.strip()
            for part in m.group(1).split(",")
            if part.strip()
        }
        if rules:
            out[lineno] = rules
    return out


def load_source_file(path: Path, root: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    tree = ast.parse(text, filename=str(path))
    return SourceFile(
        path=path,
        rel=path.relative_to(root).as_posix(),
        text=text,
        lines=lines,
        tree=tree,
        pragmas=parse_pragmas(lines),
    )


def walk_tree(root: Path) -> List[Path]:
    """All python files under ``root``, deterministically ordered."""
    return sorted(
        p for p in root.rglob("*.py")
        if "__pycache__" not in p.parts
    )


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

BASELINE_VERSION = 1


def _occurrence_keys(
    findings: Iterable[Finding],
) -> List[Tuple[str, str, str, int]]:
    """Stable identity per finding: (rule, path, snippet, index) where
    index disambiguates repeated identical lines within one file."""
    seen: Dict[Tuple[str, str, str], int] = {}
    keys = []
    for f in sorted(findings, key=Finding.sort_key):
        base = (f.rule, f.path, f.snippet)
        idx = seen.get(base, 0)
        seen[base] = idx + 1
        keys.append((f.rule, f.path, f.snippet, idx))
    return keys


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    entries = [
        {"rule": rule, "path": rel, "snippet": snippet, "index": idx}
        for rule, rel, snippet, idx in _occurrence_keys(findings)
    ]
    payload = {
        "version": BASELINE_VERSION,
        "rules": sorted({f.rule for f in findings}),
        "findings": entries,
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: Path) -> Set[Tuple[str, str, str, int]]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported lint baseline version {version!r} in {path}"
        )
    out: Set[Tuple[str, str, str, int]] = set()
    for entry in payload.get("findings", ()):
        out.add(
            (
                str(entry["rule"]),
                str(entry["path"]),
                str(entry["snippet"]),
                int(entry.get("index", 0)),
            )
        )
    return out


def filter_baselined(
    findings: Sequence[Finding],
    baseline: Set[Tuple[str, str, str, int]],
) -> List[Finding]:
    """Findings not covered by the baseline, in stable order."""
    fresh = []
    for f, key in zip(
        sorted(findings, key=Finding.sort_key),
        _occurrence_keys(findings),
    ):
        if key not in baseline:
            fresh.append(f)
    return fresh


# ---------------------------------------------------------------------------
# Small AST helpers shared by the checkers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """'a.b.c' for nested Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


def const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
