"""Shared-state checker (RPR201, RPR202).

The batched router fans net negotiation across a thread pool and the
job graph's ``ThreadJobExecutor`` runs arbitrary stage work on pool
threads, so any write to state visible across threads -- instance
attributes, module globals, closure cells -- from a function reachable
from a thread entry point must either hold a lock or carry a pragma
documenting why the race is benign (single-word dict ops under the
GIL, for example).

Entry points recognised syntactically:

* ``Task(fn=X)`` in a function that also passes ``use_threads=True``
  somewhere (the process-pool flows stay exempt);
* ``<pool>.submit(X, ...)`` with a resolvable callable;
* ``<future>.add_done_callback(X)`` (lambdas are followed into the
  ``self._method`` calls they make);
* ``threading.Thread(target=X)`` and ``asyncio.to_thread(X)``.

Reachability is a static call-graph BFS: ``self.method()`` resolves
through the class and its statically known base classes,
``function()`` through the defining module, then package-unique
names.  A write is suppressed when it sits lexically inside a ``with``
whose context expression mentions a lock, and ``__init__`` /
``__new__`` / ``__post_init__`` bodies are exempt (no other thread
holds the object yet).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .base import Finding, SourceFile, dotted_name

_CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}

#: Method names that mutate a container in place.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "remove",
    "discard",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
}

#: Callables that hand ``target=``/``fn=`` to a thread.
_THREAD_SPAWNERS = {"Thread", "threading.Thread"}


def _mentions_lock(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
    return False


@dataclass
class _FuncRef:
    """A function or method in the project call graph."""

    sf: SourceFile
    node: ast.AST  # FunctionDef / AsyncFunctionDef / Lambda
    cls: Optional[str]  # owning class name, if a method
    name: str

    @property
    def key(self) -> Tuple[str, Optional[str], str]:
        return (self.sf.rel, self.cls, self.name)


@dataclass
class _Project:
    files: Sequence[SourceFile]
    #: class name -> (SourceFile, ClassDef, base class names)
    classes: Dict[str, Tuple[SourceFile, ast.ClassDef, List[str]]] = (
        field(default_factory=dict)
    )
    #: (module rel, func name) -> _FuncRef for module-level functions
    module_funcs: Dict[Tuple[str, str], _FuncRef] = field(
        default_factory=dict
    )
    by_name: Dict[str, List[_FuncRef]] = field(default_factory=dict)
    #: module rel -> names assigned a mutable literal at module level
    module_mutables: Dict[str, Set[str]] = field(default_factory=dict)

    def index(self) -> None:
        for sf in self.files:
            mutables: Set[str] = set()
            for stmt in sf.tree.body:  # type: ignore[attr-defined]
                if isinstance(stmt, ast.ClassDef):
                    bases = [
                        dotted_name(b).split(".")[-1]  # type: ignore
                        for b in stmt.bases
                        if dotted_name(b) is not None
                    ]
                    self.classes[stmt.name] = (sf, stmt, bases)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    ref = _FuncRef(
                        sf=sf, node=stmt, cls=None, name=stmt.name
                    )
                    self.module_funcs[(sf.rel, stmt.name)] = ref
                    self.by_name.setdefault(stmt.name, []).append(ref)
                elif isinstance(stmt, ast.Assign):
                    if isinstance(
                        stmt.value,
                        (
                            ast.Dict,
                            ast.List,
                            ast.Set,
                            ast.DictComp,
                            ast.ListComp,
                            ast.SetComp,
                        ),
                    ):
                        for t in stmt.targets:
                            if isinstance(t, ast.Name):
                                mutables.add(t.id)
            self.module_mutables[sf.rel] = mutables

    def resolve_method(
        self, cls: str, name: str
    ) -> Optional[_FuncRef]:
        """Find ``name`` on ``cls`` or its statically known bases."""
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            sf, node, bases = entry
            for stmt in node.body:
                if (
                    isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and stmt.name == name
                ):
                    return _FuncRef(
                        sf=sf, node=stmt, cls=current, name=name
                    )
            queue.extend(bases)
        return None

    def resolve_function(
        self, module: str, name: str
    ) -> Optional[_FuncRef]:
        ref = self.module_funcs.get((module, name))
        if ref is not None:
            return ref
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


# ---------------------------------------------------------------------------
# Entry-point discovery
# ---------------------------------------------------------------------------


def _callable_targets(
    value: ast.expr, owner: Optional[str]
) -> List[Tuple[Optional[str], str]]:
    """(class, name) candidates a callable expression refers to."""
    if isinstance(value, ast.Attribute) and isinstance(
        value.value, ast.Name
    ):
        if value.value.id == "self" and owner is not None:
            return [(owner, value.attr)]
        return []
    if isinstance(value, ast.Name):
        return [(None, value.id)]
    if isinstance(value, ast.Lambda):
        out: List[Tuple[Optional[str], str]] = []
        for node in ast.walk(value.body):
            if isinstance(node, ast.Call):
                out.extend(_callable_targets(node.func, owner))
        return out
    return []


def _find_entries(
    sf: SourceFile,
) -> List[Tuple[Optional[str], str, int]]:
    """(owning class or None, callable name, line) thread entries."""
    entries: List[Tuple[Optional[str], str, int]] = []

    class_stack: List[str] = []

    def visit(node: ast.AST, cls: Optional[str]) -> None:
        if isinstance(node, ast.ClassDef):
            for child in ast.iter_child_nodes(node):
                visit(child, node.name)
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            entries.extend(_entries_in_function(node, cls))
        for child in ast.iter_child_nodes(node):
            visit(child, cls)

    visit(sf.tree, None)
    return entries


def _entries_in_function(
    func: ast.AST, cls: Optional[str]
) -> List[Tuple[Optional[str], str, int]]:
    out: List[Tuple[Optional[str], str, int]] = []
    threaded_scope = False
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if (
                    kw.arg == "use_threads"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    threaded_scope = True
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        attr = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else None
        )
        targets: List[Tuple[Optional[str], str]] = []
        if name in _THREAD_SPAWNERS:
            for kw in node.keywords:
                if kw.arg == "target":
                    targets += _callable_targets(kw.value, cls)
        elif name in {"asyncio.to_thread", "to_thread"} and node.args:
            targets += _callable_targets(node.args[0], cls)
        elif attr == "submit" and node.args:
            targets += _callable_targets(node.args[0], cls)
        elif attr == "add_done_callback" and node.args:
            targets += _callable_targets(node.args[0], cls)
        elif name == "Task" and threaded_scope:
            for kw in node.keywords:
                if kw.arg == "fn":
                    targets += _callable_targets(kw.value, cls)
            if node.args:
                targets += _callable_targets(node.args[0], cls)
        for owner, fn_name in targets:
            out.append((owner, fn_name, node.lineno))
    return out


# ---------------------------------------------------------------------------
# Write detection
# ---------------------------------------------------------------------------


def _with_lock_lines(func: ast.AST) -> Set[int]:
    """Line numbers lexically covered by a lock-holding ``with``."""
    covered: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(
                _mentions_lock(item.context_expr)
                for item in node.items
            ):
                end = getattr(node, "end_lineno", node.lineno)
                covered.update(range(node.lineno, end + 1))
    return covered


def _self_aliases(func: ast.AST) -> Dict[str, str]:
    """Local ``name = self.attr`` aliases (mutating the alias mutates
    the shared attribute)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                aliases[target.id] = value.attr
    return aliases


@dataclass
class _Write:
    line: int
    col: int
    what: str
    rule: str


def _writes_in(
    ref: _FuncRef, project: _Project
) -> List[_Write]:
    func = ref.node
    if ref.name in _CONSTRUCTORS:
        return []
    if ref.name.endswith("_locked"):
        # Project convention: a ``*_locked`` helper asserts its
        # callers hold the graph/object lock already.
        return []
    locked = _with_lock_lines(func)
    aliases = _self_aliases(func)
    mutable_globals = project.module_mutables.get(ref.sf.rel, set())
    declared_global: Set[str] = set()
    declared_nonlocal: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            declared_nonlocal.update(node.names)

    writes: List[_Write] = []

    def emit(node: ast.AST, what: str, rule: str) -> None:
        line = getattr(node, "lineno", 0)
        if line in locked:
            return
        writes.append(
            _Write(
                line=line,
                col=getattr(node, "col_offset", 0),
                what=what,
                rule=rule,
            )
        )

    def shared_target(
        target: ast.expr, container_mutation: bool
    ) -> Optional[Tuple[str, str]]:
        """(description, rule) when ``target`` names shared state.

        ``container_mutation`` is True for subscript stores and
        mutating method calls -- the cases where touching a plain
        local alias or module-level name still mutates shared state.
        """
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
            container_mutation = True
        if isinstance(base, ast.Attribute) and isinstance(
            base.value, ast.Name
        ):
            if base.value.id == "self":
                return (f"self.{base.attr}", "RPR201")
            if base.value.id in aliases:
                return (
                    f"self.{aliases[base.value.id]} "
                    f"(via local alias {base.value.id!r})",
                    "RPR201",
                )
        if isinstance(base, ast.Name):
            if base.id in declared_global:
                return (f"global {base.id}", "RPR202")
            if base.id in declared_nonlocal:
                return (f"nonlocal {base.id}", "RPR202")
            if container_mutation and base.id in aliases:
                return (
                    f"self.{aliases[base.id]} "
                    f"(via local alias {base.id!r})",
                    "RPR201",
                )
            if container_mutation and base.id in mutable_globals:
                return (f"module-level {base.id}", "RPR201")
        return None

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                hit = shared_target(target, False)
                if hit is not None:
                    emit(node, hit[0], hit[1])
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                hit = shared_target(target, True)
                if hit is not None:
                    emit(node, hit[0], hit[1])
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATORS:
                hit = shared_target(node.func.value, True)
                if hit is not None:
                    emit(
                        node,
                        f"{hit[0]}.{node.func.attr}()",
                        hit[1],
                    )
    return writes


# ---------------------------------------------------------------------------
# Call-graph BFS
# ---------------------------------------------------------------------------


def _callees(
    ref: _FuncRef, project: _Project
) -> List[_FuncRef]:
    out: List[_FuncRef] = []
    for node in ast.walk(ref.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and ref.cls is not None
        ):
            resolved = project.resolve_method(ref.cls, func.attr)
            if resolved is not None:
                out.append(resolved)
        elif isinstance(func, ast.Name):
            resolved = project.resolve_function(
                ref.sf.rel, func.id
            )
            if resolved is not None:
                out.append(resolved)
    # Nested functions run in the same thread when called; they are
    # already inside ref.node's walk for writes, so no extra edge.
    return out


def check_threads(files: Sequence[SourceFile]) -> List[Finding]:
    project = _Project(files=list(files))
    project.index()

    # Seed the BFS with every syntactic entry point.
    queue: List[Tuple[_FuncRef, str]] = []
    seen: Set[Tuple[str, Optional[str], str]] = set()
    for sf in files:
        for owner, name, _line in _find_entries(sf):
            ref: Optional[_FuncRef]
            if owner is not None:
                ref = project.resolve_method(owner, name)
            else:
                ref = project.resolve_function(sf.rel, name)
            if ref is None:
                continue
            entry_label = f"{owner + '.' if owner else ''}{name}"
            if ref.key not in seen:
                seen.add(ref.key)
                queue.append((ref, entry_label))

    findings: List[Finding] = []
    while queue:
        ref, entry = queue.pop(0)
        for write in _writes_in(ref, project):
            findings.append(
                Finding(
                    rule=write.rule,
                    path=ref.sf.rel,
                    line=write.line,
                    col=write.col,
                    message=(
                        f"unlocked write to {write.what} in "
                        f"{ref.name!r}, reachable from thread entry "
                        f"{entry!r}; hold a lock or document the "
                        "benign race with a pragma"
                    ),
                    snippet=ref.sf.snippet(write.line),
                )
            )
        for callee in _callees(ref, project):
            if callee.key not in seen:
                seen.add(callee.key)
                queue.append((callee, entry))
    return findings
