"""VPR ``.place`` files.

Format (VPR 4.30)::

    Netlist file: circuit.net   Architecture file: 4lut_sanitized.arch
    Array size: 8 x 8 logic blocks

    #block name  x  y  subblk  block number
    #----------  --  --  ------  ------------
    some_cell    1   2   0       #0

The ``subblk`` column is the pad slot for IO locations (always 0 for
logic blocks).  Cell names follow this code base's convention: IO pad
cells are named ``pad:<signal>`` (see
:func:`repro.place.placer.pad_cell`).
"""

from __future__ import annotations

from typing import Dict

from repro.arch.architecture import FpgaArchitecture, Site
from repro.interop.archfile import InteropError
from repro.place.placer import Placement


def write_place_file(
    placement: Placement,
    netlist_file: str = "circuit.net",
    arch_file: str = "4lut_sanitized.arch",
) -> str:
    """Render *placement* in VPR ``.place`` format."""
    arch = placement.arch
    lines = [
        f"Netlist file: {netlist_file}\t"
        f"Architecture file: {arch_file}",
        f"Array size: {arch.nx} x {arch.ny} logic blocks",
        "",
        "#block name\tx\ty\tsubblk\tblock number",
        "#----------\t--\t--\t------\t------------",
    ]
    for number, (cell, site) in enumerate(
        sorted(placement.sites.items())
    ):
        lines.append(
            f"{cell}\t{site.x}\t{site.y}\t{site.slot}\t#{number}"
        )
    return "\n".join(lines) + "\n"


def parse_place_file(
    text: str, arch: FpgaArchitecture
) -> Placement:
    """Parse a ``.place`` file back into a :class:`Placement`.

    The declared array size must match *arch*; every placed cell must
    land on a legal site of the architecture (pads on the perimeter,
    logic blocks inside the grid).  The placement cost is not part of
    the format and is returned as ``0.0``.
    """
    sites: Dict[str, Site] = {}
    used: Dict[Site, str] = {}
    array_seen = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("Netlist file:"):
            continue
        if line.startswith("Array size:"):
            parts = line.split()
            try:
                nx, ny = int(parts[2]), int(parts[4])
            except (IndexError, ValueError):
                raise InteropError(
                    f"line {line_no}: malformed array size"
                ) from None
            if (nx, ny) != (arch.nx, arch.ny):
                raise InteropError(
                    f"line {line_no}: array size {nx}x{ny} does not "
                    f"match architecture {arch.nx}x{arch.ny}"
                )
            array_seen = True
            continue
        parts = line.split()
        if len(parts) < 4:
            raise InteropError(
                f"line {line_no}: expected 'name x y subblk'"
            )
        cell = parts[0]
        try:
            x, y, slot = int(parts[1]), int(parts[2]), int(parts[3])
        except ValueError:
            raise InteropError(
                f"line {line_no}: non-integer coordinates"
            ) from None
        site = _site_for(arch, x, y, slot, line_no)
        if site in used:
            raise InteropError(
                f"line {line_no}: site ({x},{y}) slot {slot} already "
                f"holds {used[site]!r}"
            )
        if cell in sites:
            raise InteropError(
                f"line {line_no}: cell {cell!r} placed twice"
            )
        used[site] = cell
        sites[cell] = site
    if not array_seen:
        raise InteropError("missing 'Array size:' header")
    return Placement(arch=arch, sites=sites, cost=0.0)


def _site_for(
    arch: FpgaArchitecture, x: int, y: int, slot: int, line_no: int
) -> Site:
    if arch.contains_clb(x, y):
        if slot != 0:
            raise InteropError(
                f"line {line_no}: logic blocks have subblk 0"
            )
        return Site("clb", x, y)
    if (x, y) in arch.pad_locations():
        if not 0 <= slot < arch.io_rat:
            raise InteropError(
                f"line {line_no}: pad slot {slot} out of range "
                f"(io_rat {arch.io_rat})"
            )
        return Site("pad", x, y, slot)
    raise InteropError(
        f"line {line_no}: ({x},{y}) is neither a logic tile nor a "
        "pad location"
    )
