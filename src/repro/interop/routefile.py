"""VPR ``.route`` files.

Format (VPR 4.30)::

    Routing:

    Net 0 (some_net)

      OPIN (1,2)  Pin: clb.out
      CHANX (1,1)  Track: 3
      IPIN (2,2)  Pin: clb.in1
      SINK (2,2)  Class: clb.sink

Multi-mode extension: a routing produced by TRoute realises a
different wire set per mode, so the writer emits one ``Mode <m>:``
section per mode, each a complete VPR-style net listing of that mode's
active connections.  Single-mode routings produce exactly one section
and stay close to plain VPR output.

Pin/class annotations reuse the RRG node labels, which makes parsing
lossless: :func:`parse_route_file` recovers the exact RRG node ids.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from repro.arch.rrg import (
    IPIN,
    OPIN,
    SINK,
    WIRE,
    RoutingResourceGraph,
)
from repro.interop.archfile import InteropError
from repro.route.router import RoutingResult

_PAD_LABEL = re.compile(r"pad(\d+)\.(out|in|sink)")
_CLB_IN = re.compile(r"clb\.in(\d+)")


def _node_line(rrg: RoutingResourceGraph, node: int) -> str:
    kind = rrg.node_kind[node]
    x, y = rrg.node_x[node], rrg.node_y[node]
    label = rrg.node_label[node]
    if kind == WIRE:
        orient = "CHANX" if label.startswith("chanx") else "CHANY"
        track = label.split(".t", 1)[1]
        return f"  {orient} ({x},{y})  Track: {track}"
    if kind == OPIN:
        return f"  OPIN ({x},{y})  Pin: {label}"
    if kind == IPIN:
        return f"  IPIN ({x},{y})  Pin: {label}"
    return f"  SINK ({x},{y})  Class: {label}"


def write_route_file(result: RoutingResult) -> str:
    """Render a routing in (mode-sectioned) VPR ``.route`` format."""
    rrg = result.rrg
    lines = ["Routing:"]
    for mode in range(result.n_modes):
        lines.append("")
        lines.append(f"Mode {mode}:")
        by_net: Dict[str, List] = {}
        for route in result.routes.values():
            if mode in route.request.modes:
                by_net.setdefault(route.request.net, []).append(route)
        for index, net in enumerate(sorted(by_net)):
            lines.append("")
            lines.append(f"Net {index} ({net})")
            lines.append("")
            for route in sorted(
                by_net[net], key=lambda r: r.request.conn_id
            ):
                for node in route.nodes():
                    lines.append(_node_line(rrg, node))
                lines.append("")
    return "\n".join(lines) + "\n"


def _node_from_line(
    rrg: RoutingResourceGraph,
    kind: str,
    x: int,
    y: int,
    annotation: str,
    line_no: int,
) -> int:
    try:
        if kind == "CHANX":
            return rrg.chanx[(x, y, int(annotation))]
        if kind == "CHANY":
            return rrg.chany[(x, y, int(annotation))]
        pad = _PAD_LABEL.fullmatch(annotation)
        if kind == "OPIN":
            if pad:
                return rrg.pad_opin[(x, y, int(pad.group(1)))]
            return rrg.clb_opin[(x, y)]
        if kind == "IPIN":
            if pad:
                return rrg.pad_ipin[(x, y, int(pad.group(1)))]
            clb_in = _CLB_IN.fullmatch(annotation)
            if clb_in is None:
                raise KeyError(annotation)
            return rrg.clb_ipin[(x, y, int(clb_in.group(1)))]
        if kind == "SINK":
            if pad:
                return rrg.pad_sink[(x, y, int(pad.group(1)))]
            return rrg.clb_sink[(x, y)]
    except (KeyError, ValueError):
        raise InteropError(
            f"line {line_no}: no RRG node {kind} ({x},{y}) "
            f"{annotation!r}"
        ) from None
    raise InteropError(f"line {line_no}: unknown node kind {kind!r}")


_NODE_LINE = re.compile(
    r"(CHANX|CHANY|OPIN|IPIN|SINK)\s+\((\d+),(\d+)\)\s+"
    r"(?:Track|Pin|Class):\s+(\S+)"
)
_NET_LINE = re.compile(r"Net\s+\d+\s+\((.+)\)")
_MODE_LINE = re.compile(r"Mode\s+(\d+):")


def parse_route_file(
    text: str, rrg: RoutingResourceGraph
) -> Dict[int, Dict[str, Set[int]]]:
    """Parse a ``.route`` file back to per-mode RRG node sets.

    Returns ``mode -> net -> set of node ids``.  The edge structure is
    not part of the format (VPR linearises the route tree); node sets
    are sufficient for wire-length and occupancy accounting.
    """
    result: Dict[int, Dict[str, Set[int]]] = {}
    mode: int = 0
    net: str = ""
    seen_header = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line == "Routing:":
            seen_header = True
            continue
        mode_match = _MODE_LINE.fullmatch(line)
        if mode_match:
            mode = int(mode_match.group(1))
            result.setdefault(mode, {})
            continue
        net_match = _NET_LINE.fullmatch(line)
        if net_match:
            net = net_match.group(1)
            result.setdefault(mode, {}).setdefault(net, set())
            continue
        node_match = _NODE_LINE.fullmatch(line)
        if node_match:
            if not net:
                raise InteropError(
                    f"line {line_no}: node outside a net section"
                )
            kind, x, y, annotation = node_match.groups()
            node = _node_from_line(
                rrg, kind, int(x), int(y), annotation, line_no
            )
            result[mode][net].add(node)
            continue
        raise InteropError(
            f"line {line_no}: unrecognised content {line!r}"
        )
    if not seen_header:
        raise InteropError("missing 'Routing:' header")
    return result
