"""Interoperability with the VPR (Versatile Place and Route) file
formats.

The paper's tooling is a Java port of VPR [10] driven by
``4lut_sanitized.arch``; this subpackage reads and writes the
corresponding text formats so circuits, placements and routings can be
exchanged with VPR-based flows:

* :mod:`repro.interop.archfile` — the classic (VPR 4.30) architecture
  description, including a bundled ``4lut_sanitized``-equivalent;
* :mod:`repro.interop.netfile` — the ``.net`` mapped-netlist format;
* :mod:`repro.interop.placefile` — the ``.place`` placement format;
* :mod:`repro.interop.routefile` — the ``.route`` routing format
  (extended with a per-mode section header for multi-mode routings).

Parsers are strict: malformed lines raise :class:`InteropError` with
the offending line number rather than silently skipping content.
"""

from repro.interop.archfile import (
    DEFAULT_4LUT_ARCH,
    ArchSpec,
    InteropError,
    format_arch,
    parse_arch,
)
from repro.interop.netfile import (
    NetlistStructure,
    parse_net_file,
    write_net_file,
)
from repro.interop.placefile import parse_place_file, write_place_file
from repro.interop.routefile import parse_route_file, write_route_file

__all__ = [
    "DEFAULT_4LUT_ARCH",
    "ArchSpec",
    "InteropError",
    "NetlistStructure",
    "format_arch",
    "parse_arch",
    "parse_net_file",
    "parse_place_file",
    "parse_route_file",
    "write_net_file",
    "write_place_file",
    "write_route_file",
]
