"""VPR ``.net`` mapped-netlist files.

Format (VPR 4.30)::

    .global clk

    .input a
    pinlist: a

    .output out:n3
    pinlist: n3

    .clb n3                      # one K-LUT + FF logic block
    pinlist: a b open open n3 clk
    subblock: n3 0 1 open open 4 5

A ``.clb`` pinlist carries K input pins (``open`` for unused), the
output pin, and the clock pin (``open`` for combinational blocks).

The ``.net`` format describes *structure only* — LUT truth tables are
not part of it (VPR reads logic content from the BLIF).  Parsing
therefore yields a :class:`NetlistStructure`; pair it with the BLIF
reader (:mod:`repro.netlist.blif`) when functions are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.interop.archfile import InteropError
from repro.netlist.lutcircuit import LutCircuit

_OPEN = "open"
_CLOCK = "clk"


@dataclass
class NetlistStructure:
    """Structure recovered from a ``.net`` file.

    ``blocks`` maps a block name to ``(inputs, registered)``; signal
    functions are not part of the format.
    """

    name: str
    k: int
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    blocks: Dict[str, Tuple[Tuple[str, ...], bool]] = field(
        default_factory=dict
    )

    def matches_circuit(self, circuit: LutCircuit) -> bool:
        """Structural equality with a mapped LUT circuit."""
        if set(self.inputs) != set(circuit.inputs):
            return False
        if set(self.outputs) != set(circuit.outputs):
            return False
        if set(self.blocks) != set(circuit.blocks):
            return False
        for name, (inputs, registered) in self.blocks.items():
            block = circuit.blocks[name]
            if tuple(block.inputs) != inputs:
                return False
            if block.registered != registered:
                return False
        return True


def write_net_file(circuit: LutCircuit, name: Optional[str] = None
                   ) -> str:
    """Render a mapped LUT circuit in ``.net`` format."""
    lines = [f"# netlist {name or circuit.name}", f".global {_CLOCK}",
             ""]
    for signal in circuit.inputs:
        lines.append(f".input {signal}")
        lines.append(f"pinlist: {signal}")
        lines.append("")
    for signal in circuit.outputs:
        lines.append(f".output out:{signal}")
        lines.append(f"pinlist: {signal}")
        lines.append("")
    any_registered = any(
        b.registered for b in circuit.blocks.values()
    )
    for block in circuit.blocks.values():
        pins = list(block.inputs)
        pins += [_OPEN] * (circuit.k - len(pins))
        clock = _CLOCK if block.registered else _OPEN
        lines.append(f".clb {block.name}")
        lines.append(
            "pinlist: " + " ".join([*pins, block.name, clock])
        )
        # subblock line: name, K input pin indices (or open), output
        # pin index, clock pin index (or open).
        sub = [block.name]
        sub += [
            str(i) if i < len(block.inputs) else _OPEN
            for i in range(circuit.k)
        ]
        sub.append(str(circuit.k))
        sub.append(str(circuit.k + 1) if block.registered else _OPEN)
        lines.append("subblock: " + " ".join(sub))
        lines.append("")
    if not any_registered:
        # Keep the .global clk declaration meaningful anyway; VPR
        # tolerates a clockless netlist.
        pass
    return "\n".join(lines)


def parse_net_file(text: str, k: int, name: str = "netlist"
                   ) -> NetlistStructure:
    """Parse a ``.net`` file into a :class:`NetlistStructure`.

    *k* must be the LUT size of the architecture the file was written
    for (VPR takes it from the arch file, which is separate).
    """
    structure = NetlistStructure(name=name, k=k)
    pending: Optional[Tuple[str, str]] = None  # (kind, name)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        if keyword == ".global":
            continue
        if keyword in (".input", ".output", ".clb"):
            if len(parts) != 2:
                raise InteropError(
                    f"line {line_no}: {keyword} takes one name"
                )
            pending = (keyword, parts[1])
            continue
        if keyword == "pinlist:":
            if pending is None:
                raise InteropError(
                    f"line {line_no}: pinlist outside a block"
                )
            kind, block_name = pending
            pins = parts[1:]
            if kind == ".input":
                if len(pins) != 1:
                    raise InteropError(
                        f"line {line_no}: .input pinlist must have "
                        "one pin"
                    )
                structure.inputs.append(pins[0])
            elif kind == ".output":
                if len(pins) != 1:
                    raise InteropError(
                        f"line {line_no}: .output pinlist must have "
                        "one pin"
                    )
                structure.outputs.append(pins[0])
            else:
                if len(pins) != k + 2:
                    raise InteropError(
                        f"line {line_no}: .clb pinlist must have "
                        f"{k + 2} pins (k inputs, output, clock)"
                    )
                inputs = tuple(
                    p for p in pins[:k] if p != _OPEN
                )
                output, clock = pins[k], pins[k + 1]
                if output != block_name:
                    raise InteropError(
                        f"line {line_no}: output pin {output!r} must "
                        f"match block name {block_name!r}"
                    )
                structure.blocks[block_name] = (
                    inputs, clock != _OPEN
                )
            continue
        if keyword == "subblock:":
            # Redundant with the pinlist for 1-subblock CLBs.
            continue
        raise InteropError(
            f"line {line_no}: unknown keyword {keyword!r}"
        )
    return structure
