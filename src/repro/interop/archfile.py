"""Classic VPR architecture files.

The format is the line-oriented description consumed by VPR 4.30 —
the version the paper's Java port and ``4lut_sanitized.arch`` follow.
Each non-comment line is a keyword followed by whitespace-separated
operands; ``#`` starts a comment.

Only the keywords that affect this reproduction's architecture model
are interpreted (grid-independent parameters: LUT size, IO capacity,
connection-block flexibility, switch-block style, segment length);
everything else is preserved verbatim so a file can round-trip through
:func:`parse_arch` / :func:`format_arch` without information loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.arch.architecture import FpgaArchitecture


class InteropError(ValueError):
    """A VPR-format file could not be parsed."""


#: A faithful stand-in for VPR's ``4lut_sanitized.arch``: one 4-LUT and
#: one flip-flop per logic block, two pads per IO location, fully
#: flexible connection blocks, unit-length segments.
DEFAULT_4LUT_ARCH = """\
# 4lut_sanitized-equivalent architecture (one 4-LUT + FF per block,
# unit-length wire segments).
io_rat 2
chan_width_io 1
chan_width_x uniform 1
chan_width_y uniform 1
outpin class: 1 top
inpin class: 0 bottom
inpin class: 0 left
inpin class: 0 top
inpin class: 0 right
subblocks_per_clb 1
subblock_lut_size 4
Fc_type fractional
Fc_output 1
Fc_input 1
Fc_pad 1
switch_block_type subset
segment frequency: 1 length: 1 wire_switch: 0 opin_switch: 0 \
Frac_cb: 1. Frac_sb: 1. Rmetal: 1 Cmetal: 1e-15
switch 0 buffered: yes R: 1 Cin: 1e-15 Cout: 1e-15 Tdel: 1e-10
R_minW_nmos 1
R_minW_pmos 1
"""


@dataclass
class ArchSpec:
    """Interpreted content of a VPR architecture file.

    ``extra_lines`` holds every line the model does not interpret, in
    file order, so formatting is lossless.
    """

    io_rat: int = 2
    subblock_lut_size: int = 4
    subblocks_per_clb: int = 1
    fc_type: str = "fractional"
    fc_output: float = 1.0
    fc_input: float = 1.0
    fc_pad: float = 1.0
    switch_block_type: str = "subset"
    segment_length: int = 1
    inpin_classes: List[Tuple[int, str]] = field(default_factory=list)
    outpin_classes: List[Tuple[int, str]] = field(default_factory=list)
    extra_lines: List[str] = field(default_factory=list)

    def validate(self) -> None:
        if self.io_rat < 1:
            raise InteropError("io_rat must be >= 1")
        if self.subblock_lut_size < 1:
            raise InteropError("subblock_lut_size must be >= 1")
        if self.subblocks_per_clb != 1:
            raise InteropError(
                "only subblocks_per_clb 1 is supported (the paper's "
                "architecture has one LUT+FF per block)"
            )
        if self.fc_type not in ("fractional", "absolute"):
            raise InteropError(
                f"unknown Fc_type {self.fc_type!r}"
            )
        if self.segment_length != 1:
            raise InteropError(
                "only unit-length segments are supported (the paper: "
                "'wire segments ... span one logic block')"
            )

    def to_architecture(
        self, nx: int, ny: int, channel_width: int
    ) -> FpgaArchitecture:
        """Instantiate the grid-level architecture model.

        VPR keeps the array size and channel width out of the
        architecture file (they are tool inputs), hence the
        parameters.  ``absolute`` Fc values are converted to fractions
        of the channel width.
        """
        self.validate()
        if self.fc_type == "fractional":
            fc_in, fc_out = self.fc_input, self.fc_output
        else:
            fc_in = min(1.0, self.fc_input / channel_width)
            fc_out = min(1.0, self.fc_output / channel_width)
        return FpgaArchitecture(
            nx=nx,
            ny=ny,
            k=self.subblock_lut_size,
            channel_width=channel_width,
            fc_in=fc_in,
            fc_out=fc_out,
            io_rat=self.io_rat,
        )


def _parse_pin_class(operands: List[str], line_no: int
                     ) -> Tuple[int, str]:
    # e.g. "class: 0 bottom"
    if len(operands) < 3 or operands[0] != "class:":
        raise InteropError(
            f"line {line_no}: expected 'class: <n> <side>'"
        )
    try:
        cls = int(operands[1])
    except ValueError:
        raise InteropError(
            f"line {line_no}: pin class must be an integer"
        ) from None
    return cls, operands[2]


def parse_arch(text: str) -> ArchSpec:
    """Parse a VPR architecture file into an :class:`ArchSpec`."""
    spec = ArchSpec()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword, operands = parts[0], parts[1:]

        def one_operand(cast, name=keyword, ops=operands, no=line_no):
            if len(ops) != 1:
                raise InteropError(
                    f"line {no}: {name} takes exactly one operand"
                )
            try:
                return cast(ops[0])
            except ValueError:
                raise InteropError(
                    f"line {no}: bad {name} operand {ops[0]!r}"
                ) from None

        if keyword == "io_rat":
            spec.io_rat = one_operand(int)
        elif keyword == "subblock_lut_size":
            spec.subblock_lut_size = one_operand(int)
        elif keyword == "subblocks_per_clb":
            spec.subblocks_per_clb = one_operand(int)
        elif keyword == "Fc_type":
            spec.fc_type = one_operand(str).lower()
        elif keyword == "Fc_output":
            spec.fc_output = one_operand(float)
        elif keyword == "Fc_input":
            spec.fc_input = one_operand(float)
        elif keyword == "Fc_pad":
            spec.fc_pad = one_operand(float)
        elif keyword == "switch_block_type":
            spec.switch_block_type = one_operand(str).lower()
        elif keyword == "inpin":
            spec.inpin_classes.append(
                _parse_pin_class(operands, line_no)
            )
        elif keyword == "outpin":
            spec.outpin_classes.append(
                _parse_pin_class(operands, line_no)
            )
        elif keyword == "segment":
            for key, value in zip(operands, operands[1:]):
                if key == "length:":
                    try:
                        spec.segment_length = int(value)
                    except ValueError:
                        raise InteropError(
                            f"line {line_no}: bad segment length"
                        ) from None
            spec.extra_lines.append(line)
        else:
            spec.extra_lines.append(line)
    spec.validate()
    return spec


def format_arch(spec: ArchSpec) -> str:
    """Render an :class:`ArchSpec` back into VPR arch-file text.

    ``parse_arch(format_arch(spec))`` reproduces the interpreted
    fields; uninterpreted lines are carried through verbatim.
    """
    spec.validate()
    lines = [
        f"io_rat {spec.io_rat}",
        f"subblocks_per_clb {spec.subblocks_per_clb}",
        f"subblock_lut_size {spec.subblock_lut_size}",
        f"Fc_type {spec.fc_type}",
        f"Fc_output {_fc(spec.fc_output)}",
        f"Fc_input {_fc(spec.fc_input)}",
        f"Fc_pad {_fc(spec.fc_pad)}",
        f"switch_block_type {spec.switch_block_type}",
    ]
    lines.extend(
        f"inpin class: {cls} {side}"
        for cls, side in spec.inpin_classes
    )
    lines.extend(
        f"outpin class: {cls} {side}"
        for cls, side in spec.outpin_classes
    )
    lines.extend(spec.extra_lines)
    return "\n".join(lines) + "\n"


def _fc(value: float) -> str:
    return str(int(value)) if value == int(value) else str(value)
