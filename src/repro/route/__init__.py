"""Routing: negotiated-congestion (PathFinder) routing on the RRG.

* :mod:`repro.route.router` — the connection-based PathFinder engine.
  It is *mode-aware*: occupancy is tracked per mode, so wires may be
  shared by different modes (their configuration bits become Boolean
  functions of the mode) while conflicts within one mode are negotiated
  away.  Routing a single-mode workload reduces it to the conventional
  VPR router used by the MDR baseline.
* :mod:`repro.route.vectorized` — the numpy-vectorized negotiation
  core (the default; ``REPRO_SCALAR_ROUTER=1`` restores the scalar
  reference, which stays bit-identical by construction).
* :mod:`repro.route.troute` — TRoute: builds the tunable-connection
  workload of a merged multi-mode circuit, routes it, and extracts the
  per-mode configurations and parameterised-bit counts.
"""

from repro.route.router import (
    PathFinderRouter,
    RouteRequest,
    RoutingResult,
    ScalarPathFinderRouter,
    scalar_router_forced,
)
from repro.route.troute import route_lut_circuit, route_tunable_circuit

__all__ = [
    "PathFinderRouter",
    "RouteRequest",
    "RoutingResult",
    "ScalarPathFinderRouter",
    "scalar_router_forced",
    "route_lut_circuit",
    "route_tunable_circuit",
]
