"""Connection-based, mode-aware PathFinder router.

PathFinder (McMurchie & Ebeling) negotiates congestion by repeatedly
ripping up and re-routing connections whose resources are overused,
with present-congestion and history costs steering later iterations
away from contested nodes.

Two extensions serve the multi-mode tool flow (both follow the
connection router of Vansteenkiste et al. that TRoute builds on):

* **Per-mode occupancy.**  Every connection carries an activation set
  of modes.  A routing node conflicts only when two *different* nets
  occupy it in the *same* mode — wires may be time-multiplexed between
  modes, which is exactly what turns switch bits into Boolean functions
  of the mode.
* **Trunk sharing.**  Connections of the same net (same source signal)
  may overlap freely; the search frontier is seeded with every node the
  net already occupies in all modes of the connection being routed, so
  per-net route trees form naturally even though routing is
  connection-by-connection (this is VPR's multi-sink expansion applied
  per connection).
* **Bit sharing.**  A switch bit is *parameterised* only when it is on
  in some modes and off in others.  With ``bit_affinity < 1`` the
  search discounts edges whose bit is already on in every mode outside
  the connection's activation set — taking such a switch turns its bit
  into a static one instead of a parameterised bit, which is precisely
  the quantity the paper's Fig. 6 merge effect measures.  After
  congestion is resolved, optional ``sharing_passes`` sweeps rip up and
  reroute every net with these discounts active, keeping the legal
  solution with the fewest parameterised bits.

The search is multi-source A* with an admissible Manhattan-distance
heuristic: every node beyond the frontier costs at least its unit base
cost, so the heuristic never overestimates.  ``lookahead=`` swaps in
the precomputed fabric lower bounds of
:mod:`repro.route.lookahead` (tighter, still admissible), and
``partial_ripup=True`` keeps a dirty net's congestion-free subtrees
across rip-up; both are opt-in because they change equal-cost
tie-breaks relative to the defaults.

Two interchangeable negotiation cores implement the search:

* the **scalar reference** in this module — pure Python, priced one
  node at a time (the implementation every result is defined
  against);
* the **vectorized core** (:mod:`repro.route.vectorized`) — numpy
  array math over the same CSR views, bit-identical by construction
  and roughly twice as fast on real workloads.

``PathFinderRouter(...)`` constructs the vectorized core by default;
``REPRO_SCALAR_ROUTER=1`` in the environment (or numpy being
unavailable) swaps the scalar reference back in everywhere.  Tests
that need a specific core regardless of the environment instantiate
:class:`ScalarPathFinderRouter` or
:class:`~repro.route.vectorized.VectorizedPathFinderRouter` directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.arch.rrg import OPIN, SINK, WIRE, RoutingResourceGraph
from repro.route.searchkernel import (
    RouterStats,
    scalar_search,
    scalar_search_timed,
)


@dataclass(frozen=True)
class RouteRequest:
    """One tunable connection to route.

    ``net`` identifies the source signal (connections of one net may
    share wires); ``modes`` is the activation set — the connection only
    exists in those modes.  ``source``/``sink`` are RRG node ids (an
    OPIN and a SINK).
    """

    conn_id: int
    net: str
    source: int
    sink: int
    modes: FrozenSet[int]


@dataclass
class ConnectionRoute:
    """Routed path of one connection: RRG edges source -> sink."""

    request: RouteRequest
    edges: List[Tuple[int, int, int]]  # (from, to, bit)

    def nodes(self) -> List[int]:
        # The edge list never changes after construction and nodes()
        # runs once per mode on every add/remove/congestion check, so
        # the path is materialised once per route.
        cached = self.__dict__.get("_nodes")
        if cached is not None:
            return cached
        if not self.edges:
            result: List[int] = []
        else:
            result = [self.edges[0][0]]
            result.extend(edge[1] for edge in self.edges)
        self.__dict__["_nodes"] = result
        return result

    def __getstate__(self):
        return {"request": self.request, "edges": self.edges}

    def __setstate__(self, state):
        self.__dict__.update(state)

    def bits(self) -> Set[int]:
        return {bit for _u, _v, bit in self.edges if bit >= 0}

    def wire_nodes(self, rrg: RoutingResourceGraph) -> Set[int]:
        return {
            n for n in self.nodes() if rrg.node_kind[n] == WIRE
        }


class RoutingError(RuntimeError):
    """Raised when the router cannot find a legal solution."""


@dataclass
class RoutingTiming:
    """Timing context of a timing-driven routing run.

    ``criticality`` maps connection ids to *sharpened* criticalities
    in ``[0, 1)`` (see :mod:`repro.timing.criticality`); connections
    absent from the map route purely on congestion.  ``model`` is the
    shared :class:`~repro.timing.delay.DelayModel` (annotated loosely
    to avoid a circular import — ``repro.timing``'s package init pulls
    this module in).

    A connection with criticality ``w`` is priced VPR-style:

    ``edge cost = w * delay(edge) + (1 - w) * congestion cost``

    so critical connections buy short paths while relaxed ones keep
    negotiating congestion; ``w < 1`` always (the criticality cap),
    hence overuse never becomes free and PathFinder still converges.
    """

    model: "object"  # repro.timing.delay.DelayModel
    criticality: Dict[int, float]


@dataclass
class RoutingResult:
    """All routed connections plus per-mode summaries."""

    rrg: RoutingResourceGraph
    routes: Dict[int, ConnectionRoute]
    n_modes: int
    iterations: int

    def bits_on(self, mode: int) -> Set[int]:
        """Switch bits that are *on* in *mode*."""
        bits: Set[int] = set()
        for route in self.routes.values():
            if mode in route.request.modes:
                bits |= route.bits()
        return bits

    def wires_used(self, mode: int) -> Set[int]:
        """WIRE nodes used by *mode* (the paper's Fig. 7 metric)."""
        wires: Set[int] = set()
        for route in self.routes.values():
            if mode in route.request.modes:
                wires |= route.wire_nodes(self.rrg)
        return wires

    def total_wirelength(self, mode: int) -> int:
        return len(self.wires_used(mode))


def validate_routing(result: "RoutingResult") -> None:
    """Check a finished routing for legality and connectivity.

    Raises ``AssertionError`` when any invariant fails:

    * per mode, no node carries more distinct nets than its capacity;
    * every connection's edge list is a contiguous path ending at its
      sink, using edges that exist in the RRG;
    * every connection is electrically connected: its path starts at
      the net's source or at a node another connection of the same net
      (covering the same modes) drives.
    """
    rrg = result.rrg
    # Per (mode, node): distinct nets.
    users: Dict[Tuple[int, int], Set[str]] = {}
    for route in result.routes.values():
        for mode in route.request.modes:
            for node in route.nodes():
                users.setdefault((mode, node), set()).add(
                    route.request.net
                )
    for (mode, node), nets in users.items():
        assert len(nets) <= rrg.node_capacity[node], (
            f"node {rrg.describe(node)} carries {len(nets)} nets "
            f"in mode {mode}"
        )
    edge_set = {
        (src, dst)
        for src in range(rrg.n_nodes)
        for dst, _bit in rrg.adjacency[src]
    }
    # Nodes reachable from each net's source, per mode, built
    # incrementally (paths may chain through other connections).
    for route in result.routes.values():
        nodes = route.nodes()
        if not nodes:
            continue
        for (u, v, _bit), a, b in zip(
            route.edges, nodes, nodes[1:]
        ):
            assert (u, v) == (a, b), "edge list is not a path"
            assert (u, v) in edge_set, "edge missing from RRG"
        assert nodes[-1] == route.request.sink, "path misses sink"
    for mode in range(result.n_modes):
        # per net: grow reachable set from the source.
        by_net: Dict[str, List[ConnectionRoute]] = {}
        source_of: Dict[str, int] = {}
        for route in result.routes.values():
            if mode not in route.request.modes:
                continue
            by_net.setdefault(route.request.net, []).append(route)
            source_of[route.request.net] = route.request.source
        for net, routes in by_net.items():
            reachable = {source_of[net]}
            pending = list(routes)
            progress = True
            while pending and progress:
                progress = False
                remaining = []
                for route in pending:
                    nodes = route.nodes()
                    if not nodes or nodes[0] in reachable:
                        reachable.update(nodes)
                        progress = True
                    else:
                        remaining.append(route)
                pending = remaining
            assert not pending, (
                f"net {net}: {len(pending)} connections stranded "
                f"from the source in mode {mode}"
            )


def scalar_router_forced() -> bool:
    """True when ``REPRO_SCALAR_ROUTER`` selects the scalar core."""
    return bool(os.environ.get("REPRO_SCALAR_ROUTER"))


class PathFinderRouter:
    """Negotiated-congestion router over a routing-resource graph.

    Constructing this class picks the negotiation core: the
    numpy-vectorized one by default, the scalar reference in this
    module under ``REPRO_SCALAR_ROUTER=1`` (or when numpy is
    missing).  Both produce bit-identical results; subclasses are
    never re-dispatched.
    """

    def __new__(cls, *args, **kwargs):
        if cls is PathFinderRouter and not scalar_router_forced():
            try:
                from repro.route.vectorized import (
                    VectorizedPathFinderRouter,
                )
            except ImportError:
                # numpy unavailable: the scalar reference is the
                # fallback, not a failure.
                return super().__new__(cls)
            if kwargs.get("batched"):
                from repro.route.batched import (
                    BatchedPathFinderRouter,
                )
                return super().__new__(BatchedPathFinderRouter)
            return super().__new__(VectorizedPathFinderRouter)
        return super().__new__(cls)

    def __init__(
        self,
        rrg: RoutingResourceGraph,
        n_modes: int = 1,
        max_iterations: int = 40,
        pres_fac_first: float = 0.6,
        pres_fac_mult: float = 1.8,
        acc_fac: float = 1.0,
        astar_fac: float = 1.0,
        net_affinity: float = 1.0,
        bit_affinity: float = 1.0,
        sharing_passes: int = 0,
        timing: Optional[RoutingTiming] = None,
        batched: bool = False,
        route_workers: int = 1,
        stats: Optional[RouterStats] = None,
        lookahead=None,
        partial_ripup: bool = False,
    ) -> None:
        # The batched-wavefront knobs are accepted (and recorded) by
        # every core so call sites can thread them unconditionally:
        # ``batched=True`` selects the batched core at dispatch time
        # (unless ``REPRO_SCALAR_ROUTER`` forces the reference, the
        # escape hatch trumping everything); the scalar/vectorized
        # cores ignore them otherwise.  ``stats`` collects
        # :class:`RouterStats` counters where the core supports them.
        self.batched = bool(batched)
        self.route_workers = max(1, int(route_workers))
        self.stats = stats
        # ``lookahead`` swaps the Manhattan heuristic for precomputed
        # fabric lower bounds (:mod:`repro.route.lookahead`); accepts
        # the raw tables (as stored in the stage cache) or a prebuilt
        # wrapper.  ``partial_ripup`` keeps a dirty net's
        # congestion-free, still-anchored subtrees across rip-up (see
        # :meth:`_partial_keep`).  Both change tie-breaks versus the
        # defaults, so like the batched core they are opt-in and
        # QoR-gated rather than bit-compared against the baseline —
        # but with either enabled the scalar and vectorized cores
        # remain bit-identical to each other.
        self.lookahead = None
        if lookahead is not None:
            from repro.route.lookahead import (
                LookaheadTables,
                RouterLookahead,
            )
            if isinstance(lookahead, LookaheadTables):
                lookahead = RouterLookahead(rrg, lookahead)
            self.lookahead = lookahead
        self.partial_ripup = bool(partial_ripup)
        self.rrg = rrg
        self.n_modes = n_modes
        self.max_iterations = max_iterations
        self.pres_fac_first = pres_fac_first
        self.pres_fac_mult = pres_fac_mult
        self.acc_fac = acc_fac
        # net_affinity < 1 discounts nodes the same net already uses
        # in *other* modes, steering a mode's connections onto the
        # wires its sibling modes use: overlapping wires hold the same
        # value in every overlapped mode, so their switch bits stop
        # being mode-dependent.  The A* weight is capped at the
        # affinity so the heuristic stays admissible.
        if not 0.0 < net_affinity <= 1.0:
            raise ValueError("net_affinity must be in (0, 1]")
        # bit_affinity < 1 discounts switches whose bit is already on
        # in every mode the connection is *not* active in: taking the
        # switch makes its bit static-one rather than parameterised.
        if not 0.0 < bit_affinity <= 1.0:
            raise ValueError("bit_affinity must be in (0, 1]")
        if sharing_passes < 0:
            raise ValueError("sharing_passes must be >= 0")
        self.net_affinity = net_affinity
        self.bit_affinity = bit_affinity
        self.sharing_passes = sharing_passes
        # Both discounts can compound on one step, so the admissible
        # per-node floor is their product.
        self.astar_fac = min(astar_fac, net_affinity * bit_affinity)

        n = rrg.n_nodes
        # occupancy[mode][node] = number of distinct nets on the node.
        self._occ = [[0] * n for _ in range(n_modes)]
        self._hist = [0.0] * n
        # (net, mode) -> node -> reference count.
        self._net_mode_refs: Dict[Tuple[str, int], Dict[int, int]] = {}
        # per mode: bit -> number of routes turning the bit on.
        self._bit_refs: List[Dict[int, int]] = [
            {} for _ in range(n_modes)
        ]
        # (mode, node) pairs currently over capacity, maintained at
        # the occupancy-mutation points so congestion checks never
        # rescan the whole graph.
        self._overused: Set[Tuple[int, int]] = set()
        # Flat graph views (precomputed once per RRG) and reusable
        # search scratch: dist/parent/visited are epoch-stamped arrays,
        # so starting a new search is O(1) instead of allocating fresh
        # dicts for every one of the thousands of connection routes.
        self._row_ptr, self._edge_dst, self._edge_bit = (
            rrg.neighbor_arrays()
        )
        self._base = rrg.base_cost_array()
        self._parent_node = [-1] * n
        self._parent_bit = [-1] * n
        self._epoch = 0
        self._init_scratch(n)
        # Timing-driven context: per-node intrinsic delays are
        # precomputed once so the timed relaxation loop reads a flat
        # array, exactly like the congestion arrays above.
        self.timing = timing
        self._node_delay: Optional[List[float]] = None
        if timing is not None:
            model = timing.model
            self._node_delay = [
                model.node_delay(rrg, node) for node in range(n)
            ]

    def _init_scratch(self, n: int) -> None:
        """Search scratch of the scalar relaxation loops.

        Epoch-stamped distance/visited arrays plus the per-search
        node-pricing cache: within one connection search a node's
        cost is bit-independent except for the bit-affinity
        multiplier, so the expensive part (occupancy, history, net
        affinity, noise) is computed once per node per search instead
        of once per incoming edge.  The vectorized core overrides
        this with its own (array-priced) scratch.
        """
        self._dist = [0.0] * n
        self._dist_epoch = [0] * n
        self._visited_epoch = [0] * n
        self._price = [0.0] * n
        self._price_over0 = [False] * n
        self._price_noise = [0.0] * n
        self._price_epoch = [0] * n

    def _history_updated(self) -> None:
        """Hook: the negotiation loop just raised history costs.

        The scalar loops read ``self._hist`` directly, so nothing to
        do here; the vectorized core uses it to drop price vectors
        built against the old history (it must not rely on
        ``pres_fac`` changing alongside — ``pres_fac_mult`` may
        legitimately be 1.0).
        """

    # -- occupancy bookkeeping ---------------------------------------------

    def _add_route(self, route: ConnectionRoute) -> None:
        net = route.request.net
        bits = route.bits()
        cap = self.rrg.node_capacity
        overused = self._overused
        nodes = route.nodes()
        for mode in route.request.modes:
            refs = self._net_mode_refs.setdefault((net, mode), {})
            occ = self._occ[mode]
            for node in nodes:
                count = refs.get(node, 0)
                if count == 0:
                    occ[node] += 1
                    if occ[node] > cap[node]:
                        overused.add((mode, node))
                refs[node] = count + 1
            bit_refs = self._bit_refs[mode]
            for bit in bits:
                bit_refs[bit] = bit_refs.get(bit, 0) + 1

    def _remove_route(self, route: ConnectionRoute) -> None:
        net = route.request.net
        bits = route.bits()
        cap = self.rrg.node_capacity
        overused = self._overused
        nodes = route.nodes()
        for mode in route.request.modes:
            refs = self._net_mode_refs[(net, mode)]
            occ = self._occ[mode]
            for node in nodes:
                refs[node] -= 1
                if refs[node] == 0:
                    del refs[node]
                    occ[node] -= 1
                    if occ[node] <= cap[node]:
                        overused.discard((mode, node))
            bit_refs = self._bit_refs[mode]
            for bit in bits:
                bit_refs[bit] -= 1
                if bit_refs[bit] == 0:
                    del bit_refs[bit]

    def _net_uses(self, net: str, mode: int, node: int) -> bool:
        refs = self._net_mode_refs.get((net, mode))
        return bool(refs) and node in refs

    def _bit_becomes_static(
        self, bit: int, modes: FrozenSet[int]
    ) -> bool:
        """True when turning *bit* on in *modes* leaves it on in every
        mode, i.e. the bit ends up a static one instead of a
        parameterised bit."""
        for mode in range(self.n_modes):
            if mode in modes:
                continue
            if not self._bit_refs[mode].get(bit):
                return False
        return True

    # -- cost model --------------------------------------------------------

    def _node_cost(
        self, node: int, request: RouteRequest, pres_fac: float,
        net_salt: int, bit: int = -1,
    ) -> float:
        rrg = self.rrg
        cap = rrg.node_capacity[node]
        kind = rrg.node_kind[node]
        base = 0.0 if kind == SINK else 1.0
        overuse = 0
        for mode in request.modes:
            already = self._net_uses(request.net, mode, node)
            occ_after = self._occ[mode][node] + (0 if already else 1)
            if occ_after > cap:
                overuse += occ_after - cap
        cost = (base + self._hist[node]) * (1.0 + pres_fac * overuse)
        if self.net_affinity < 1.0 and kind == WIRE and overuse == 0:
            # Cross-mode affinity: prefer wires the net already drives
            # in some other mode (their bits become static).
            for mode in range(self.n_modes):
                if mode not in request.modes and self._net_uses(
                    request.net, mode, node
                ):
                    cost *= self.net_affinity
                    break
        if (
            self.bit_affinity < 1.0
            and bit >= 0
            and overuse == 0
            and len(request.modes) < self.n_modes
            and self._bit_becomes_static(bit, request.modes)
        ):
            # Bit-sharing affinity: a switch already on in all the
            # other modes costs nothing extra to reconfigure.
            cost *= self.bit_affinity
        # Deterministic per-(net, node) jitter breaks the symmetric
        # ties that otherwise let two equal-cost nets swap the same
        # pair of resources forever (a PathFinder livelock).  The
        # jitter is non-negative, so the heuristic stays admissible.
        noise = ((net_salt ^ (node * 0x9E3779B9)) & 0xFFFF) / 0xFFFF
        return cost + 0.01 * noise

    def _trunk_nodes(self, request: RouteRequest) -> List[int]:
        """Nodes the net already occupies in *every* mode of the
        request — free starting points for the search (the net's
        existing route tree, as in VPR's multi-sink routing)."""
        modes = sorted(request.modes)
        refs0 = self._net_mode_refs.get((request.net, modes[0]))
        if not refs0:
            return []
        trunk = set(refs0)
        for mode in modes[1:]:
            refs = self._net_mode_refs.get((request.net, mode))
            if not refs:
                return []
            trunk &= refs.keys()
        # No ordering needed: the caller unions these into its start
        # set (int sets iterate identically in every process).
        # repro: allow[RPR003] consumer is order-insensitive (set union)
        return list(trunk)

    # -- search --------------------------------------------------------------

    def _route_connection(
        self, request: RouteRequest, pres_fac: float
    ) -> ConnectionRoute:
        """Route one connection with the scalar reference kernel.

        The relaxation loops themselves live in
        :mod:`repro.route.searchkernel` (shared with the vectorized
        and batched cores); this method owns the timing dispatch and
        the error path.  Timing-driven connections (a criticality
        above 0 in ``self.timing``) route through the timed twin
        :meth:`_route_connection_timed`; keeping the two kernels
        separate leaves the untimed one byte-identical to the
        reference, so wirelength-driven results cannot drift.
        """
        timing = self.timing
        if timing is not None:
            crit = timing.criticality.get(request.conn_id, 0.0)
            if crit > 0.0:
                return self._route_connection_timed(
                    request, pres_fac, crit
                )
        edges = scalar_search(self, request, pres_fac)
        if edges is None:
            raise RoutingError(
                f"no path from {self.rrg.describe(request.source)} "
                f"to {self.rrg.describe(request.sink)}"
            )
        return ConnectionRoute(request, edges)

    def _route_connection_timed(
        self, request: RouteRequest, pres_fac: float, crit: float
    ) -> ConnectionRoute:
        """Timed twin of :meth:`_route_connection` (same kernel
        module, criticality-blended edge costs)."""
        edges = scalar_search_timed(self, request, pres_fac, crit)
        if edges is None:
            raise RoutingError(
                f"no path from {self.rrg.describe(request.source)} "
                f"to {self.rrg.describe(request.sink)}"
            )
        return ConnectionRoute(request, edges)

    # -- main loop -----------------------------------------------------------

    def _order_nets(
        self, requests: Sequence[RouteRequest]
    ) -> Tuple[Dict[str, List[RouteRequest]], List[str]]:
        """Group *requests* by net and fix the negotiation order.

        Rip-up and reroute happens at net granularity: later
        connections of a net branch off the tree built by its earlier
        connections (trunk seeding), so removing a single connection
        could strand the ones that grew from it.  Within one net:
        shared (multi-mode) connections first, then long before
        short, so the trunk is laid by the connections with the
        widest reach; nets themselves go longest-reach first.

        ``_manhattan`` is memoized per request for the call — the
        sort keys would otherwise recompute it O(nets·conns·log)
        every routing.
        """
        man: Dict[int, int] = {
            request.conn_id: self._manhattan(request)
            for request in requests
        }
        by_net: Dict[str, List[RouteRequest]] = {}
        for request in requests:
            by_net.setdefault(request.net, []).append(request)
        for net in by_net:
            by_net[net].sort(
                key=lambda r: (
                    -len(r.modes),
                    -man[r.conn_id],
                    r.conn_id,
                ),
            )
        net_order = sorted(
            by_net,
            key=lambda net: -max(
                man[r.conn_id] for r in by_net[net]
            ),
        )
        return by_net, net_order

    def _partial_keep(
        self,
        net_requests: List[RouteRequest],
        routes: Dict[int, ConnectionRoute],
        congested_set: Set[int],
    ) -> Set[int]:
        """Connections of one dirty net that survive a partial rip-up.

        A route is kept when (a) it touches no congested node and
        (b) it stays *anchored*: starting from the net's source, the
        kept routes must chain into a connected tree in **every** mode
        — the same per-mode fixpoint :func:`validate_routing` checks.
        Routes whose first node hangs off a ripped branch are dropped
        until the fixpoint stabilises, so trunk seeding over the
        survivors can never produce a stranded connection.
        """
        keep: Dict[int, ConnectionRoute] = {}
        for request in net_requests:
            route = routes.get(request.conn_id)
            if route is None:
                continue
            if congested_set.intersection(route.nodes()):
                continue
            keep[request.conn_id] = route
        if not keep:
            return set()
        source = net_requests[0].source
        while True:
            dropped = False
            modes = sorted(
                {
                    mode
                    for route in keep.values()
                    for mode in route.request.modes
                }
            )
            for mode in modes:
                pending = [
                    route
                    for route in keep.values()
                    if mode in route.request.modes
                ]
                reachable = {source}
                progress = True
                while pending and progress:
                    progress = False
                    remaining = []
                    for route in pending:
                        nodes = route.nodes()
                        if not nodes or nodes[0] in reachable:
                            reachable.update(nodes)
                            progress = True
                        else:
                            remaining.append(route)
                    pending = remaining
                if pending:
                    for route in pending:
                        keep.pop(route.request.conn_id, None)
                    dropped = True
            if not dropped:
                return set(keep)

    def route(
        self, requests: Sequence[RouteRequest]
    ) -> RoutingResult:
        """Route all *requests*; raises :class:`RoutingError` on failure."""
        for request in requests:
            if max(request.modes, default=0) >= self.n_modes:
                raise ValueError(
                    "request mode exceeds router's n_modes"
                )
        by_net, net_order = self._order_nets(requests)

        routes: Dict[int, ConnectionRoute] = {}
        pres_fac = self.pres_fac_first
        iteration = 0
        to_route: List[str] = list(net_order)
        partial = self.partial_ripup
        congested_set: Set[int] = set()
        while iteration < self.max_iterations:
            iteration += 1
            for net in to_route:
                net_requests = by_net[net]
                # Partial rip-up: keep the net's congestion-free,
                # still-anchored subtrees registered — their nodes
                # stay in the trunk, so rerouted branches get them as
                # free multi-source seeds.
                keep = (
                    self._partial_keep(
                        net_requests, routes, congested_set
                    )
                    if partial and congested_set
                    else ()
                )
                for request in net_requests:
                    if request.conn_id in keep:
                        continue
                    old = routes.pop(request.conn_id, None)
                    if old is not None:
                        self._remove_route(old)
                for request in net_requests:
                    if request.conn_id in keep:
                        continue
                    route = self._route_connection(request, pres_fac)
                    self._add_route(route)
                    routes[request.conn_id] = route
            congested = self._congested_nodes()
            if not congested:
                routes = self._improve_bit_sharing(
                    routes, by_net, net_order, pres_fac
                )
                return RoutingResult(
                    self.rrg, routes, self.n_modes, iteration
                )
            # Update history, raise present cost, reroute only the
            # nets crossing congested nodes.
            for node, overuse in congested.items():
                self._hist[node] += self.acc_fac * overuse
            self._history_updated()
            pres_fac *= self.pres_fac_mult
            congested_set = set(congested)
            dirty = set()
            for route in routes.values():
                if congested_set.intersection(route.nodes()):
                    dirty.add(route.request.net)
            to_route = [net for net in net_order if net in dirty]
            # Rotate the reroute order each iteration so two
            # contending nets do not replay the exact same sequence
            # of decisions forever.
            if len(to_route) > 1:
                shift = iteration % len(to_route)
                to_route = to_route[shift:] + to_route[:shift]
        raise RoutingError(
            f"unroutable after {self.max_iterations} iterations "
            f"({len(self._congested_nodes())} congested nodes)"
        )

    # -- bit-sharing improvement ---------------------------------------------

    def _parameterized_bit_count(
        self, routes: Dict[int, ConnectionRoute]
    ) -> int:
        """Bits on in some but not all modes (the Fig. 6 DCS metric)."""
        per_mode: List[Set[int]] = [set() for _ in range(self.n_modes)]
        for route in routes.values():
            bits = route.bits()
            for mode in route.request.modes:
                per_mode[mode] |= bits
        union: Set[int] = set()
        intersection: Optional[Set[int]] = None
        for bits in per_mode:
            union |= bits
            intersection = (
                set(bits) if intersection is None
                else intersection & bits
            )
        return len(union - (intersection or set()))

    def _rebuild_state(
        self, routes: Dict[int, ConnectionRoute]
    ) -> None:
        """Reset occupancy bookkeeping to exactly *routes*."""
        for occ in self._occ:
            for node in range(len(occ)):
                occ[node] = 0
        self._net_mode_refs.clear()
        self._overused.clear()
        for refs in self._bit_refs:
            refs.clear()
        for route in routes.values():
            self._add_route(route)

    def _improve_bit_sharing(
        self,
        routes: Dict[int, ConnectionRoute],
        by_net: Dict[str, List[RouteRequest]],
        net_order: List[str],
        pres_fac: float,
    ) -> Dict[int, ConnectionRoute]:
        """Post-convergence sweeps that reroute every net with the
        bit-sharing discounts active.

        Congestion-free routing is a precondition; each sweep rips up
        and reroutes whole nets at the current present-cost level so
        legality pressure stays on.  The sweep result is kept only when
        it is still congestion-free and strictly reduces the number of
        parameterised bits, otherwise the previous best is restored.
        """
        if (
            self.sharing_passes <= 0
            or self.n_modes <= 1
            or self.bit_affinity >= 1.0
        ):
            return routes
        best = dict(routes)
        best_count = self._parameterized_bit_count(best)
        current = dict(routes)
        for _sweep in range(self.sharing_passes):
            for net in net_order:
                for request in by_net[net]:
                    old = current.pop(request.conn_id, None)
                    if old is not None:
                        self._remove_route(old)
                for request in by_net[net]:
                    route = self._route_connection(request, pres_fac)
                    self._add_route(route)
                    current[request.conn_id] = route
            if self._congested_nodes():
                break
            count = self._parameterized_bit_count(current)
            if count < best_count:
                best = dict(current)
                best_count = count
            else:
                break
        self._rebuild_state(best)
        return best

    def _manhattan(self, request: RouteRequest) -> int:
        rrg = self.rrg
        return abs(
            rrg.node_x[request.source] - rrg.node_x[request.sink]
        ) + abs(rrg.node_y[request.source] - rrg.node_y[request.sink])

    def congestion(self) -> Dict[int, int]:
        """Currently overused nodes -> total overuse (empty = legal)."""
        return self._congested_nodes()

    def _congested_nodes(self) -> Dict[int, int]:
        """node -> total overuse across modes.

        Derived from the incrementally maintained overuse set, so the
        check is proportional to the congestion, not the graph.
        """
        result: Dict[int, int] = {}
        cap = self.rrg.node_capacity
        for mode, node in self._overused:
            result[node] = result.get(node, 0) + (
                self._occ[mode][node] - cap[node]
            )
        return result


class ScalarPathFinderRouter(PathFinderRouter):
    """The scalar reference core, unconditionally.

    A/B harnesses (the equivalence tests, ``repro bench-exec``'s
    ``router_vectorized`` phase) need the reference implementation
    regardless of ``REPRO_SCALAR_ROUTER``; this subclass bypasses the
    construction-time dispatch and inherits the scalar loops
    unchanged.
    """
