"""The one search-kernel module behind every PathFinder core.

Before this module the repo carried three near-identical copies of the
connection-search loop: the scalar reference pair in
``route/router.py`` (untimed + timed, with the per-search price cache
inlined) and the four vectorized loops in ``route/vectorized.py``
(untimed/timed x with/without the bit-sharing discount).  TRoute
dispatches through :class:`~repro.route.router.PathFinderRouter`, so
unifying the loops here puts **every** router entry point — MDR
routing, TRoute, the bit-sharing sweeps — behind one kernel module,
and a new queue discipline lands in exactly one place.

Three kernel families live here:

``scalar_search`` / ``scalar_search_timed``
    The reference loops, moved verbatim from ``router.py`` (the
    router object is duck-typed in; the bodies are unchanged).  These
    define bit-exactness.

``heap_search_untimed`` / ``heap_search_timed``
    The vectorized core's binary-heap loops.  The with/without-bit
    variants collapsed into one kernel each: with an **empty**
    ``static_set`` the per-edge test ``bit >= 0 and bit in
    static_set`` is always false and the kernel evaluates the exact
    same float expression as the old no-bit loop — merging is
    decision-for-decision identical, which the equivalence suite
    (``tests/test_router_equivalence.py``) continues to assert.

``bucket_search_untimed`` / ``bucket_search_timed``
    The batched-wavefront engine: a bucket (delta-stepping) priority
    queue over the quantized ``f = g + h`` grid.  Each "pop" drains
    the entire lowest bucket and numpy prices the whole frontier in
    one shot — CSR edge expansion, cost blend, per-destination
    canonical minimum — instead of relaxing one edge at a time.

**Bucket quantization contract.**  The bucket width ``delta`` is the
minimum additive node price over non-sink nodes (timed: the
criticality blend of the minimum congestion price and the minimum
edge delay), so along any path every hop advances ``f`` by at least
one bucket.  Entries within one bucket settle together without
intra-bucket re-relaxation, so a settled label may exceed the true
optimum by up to ``delta`` per bucket boundary crossed — the batched
core therefore does **not** promise bit-identity with the scalar
reference; it is gated by the QoR campaign tolerances instead.  What
it does promise is determinism: bucket membership, drain order
(lowest bucket first) and the per-destination winner (lowest ``ng``,
then lowest source node, then lowest bit, via a stable lexsort) are
pure functions of the price state, independent of worker count,
scheduling or memory layout.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.rrg import SINK as _SINK, WIRE as _WIRE

try:  # numpy is optional at import time: the scalar reference path
    import numpy as np  # must stay importable without it.
except ImportError:  # pragma: no cover - exercised implicitly
    np = None  # type: ignore[assignment]

_INF = float("inf")
_NEG_INF = float("-inf")

#: Shared empty static-bit set: passed to the heap kernels when no
#: bit-sharing discount is live, making the merged kernels evaluate
#: the exact expressions of the old no-bit loops.
EMPTY_STATIC: frozenset = frozenset()


@dataclass
class RouterStats:
    """Profiling counters of every search kernel family.

    Filled by the scalar, heap and bucket kernels (pass a
    ``RouterStats`` to the router's ``stats=`` keyword; the batched
    core creates one unconditionally) and surfaced through the
    ``router_*`` phases of ``repro bench-exec`` (BENCH_exec.json
    schema 5), where the per-core pop counts attribute exactly what a
    tighter heuristic saves.  Plain ints so the object is trivially
    picklable and mergeable.
    """

    #: queue extractions: heap pops including stale entries; for the
    #: bucket kernels, nodes drained (one frontier counts its width).
    pops: int = 0
    #: queue insertions (heap pushes / bucket queue improvements),
    #: including the start seeds.
    pushes: int = 0
    #: nodes settled: pops that survive the staleness check and
    #: expand their fanout (bucket kernels settle whole frontiers).
    settled: int = 0
    #: bucket drains (the batched analogue of a heap pop).
    drains: int = 0
    #: connection searches run.
    searches: int = 0
    #: widest single drained frontier.
    max_frontier: int = 0
    #: sum of drained frontier widths (mean = frontier_nodes/drains).
    frontier_nodes: int = 0
    #: nets replayed by the deterministic conflict-resolution pass.
    conflict_replays: int = 0
    #: parallel negotiation rounds executed.
    parallel_rounds: int = 0

    def merge(self, other: "RouterStats") -> None:
        self.pops += other.pops
        self.pushes += other.pushes
        self.settled += other.settled
        self.drains += other.drains
        self.searches += other.searches
        self.max_frontier = max(self.max_frontier, other.max_frontier)
        self.frontier_nodes += other.frontier_nodes
        self.conflict_replays += other.conflict_replays
        self.parallel_rounds += other.parallel_rounds

    def as_dict(self) -> Dict[str, float]:
        return {
            "pops": self.pops,
            "pushes": self.pushes,
            "settled": self.settled,
            "drains": self.drains,
            "searches": self.searches,
            "max_frontier": self.max_frontier,
            "mean_frontier": (
                self.frontier_nodes / self.drains if self.drains else 0.0
            ),
            "conflict_replays": self.conflict_replays,
            "parallel_rounds": self.parallel_rounds,
        }


# -- scalar reference kernels ---------------------------------------------
#
# Moved verbatim from PathFinderRouter._route_connection /
# _route_connection_timed; the router object is duck-typed in.  The
# kernels return the edge list of the found path, or None when the
# sink is unreachable (the caller owns the RoutingError message).


def scalar_search(
    router, request, pres_fac: float
) -> Optional[List[Tuple[int, int, int]]]:
    """Reference multi-source A* (untimed): ``_node_cost`` inlined
    into the relaxation loop with the per-connection-constant parts
    hoisted out, so decisions are bit-identical to the pure cost
    model while avoiding a method call per scanned edge."""
    rrg = router.rrg
    target = request.sink
    node_x = rrg.node_x
    node_y = rrg.node_y
    tx, ty = node_x[target], node_y[target]
    net_salt = zlib.crc32(request.net.encode())
    astar_fac = router.astar_fac
    net = request.net
    # Lookahead heuristic: the same scaled per-target list the
    # vectorized kernel reads, so enabling it keeps the two cores
    # bit-identical to each other.
    lookahead = router.lookahead
    lk = (
        lookahead.cost_list_scaled(target, astar_fac)
        if lookahead is not None
        else None
    )
    stats = router.stats
    n_pops = n_pushes = n_settled = 0

    # Per-connection-constant context of the cost model.
    kinds = rrg.node_kind
    caps = rrg.node_capacity
    bases = router._base
    hist = router._hist
    refs_by_mode = [
        (router._occ[mode], router._net_mode_refs.get((net, mode)))
        for mode in request.modes
    ]
    net_affinity = router.net_affinity
    use_net_affinity = net_affinity < 1.0
    other_refs = (
        [
            refs
            for mode in range(router.n_modes)
            if mode not in request.modes
            and (refs := router._net_mode_refs.get((net, mode)))
        ]
        if use_net_affinity
        else []
    )
    bit_affinity = router.bit_affinity
    other_bit_refs = (
        [
            router._bit_refs[mode]
            for mode in range(router.n_modes)
            if mode not in request.modes
        ]
        if bit_affinity < 1.0
        else []
    )
    use_bit_affinity = bool(other_bit_refs)

    row_ptr = router._row_ptr
    edge_dst = router._edge_dst
    edge_bit = router._edge_bit
    dist = router._dist
    dist_epoch = router._dist_epoch
    visited = router._visited_epoch
    parent_node = router._parent_node
    parent_bit = router._parent_bit
    price = router._price
    price_over0 = router._price_over0
    price_noise = router._price_noise
    price_epoch = router._price_epoch
    router._epoch += 1
    epoch = router._epoch
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Multi-source A*: the net's existing route tree (nodes it
    # occupies in every requested mode) is free to start from, so
    # connections naturally branch off their net's trunk.  Beyond
    # the frontier every node costs >= 1, which keeps the Manhattan
    # heuristic admissible.
    starts = {request.source}
    starts.update(router._trunk_nodes(request))
    heap: List[Tuple[float, float, int]] = []
    for start in starts:
        dist[start] = 0.0
        dist_epoch[start] = epoch
        if lk is not None:
            heappush(heap, (lk[start], 0.0, start))
        else:
            dx = node_x[start] - tx
            if dx < 0:
                dx = -dx
            dy = node_y[start] - ty
            if dy < 0:
                dy = -dy
            heappush(heap, (astar_fac * (dx + dy), 0.0, start))
    n_pushes += len(heap)
    found = target in starts
    while heap:
        _f, g, node = heappop(heap)
        n_pops += 1
        if visited[node] == epoch:
            continue
        visited[node] = epoch
        n_settled += 1
        if node == target:
            found = True
            break
        for e in range(row_ptr[node], row_ptr[node + 1]):
            nxt = edge_dst[e]
            if visited[nxt] == epoch:
                continue
            # -- _node_cost, inlined --------------------------------
            # The bit-independent part of a node's price is fixed
            # for the whole search; compute it on first touch and
            # reuse it for every further incoming edge.
            if price_epoch[nxt] == epoch:
                cost = price[nxt]
                overuse_zero = price_over0[nxt]
                noise = price_noise[nxt]
            else:
                kind = kinds[nxt]
                if kind == _SINK and nxt != target:
                    visited[nxt] = epoch  # never enter this sink
                    continue
                cap = caps[nxt]
                overuse = 0
                for occ, refs in refs_by_mode:
                    occ_after = occ[nxt] + (
                        0 if refs is not None and nxt in refs
                        else 1
                    )
                    if occ_after > cap:
                        overuse += occ_after - cap
                cost = (bases[nxt] + hist[nxt]) * (
                    1.0 + pres_fac * overuse
                )
                if (
                    use_net_affinity
                    and kind == _WIRE
                    and overuse == 0
                ):
                    for refs in other_refs:
                        if nxt in refs:
                            cost *= net_affinity
                            break
                noise = (
                    (net_salt ^ (nxt * 0x9E3779B9)) & 0xFFFF
                ) / 0xFFFF
                overuse_zero = overuse == 0
                price[nxt] = cost
                price_over0[nxt] = overuse_zero
                price_noise[nxt] = noise
                price_epoch[nxt] = epoch
            bit = edge_bit[e]
            if use_bit_affinity and bit >= 0 and overuse_zero:
                bit_cost = cost
                for bit_refs in other_bit_refs:
                    if not bit_refs.get(bit):
                        break
                else:
                    bit_cost = cost * bit_affinity
                # Grouped exactly as the reference _node_cost
                # (g + (cost + noise)): float addition is not
                # associative and a one-ULP difference flips
                # equal-cost tie-breaks.
                ng = g + (bit_cost + 0.01 * noise)
            else:
                ng = g + (cost + 0.01 * noise)
            # -------------------------------------------------------
            if dist_epoch[nxt] != epoch or ng < dist[nxt]:
                dist[nxt] = ng
                dist_epoch[nxt] = epoch
                parent_node[nxt] = node
                parent_bit[nxt] = bit
                n_pushes += 1
                if lk is not None:
                    heappush(heap, (ng + lk[nxt], ng, nxt))
                else:
                    dx = node_x[nxt] - tx
                    if dx < 0:
                        dx = -dx
                    dy = node_y[nxt] - ty
                    if dy < 0:
                        dy = -dy
                    heappush(
                        heap, (ng + astar_fac * (dx + dy), ng, nxt)
                    )
    if stats is not None:
        stats.searches += 1
        stats.pops += n_pops
        stats.pushes += n_pushes
        stats.settled += n_settled
    if not found:
        return None
    edges: List[Tuple[int, int, int]] = []
    node = target
    while node not in starts:
        edges.append((parent_node[node], node, parent_bit[node]))
        node = parent_node[node]
    edges.reverse()
    return edges


def scalar_search_timed(
    router, request, pres_fac: float, crit: float
) -> Optional[List[Tuple[int, int, int]]]:
    """Timed twin of :func:`scalar_search`.

    Identical search structure (same scratch arrays, same congestion
    pricing and per-node cache, same trunk seeding), but every edge
    is priced VPR-style as ``crit * delay + (1 - crit) * congestion``
    with ``delay`` the DelayModel edge delay (destination-node
    intrinsic delay plus a switch delay when the edge carries a
    configuration bit).  The A* weight shrinks accordingly, so the
    heuristic stays as admissible as the untimed one."""
    rrg = router.rrg
    target = request.sink
    node_x = rrg.node_x
    node_y = rrg.node_y
    tx, ty = node_x[target], node_y[target]
    net_salt = zlib.crc32(request.net.encode())
    net = request.net
    inv_crit = 1.0 - crit
    model = router.timing.model
    switch_delay = model.switch_delay
    node_delay = router._node_delay
    astar_fac = (
        inv_crit * router.astar_fac + crit * model.wire_delay
    )
    # Lookahead: blend the unscaled cost/delay lower-bound vectors per
    # push — identical expression (and grouping) to the heap kernel's,
    # so both cores stay bit-identical with the lookahead on.
    lookahead = router.lookahead
    if lookahead is not None:
        lkc = lookahead.cost_list(target)
        lkd = lookahead.delay_list(target)
        lk_a = inv_crit * router.astar_fac
        lk_b = crit
    else:
        lkc = lkd = None
        lk_a = lk_b = 0.0
    stats = router.stats
    n_pops = n_pushes = n_settled = 0

    kinds = rrg.node_kind
    caps = rrg.node_capacity
    bases = router._base
    hist = router._hist
    refs_by_mode = [
        (router._occ[mode], router._net_mode_refs.get((net, mode)))
        for mode in request.modes
    ]
    net_affinity = router.net_affinity
    use_net_affinity = net_affinity < 1.0
    other_refs = (
        [
            refs
            for mode in range(router.n_modes)
            if mode not in request.modes
            and (refs := router._net_mode_refs.get((net, mode)))
        ]
        if use_net_affinity
        else []
    )
    bit_affinity = router.bit_affinity
    other_bit_refs = (
        [
            router._bit_refs[mode]
            for mode in range(router.n_modes)
            if mode not in request.modes
        ]
        if bit_affinity < 1.0
        else []
    )
    use_bit_affinity = bool(other_bit_refs)

    row_ptr = router._row_ptr
    edge_dst = router._edge_dst
    edge_bit = router._edge_bit
    dist = router._dist
    dist_epoch = router._dist_epoch
    visited = router._visited_epoch
    parent_node = router._parent_node
    parent_bit = router._parent_bit
    price = router._price
    price_over0 = router._price_over0
    price_noise = router._price_noise
    price_epoch = router._price_epoch
    router._epoch += 1
    epoch = router._epoch
    heappush = heapq.heappush
    heappop = heapq.heappop

    starts = {request.source}
    starts.update(router._trunk_nodes(request))
    heap: List[Tuple[float, float, int]] = []
    for start in starts:
        dist[start] = 0.0
        dist_epoch[start] = epoch
        if lkc is not None:
            heappush(
                heap,
                (lk_a * lkc[start] + lk_b * lkd[start], 0.0, start),
            )
        else:
            dx = node_x[start] - tx
            if dx < 0:
                dx = -dx
            dy = node_y[start] - ty
            if dy < 0:
                dy = -dy
            heappush(heap, (astar_fac * (dx + dy), 0.0, start))
    n_pushes += len(heap)
    found = target in starts
    while heap:
        _f, g, node = heappop(heap)
        n_pops += 1
        if visited[node] == epoch:
            continue
        visited[node] = epoch
        n_settled += 1
        if node == target:
            found = True
            break
        for e in range(row_ptr[node], row_ptr[node + 1]):
            nxt = edge_dst[e]
            if visited[nxt] == epoch:
                continue
            # Congestion price: same per-node cache and the same
            # arithmetic as the untimed loop.
            if price_epoch[nxt] == epoch:
                cost = price[nxt]
                overuse_zero = price_over0[nxt]
                noise = price_noise[nxt]
            else:
                kind = kinds[nxt]
                if kind == _SINK and nxt != target:
                    visited[nxt] = epoch
                    continue
                cap = caps[nxt]
                overuse = 0
                for occ, refs in refs_by_mode:
                    occ_after = occ[nxt] + (
                        0 if refs is not None and nxt in refs
                        else 1
                    )
                    if occ_after > cap:
                        overuse += occ_after - cap
                cost = (bases[nxt] + hist[nxt]) * (
                    1.0 + pres_fac * overuse
                )
                if (
                    use_net_affinity
                    and kind == _WIRE
                    and overuse == 0
                ):
                    for refs in other_refs:
                        if nxt in refs:
                            cost *= net_affinity
                            break
                noise = (
                    (net_salt ^ (nxt * 0x9E3779B9)) & 0xFFFF
                ) / 0xFFFF
                overuse_zero = overuse == 0
                price[nxt] = cost
                price_over0[nxt] = overuse_zero
                price_noise[nxt] = noise
                price_epoch[nxt] = epoch
            bit = edge_bit[e]
            if use_bit_affinity and bit >= 0 and overuse_zero:
                congestion = cost
                for bit_refs in other_bit_refs:
                    if not bit_refs.get(bit):
                        break
                else:
                    congestion = cost * bit_affinity
                congestion += 0.01 * noise
            else:
                congestion = cost + 0.01 * noise
            delay = node_delay[nxt]
            if bit >= 0:
                delay += switch_delay
            ng = g + (inv_crit * congestion + crit * delay)
            if dist_epoch[nxt] != epoch or ng < dist[nxt]:
                dist[nxt] = ng
                dist_epoch[nxt] = epoch
                parent_node[nxt] = node
                parent_bit[nxt] = bit
                n_pushes += 1
                if lkc is not None:
                    heappush(
                        heap,
                        (
                            ng
                            + (lk_a * lkc[nxt] + lk_b * lkd[nxt]),
                            ng,
                            nxt,
                        ),
                    )
                else:
                    dx = node_x[nxt] - tx
                    if dx < 0:
                        dx = -dx
                    dy = node_y[nxt] - ty
                    if dy < 0:
                        dy = -dy
                    heappush(
                        heap, (ng + astar_fac * (dx + dy), ng, nxt)
                    )
    if stats is not None:
        stats.searches += 1
        stats.pops += n_pops
        stats.pushes += n_pushes
        stats.settled += n_settled
    if not found:
        return None
    edges: List[Tuple[int, int, int]] = []
    node = target
    while node not in starts:
        edges.append((parent_node[node], node, parent_bit[node]))
        node = parent_node[node]
    edges.reverse()
    return edges


# -- binary-heap kernels (vectorized core) --------------------------------


def heap_search_untimed(
    starts,
    target: int,
    h: List[float],
    pn: List[float],
    pnA: List[float],
    static_set,
    nbr_main,
    nbr_sink,
    dist: List[float],
    parent_node: List[int],
    parent_bit: List[int],
    stats: Optional[RouterStats] = None,
) -> bool:
    """Untimed heap search over precomputed price lists.

    ``dist`` is the caller's fresh ``[+inf] * n`` sentinel list
    (+inf = unseen, -inf = settled).  With ``static_set`` empty the
    per-edge discount test is dead and the kernel is
    decision-identical to the historical no-bit loop; callers without
    a live discount pass ``pnA=pn`` and :data:`EMPTY_STATIC`.  ``h``
    is whatever per-target heuristic list the caller precomputed
    (Manhattan or lookahead) — the kernel is agnostic.
    Returns whether *target* was reached (parents are valid then)."""
    heappush = heapq.heappush
    heappop = heapq.heappop
    neg_inf = _NEG_INF
    n_pops = n_pushes = n_settled = 0

    heap: List[Tuple[float, float, int]] = []
    for start in starts:
        dist[start] = 0.0
        heappush(heap, (h[start], 0.0, start))
    n_pushes += len(heap)
    found = target in starts
    while heap:
        _f, g, node = heappop(heap)
        n_pops += 1
        if dist[node] == neg_inf:
            continue
        dist[node] = neg_inf
        n_settled += 1
        if node == target:
            found = True
            break
        for nxt, bit in nbr_main[node]:
            if bit >= 0 and bit in static_set:
                ng = g + pnA[nxt]
            else:
                ng = g + pn[nxt]
            if ng < dist[nxt]:
                dist[nxt] = ng
                parent_node[nxt] = node
                parent_bit[nxt] = bit
                n_pushes += 1
                heappush(heap, (ng + h[nxt], ng, nxt))
        for nxt, bit in nbr_sink[node]:
            if nxt != target:
                continue
            if bit >= 0 and bit in static_set:
                ng = g + pnA[nxt]
            else:
                ng = g + pn[nxt]
            if ng < dist[nxt]:
                dist[nxt] = ng
                parent_node[nxt] = node
                parent_bit[nxt] = bit
                n_pushes += 1
                heappush(heap, (ng + h[nxt], ng, nxt))
    if stats is not None:
        stats.searches += 1
        stats.pops += n_pops
        stats.pushes += n_pushes
        stats.settled += n_settled
    return found


def heap_search_timed(
    starts,
    target: int,
    node_x,
    node_y,
    astar_fac: float,
    inv_crit: float,
    crit: float,
    nd: List[float],
    nds: List[float],
    pn: List[float],
    pnA: List[float],
    static_set,
    nbr_main,
    nbr_sink,
    dist: List[float],
    parent_node: List[int],
    parent_bit: List[int],
    lkc: Optional[List[float]] = None,
    lkd: Optional[List[float]] = None,
    lk_a: float = 0.0,
    lk_b: float = 0.0,
    stats: Optional[RouterStats] = None,
) -> bool:
    """Timed heap search: ``g + (inv_crit * price + crit * delay)``
    per edge with the per-push Manhattan heuristic (the
    criticality-scaled weight defeats caching).  With a lookahead
    (``lkc``/``lkd`` unscaled cost/delay vectors) the heuristic is
    the blend ``lk_a * lkc + lk_b * lkd`` instead — the exact
    expression :func:`scalar_search_timed` evaluates, preserving
    scalar/vectorized bit-identity.  Same merged-variant contract as
    :func:`heap_search_untimed`."""
    tx, ty = node_x[target], node_y[target]
    heappush = heapq.heappush
    heappop = heapq.heappop
    neg_inf = _NEG_INF
    n_pops = n_pushes = n_settled = 0

    heap: List[Tuple[float, float, int]] = []
    for start in starts:
        dist[start] = 0.0
        if lkc is not None:
            heappush(
                heap,
                (lk_a * lkc[start] + lk_b * lkd[start], 0.0, start),
            )
        else:
            dx = node_x[start] - tx
            if dx < 0:
                dx = -dx
            dy = node_y[start] - ty
            if dy < 0:
                dy = -dy
            heappush(heap, (astar_fac * (dx + dy), 0.0, start))
    n_pushes += len(heap)
    found = target in starts
    while heap:
        _f, g, node = heappop(heap)
        n_pops += 1
        if dist[node] == neg_inf:
            continue
        dist[node] = neg_inf
        n_settled += 1
        if node == target:
            found = True
            break
        for nxt, bit in nbr_main[node]:
            if bit < 0:
                ng = g + (inv_crit * pn[nxt] + crit * nd[nxt])
            elif bit in static_set:
                ng = g + (inv_crit * pnA[nxt] + crit * nds[nxt])
            else:
                ng = g + (inv_crit * pn[nxt] + crit * nds[nxt])
            if ng < dist[nxt]:
                dist[nxt] = ng
                parent_node[nxt] = node
                parent_bit[nxt] = bit
                n_pushes += 1
                if lkc is not None:
                    heappush(
                        heap,
                        (
                            ng
                            + (lk_a * lkc[nxt] + lk_b * lkd[nxt]),
                            ng,
                            nxt,
                        ),
                    )
                else:
                    dx = node_x[nxt] - tx
                    if dx < 0:
                        dx = -dx
                    dy = node_y[nxt] - ty
                    if dy < 0:
                        dy = -dy
                    heappush(
                        heap, (ng + astar_fac * (dx + dy), ng, nxt)
                    )
        for nxt, bit in nbr_sink[node]:
            if nxt != target:
                continue
            if bit < 0:
                ng = g + (inv_crit * pn[nxt] + crit * nd[nxt])
            elif bit in static_set:
                ng = g + (inv_crit * pnA[nxt] + crit * nds[nxt])
            else:
                ng = g + (inv_crit * pn[nxt] + crit * nds[nxt])
            if ng < dist[nxt]:
                dist[nxt] = ng
                parent_node[nxt] = node
                parent_bit[nxt] = bit
                n_pushes += 1
                if lkc is not None:
                    heappush(
                        heap,
                        (
                            ng
                            + (lk_a * lkc[nxt] + lk_b * lkd[nxt]),
                            ng,
                            nxt,
                        ),
                    )
                else:
                    dx = node_x[nxt] - tx
                    if dx < 0:
                        dx = -dx
                    dy = node_y[nxt] - ty
                    if dy < 0:
                        dy = -dy
                    heappush(
                        heap, (ng + astar_fac * (dx + dy), ng, nxt)
                    )
    if stats is not None:
        stats.searches += 1
        stats.pops += n_pops
        stats.pushes += n_pushes
        stats.settled += n_settled
    return found

# -- bucket (delta-stepping) kernels --------------------------------------
#
# State per search: ``dist`` and ``fq`` are float64 arrays pre-filled
# +inf by the caller, ``parent_node``/``parent_bit`` int64 arrays.
# ``dist`` holds the tentative label (+inf unseen, -inf settled);
# ``fq`` is the *dense priority queue*: ``fq[node]`` is the queued
# node's f-value (``g + h``), +inf when the node is not queued.  A
# drain is three whole-array operations — ``fq.min()``, a threshold
# compare ``fq <= min + delta``, ``flatnonzero`` — and an improvement
# simply overwrites ``fq[dst]`` in place, so there is no pending
# pool, no concatenation and no stale entries at all.  This is
# delta-stepping with the bucket boundary re-anchored at the live
# minimum: every settled label is within ``delta`` of the true
# optimum per bucket crossing (the quantization contract), and the
# dense queue makes a drain O(n_nodes) flat work, which for routing
# graphs of a few thousand nodes is cheaper than any sparse pool
# bookkeeping.
#
# The expansion side works on a *padded adjacency matrix*: ``adj_e``
# is ``(n_nodes, max_fanout)`` of edge ids, padded with the sentinel
# id ``n_edges``, so expanding a frontier is a single 2-D gather with
# no ragged CSR arithmetic.  Prices are *edge-indexed*: ``pe[edge]``
# is the full additive cost of taking that edge (bit-affinity
# discount already resolved per edge, sink edges and the pad slot
# priced +inf), built once per price entry and reused by every drain
# of every search under that entry.  Pad and sink edges therefore
# relax to +inf and drop out in the ordinary ``ng < dist`` filter —
# no per-drain masking at all.  Edges into the search target are the
# one exception (the only sink that must stay reachable): those rows
# are repriced from the node-level vectors in a tiny fix-up.
#
# Termination prunes by the target bound: once the target's
# tentative label is within ``delta`` of the queue minimum it can
# only improve by less than the quantization the contract already
# allows, so the search stops, and pushes with ``f`` beyond the
# current target label are dropped (they could never contribute a
# better target path with an admissible heuristic).


def bucket_search_untimed(
    starts,
    target: int,
    h,
    pn,
    pnA,
    static_lut,
    pe,
    adj_e,
    pdst,
    pedge_src,
    pedge_bit,
    dist,
    fq,
    parent_node,
    parent_bit,
    delta: float,
    stats: RouterStats,
) -> bool:
    """Batched-wavefront untimed search.

    All graph and price inputs are numpy arrays (``h`` already scaled
    by the A* weight).  ``pe`` is the edge-indexed price vector of
    the live price entry; ``pn``/``pnA``/``static_lut`` are its
    node-level sources, used only to reprice edges into the target.
    Each iteration drains one frontier whole: one settle write, one
    padded-adjacency gather and one price/relaxation pass over every
    outgoing edge.  Ties between edges improving the same destination
    go to the lowest ``ng`` then the lowest edge id — a pure function
    of the inputs, so results are independent of worker count and
    identical warm or cold."""
    stats.searches += 1
    if target in starts:
        return True
    s = np.fromiter(starts, np.int64, len(starts))
    dist[s] = 0.0
    fq[s] = h[s]
    stats.pushes += s.shape[0]
    inf = _INF
    neg_inf = _NEG_INF
    while True:
        fmin = fq.min()
        if fmin == inf:
            break
        if dist[target] <= fmin + delta:
            return True
        nodes = np.flatnonzero(fq <= fmin + delta)
        gs = dist[nodes]
        fq[nodes] = inf
        dist[nodes] = neg_inf
        width = nodes.shape[0]
        stats.pops += width
        stats.settled += width
        stats.drains += 1
        stats.frontier_nodes += width
        if width > stats.max_frontier:
            stats.max_frontier = width
        # Padded-adjacency expansion: one 2-D gather, one broadcast
        # add; pad and sink edges price +inf and fall out of the
        # ``better`` filter on their own.
        e2 = adj_e[nodes]
        ng = (gs[:, None] + pe[e2].reshape(e2.shape)).ravel()
        e = e2.ravel()
        dst = pdst[e]
        tm = dst == target
        if tm.any():
            ti = np.flatnonzero(tm)
            if pnA is not None:
                add_t = np.where(
                    static_lut[pedge_bit[e[ti]]],
                    pnA[target],
                    pn[target],
                )
            else:
                add_t = pn[target]
            ng[ti] = gs[ti // e2.shape[1]] + add_t
        better = ng < dist[dst]
        if not better.any():
            continue
        e = e[better]
        ng = ng[better]
        dst = dst[better]
        # Canonical per-destination winner: lowest ng, then lowest
        # edge id (edge ids order by source node then adjacency
        # position, so the rule is a pure function of the graph).
        order = np.lexsort((e, ng, dst))
        dst = dst[order]
        first = np.empty(dst.shape[0], np.bool_)
        first[0] = True
        np.not_equal(dst[1:], dst[:-1], out=first[1:])
        sel = order[first]
        dst = dst[first]
        ng = ng[sel]
        e = e[sel]
        dist[dst] = ng
        parent_node[dst] = pedge_src[e]
        parent_bit[dst] = pedge_bit[e]
        fnew = ng + h[dst]
        dt = dist[target]
        if dt < inf:
            qm = fnew < dt
            dst = dst[qm]
            fq[dst] = fnew[qm]
        else:
            fq[dst] = fnew
        stats.pushes += dst.shape[0]
    return dist[target] != _INF


def bucket_search_timed(
    starts,
    target: int,
    h,
    inv_crit: float,
    crit: float,
    nd,
    nds,
    pn,
    pnA,
    static_lut,
    pe,
    pde,
    adj_e,
    pdst,
    pedge_src,
    pedge_bit,
    dist,
    fq,
    parent_node,
    parent_bit,
    delta: float,
    stats: RouterStats,
) -> bool:
    """Timed twin of :func:`bucket_search_untimed`: the edge cost is
    the criticality blend ``inv_crit * price + crit * delay`` with
    ``pde`` the edge-indexed delay vector (switch-inclusive on
    bit-carrying edges, +inf on the pad slot); ``h`` is the Manhattan
    vector already scaled by the blended A* weight."""
    stats.searches += 1
    if target in starts:
        return True
    s = np.fromiter(starts, np.int64, len(starts))
    dist[s] = 0.0
    fq[s] = h[s]
    stats.pushes += s.shape[0]
    inf = _INF
    neg_inf = _NEG_INF
    while True:
        fmin = fq.min()
        if fmin == inf:
            break
        if dist[target] <= fmin + delta:
            return True
        nodes = np.flatnonzero(fq <= fmin + delta)
        gs = dist[nodes]
        fq[nodes] = inf
        dist[nodes] = neg_inf
        width = nodes.shape[0]
        stats.pops += width
        stats.settled += width
        stats.drains += 1
        stats.frontier_nodes += width
        if width > stats.max_frontier:
            stats.max_frontier = width
        e2 = adj_e[nodes]
        e = e2.ravel()
        cost = inv_crit * pe[e] + crit * pde[e]
        ng = (gs[:, None] + cost.reshape(e2.shape)).ravel()
        dst = pdst[e]
        tm = dst == target
        if tm.any():
            ti = np.flatnonzero(tm)
            bits_t = pedge_bit[e[ti]]
            if pnA is not None:
                cong_t = np.where(
                    static_lut[bits_t], pnA[target], pn[target]
                )
            else:
                cong_t = pn[target]
            delay_t = np.where(
                bits_t >= 0, nds[target], nd[target]
            )
            ng[ti] = gs[ti // e2.shape[1]] + (
                inv_crit * cong_t + crit * delay_t
            )
        better = ng < dist[dst]
        if not better.any():
            continue
        e = e[better]
        ng = ng[better]
        dst = dst[better]
        order = np.lexsort((e, ng, dst))
        dst = dst[order]
        first = np.empty(dst.shape[0], np.bool_)
        first[0] = True
        np.not_equal(dst[1:], dst[:-1], out=first[1:])
        sel = order[first]
        dst = dst[first]
        ng = ng[sel]
        e = e[sel]
        dist[dst] = ng
        parent_node[dst] = pedge_src[e]
        parent_bit[dst] = pedge_bit[e]
        fnew = ng + h[dst]
        dt = dist[target]
        if dt < inf:
            qm = fnew < dt
            dst = dst[qm]
            fq[dst] = fnew[qm]
        else:
            fq[dst] = fnew
        stats.pushes += dst.shape[0]
    return dist[target] != _INF
