"""Router lookahead: precomputed admissible search lower bounds.

The PathFinder cores guide their A* searches with ``astar_fac *
manhattan`` — sound (every node beyond the frontier costs at least its
unit base cost) but loose: it prices a straight wire run and nothing
else, so the search pays nothing for the OPIN hop out of a block, the
IPIN/SINK hops into the target, the perimeter detours around pads, or
the fact that CLB output pins only reach the north/east channels.  VPR
ships a *router lookahead* for exactly this reason: a precomputed
cost-to-sink map that reflects the fabric's real connectivity cuts the
explored node count several-fold over plain Manhattan.

This module builds that map for the repo's RRG as a **quotient-graph
backward sweep**:

* Collapse the RRG onto meta-nodes ``(kind, x, y)`` — every real node
  maps to the meta-node of its kind at its coordinates, and a meta-edge
  exists wherever any real edge does.  Entering a real node costs at
  least its base cost (0 for SINKs, 1 otherwise) before congestion,
  history, noise and affinity scaling, so giving each meta-node the
  *minimum* base cost of its class makes any quotient path cost a lower
  bound on every real path it abstracts (a graph homomorphism only ever
  merges states and drops cost terms — it cannot raise the optimum).
* Run one backward Dijkstra per SINK meta-node over the reversed
  quotient, yielding the exact quotient cost-to-sink from every
  meta-node.
* Fold the per-pair distances into one table per node kind indexed by
  the **signed offset** ``(sink_x - x, sink_y - y)``, taking the
  minimum over all pairs at that offset.  Minimising over pairs keeps
  the table admissible for *every* real ``(node, target)`` pair while
  shrinking it to O(kinds * (2 nx + 3) * (2 ny + 3)) floats; boundary
  asymmetries (pads, the channel ring) simply make off-boundary entries
  a little conservative.

A second table with per-kind minimum *node delays* as weights bounds
the timed search's delay term the same way (built only when a
``DelayModel`` is supplied).  Both tables are **consistent**, not just
admissible: they are exact shortest-path distances of a graph whose
edge weights never exceed the real ones after the router's own
``astar_fac``/criticality scaling (see ``RouterLookahead``), so the
cores' settle-on-first-pop discipline stays sound.

``+inf`` entries mark (kind, offset) pairs with no quotient path — and
therefore no real path — which safely prunes provably dead nodes.

The raw :class:`LookaheadTables` are a pure function of the
architecture (plus the delay model), independent of circuits, seeds and
every congestion knob, so the flow memoizes them under a dedicated
``"lookahead"`` exec-cache stage keyed on the architecture fingerprint:
campaigns and warm reruns pay zero build cost.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.rrg import SINK, RoutingResourceGraph

try:  # numpy optional: the scalar reference must import without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised implicitly
    np = None  # type: ignore[assignment]

_INF = float("inf")

#: Per-target vector cache bound (floats across all cached lists);
#: evicted least-recently-used, mirroring the vectorized core's
#: heuristic cache budget.
_LK_CACHE_MAX_FLOATS = 2_000_000


@dataclass
class LookaheadTables:
    """Raw lookahead data — picklable for the exec stage cache.

    ``cost[kind]`` (and ``delay[kind]`` when built with a delay model)
    is a dense 2-D float64 array indexed ``[dx + offx, dy + offy]``
    with ``dx = sink_x - node_x`` (signed); entries are the minimum
    quotient cost/delay to reach *some* sink at that offset from
    *some* node of that kind, ``+inf`` when no pair at the offset has
    a path.
    """

    offx: int
    offy: int
    cost: Dict[int, "np.ndarray"]
    delay: Optional[Dict[int, "np.ndarray"]]


def _backward_dijkstra(
    t: int,
    rev: List[List[int]],
    weight: List[float],
    n_meta: int,
) -> List[float]:
    """Quotient cost-to-*t* from every meta-node.

    ``rev[w]`` lists the meta-nodes with an edge *into* ``w``;
    ``weight[w]`` is the cost of entering ``w``.  ``dist[u]`` is the
    minimum over quotient paths ``u -> ... -> t`` of the sum of
    entering costs of every node after ``u`` — exactly what an A*
    heuristic must bound (``g`` already covers entering ``u``).
    """
    dist = [_INF] * n_meta
    dist[t] = 0.0
    heap = [(0.0, t)]
    heappush = heapq.heappush
    heappop = heapq.heappop
    while heap:
        d, w = heappop(heap)
        if d > dist[w]:
            continue
        nd = d + weight[w]
        for u in rev[w]:
            if nd < dist[u]:
                dist[u] = nd
                heappush(heap, (nd, u))
    return dist


def build_lookahead(
    rrg: RoutingResourceGraph, model=None
) -> LookaheadTables:
    """One-shot backward sweep over the fabric (see module docstring).

    *model* is an optional :class:`~repro.timing.delay.DelayModel`;
    when given, the delay tables needed by timing-driven searches are
    built alongside the cost tables.
    """
    if np is None:  # pragma: no cover - numpy is a hard dep here
        raise RuntimeError("router lookahead requires numpy")
    kinds = rrg.node_kind
    xs = rrg.node_x
    ys = rrg.node_y
    n = rrg.n_nodes
    base = rrg.base_cost_array()

    # -- collapse to (kind, x, y) meta-nodes -----------------------------
    meta_of: Dict[Tuple[int, int, int], int] = {}
    mkind: List[int] = []
    mx: List[int] = []
    my: List[int] = []
    node_meta = [0] * n
    for i in range(n):
        key = (kinds[i], xs[i], ys[i])
        m = meta_of.get(key)
        if m is None:
            m = len(mkind)
            meta_of[key] = m
            mkind.append(kinds[i])
            mx.append(xs[i])
            my.append(ys[i])
        node_meta[i] = m
    n_meta = len(mkind)

    # Reversed quotient adjacency (deduplicated) and per-meta entering
    # weights: the minimum over the class keeps every quotient path a
    # lower bound on the real paths it abstracts.
    rev_sets: List[set] = [set() for _ in range(n_meta)]
    for u in range(n):
        mu = node_meta[u]
        for v, _bit in rrg.adjacency[u]:
            rev_sets[node_meta[v]].add(mu)
    rev = [sorted(s) for s in rev_sets]
    wcost = [_INF] * n_meta
    for i in range(n):
        m = node_meta[i]
        if base[i] < wcost[m]:
            wcost[m] = base[i]
    wdelay: Optional[List[float]] = None
    if model is not None:
        wdelay = [_INF] * n_meta
        for i in range(n):
            m = node_meta[i]
            d = model.node_delay(rrg, i)
            if d < wdelay[m]:
                wdelay[m] = d

    # -- sweep: one backward Dijkstra per sink meta-node ------------------
    offx = max(xs) if n else 0
    offy = max(ys) if n else 0
    dims = (2 * offx + 1, 2 * offy + 1)
    kinds_present = sorted(set(mkind))
    cost_tables = {
        k: np.full(dims, _INF, np.float64) for k in kinds_present
    }
    delay_tables = (
        {k: np.full(dims, _INF, np.float64) for k in kinds_present}
        if wdelay is not None
        else None
    )
    mkind_np = np.asarray(mkind, np.int64)
    mx_np = np.asarray(mx, np.int64)
    my_np = np.asarray(my, np.int64)
    kind_meta = {
        k: np.flatnonzero(mkind_np == k) for k in kinds_present
    }
    sink_metas = [m for m in range(n_meta) if mkind[m] == SINK]
    for t in sink_metas:
        tx, ty = mx[t], my[t]
        sweeps = [(_backward_dijkstra(t, rev, wcost, n_meta),
                   cost_tables)]
        if delay_tables is not None:
            sweeps.append(
                (_backward_dijkstra(t, rev, wdelay, n_meta),
                 delay_tables)
            )
        for dist, tables in sweeps:
            d = np.asarray(dist, np.float64)
            for kind, idx in kind_meta.items():
                sel = idx[np.isfinite(d[idx])]
                if not sel.size:
                    continue
                np.minimum.at(
                    tables[kind],
                    (tx - mx_np[sel] + offx, ty - my_np[sel] + offy),
                    d[sel],
                )
    return LookaheadTables(offx, offy, cost_tables, delay_tables)


class RouterLookahead:
    """Per-target heuristic vectors over :class:`LookaheadTables`.

    One instance serves every core: the scalar reference and the
    vectorized core read the *same* per-target Python list (one numpy
    gather + one scale multiply, cached LRU), so their searches stay
    bit-identical to each other with the lookahead enabled; the
    batched core reads the numpy arrays directly.

    Untimed searches use :meth:`cost_list_scaled` (pre-scaled by the
    router's ``astar_fac``, which already carries the affinity floor —
    the same scaling that keeps the Manhattan heuristic admissible).
    Timed searches blend the *unscaled* cost and delay vectors per
    relaxation as ``inv_crit * astar_fac * cost + crit * delay``:
    caching unscaled vectors per target keeps one entry per target
    instead of one per (target, criticality).
    """

    def __init__(
        self, rrg: RoutingResourceGraph, tables: LookaheadTables
    ) -> None:
        if np is None:  # pragma: no cover - numpy is a hard dep here
            raise RuntimeError("router lookahead requires numpy")
        self.tables = tables
        self.rrg = rrg
        self._n = rrg.n_nodes
        self._np_x = np.asarray(rrg.node_x, np.int64)
        self._np_y = np.asarray(rrg.node_y, np.int64)
        kinds_np = np.asarray(rrg.node_kind, np.int64)
        self._kind_idx = {
            k: np.flatnonzero(kinds_np == k) for k in tables.cost
        }
        # One LRU over every cached per-target vector (lists and
        # arrays); hits re-append, inserts evict the front.
        self._cache: Dict[Tuple, object] = {}

    # -- cache ------------------------------------------------------------

    def _cached(self, key: Tuple, build):
        # Pop-based LRU refresh: the batched core's negotiation tasks
        # call this from worker threads, and pop-with-default plus
        # reinsert is race-safe under the GIL (plain del would raise
        # when two tasks refresh the same key).
        cache = self._cache
        value = cache.pop(key, None)
        if value is not None:
            cache[key] = value
            return value
        while (
            cache
            and (len(cache) + 1) * self._n > _LK_CACHE_MAX_FLOATS
        ):
            try:
                cache.pop(next(iter(cache)), None)
            except (StopIteration, RuntimeError):
                break
        value = build()
        cache[key] = value
        return value

    # -- gathers ----------------------------------------------------------

    def _gather(self, target: int, tables) -> "np.ndarray":
        tx = self.rrg.node_x[target]
        ty = self.rrg.node_y[target]
        offx = self.tables.offx
        offy = self.tables.offy
        out = np.empty(self._n, np.float64)
        for kind, idx in self._kind_idx.items():
            out[idx] = tables[kind][
                tx - self._np_x[idx] + offx,
                ty - self._np_y[idx] + offy,
            ]
        return out

    def _delay_tables(self):
        tables = self.tables.delay
        if tables is None:
            raise ValueError(
                "lookahead tables were built without a delay model; "
                "rebuild with build_lookahead(rrg, model) for "
                "timing-driven routing"
            )
        return tables

    def cost_array(self, target: int) -> "np.ndarray":
        """Unscaled per-node cost lower bound (numpy, cached)."""
        return self._cached(
            ("ca", target), lambda: self._gather(target, self.tables.cost)
        )

    def delay_array(self, target: int) -> "np.ndarray":
        """Unscaled per-node delay lower bound (numpy, cached)."""
        return self._cached(
            ("da", target),
            lambda: self._gather(target, self._delay_tables()),
        )

    def cost_list_scaled(
        self, target: int, fac: float
    ) -> List[float]:
        """``fac * cost_array(target)`` as a plain list — the untimed
        heuristic read by both the scalar and vectorized kernels."""

        def build():
            arr = self.cost_array(target)
            if fac == 0.0:
                # 0 * inf is NaN; an unscaled heuristic is just 0 on
                # every reachable node (and +inf keeps pruning).
                return np.where(np.isinf(arr), _INF, 0.0).tolist()
            return (fac * arr).tolist()

        return self._cached(("cs", target, fac), build)

    def cost_list(self, target: int) -> List[float]:
        """Unscaled cost vector as a plain list (timed searches)."""
        return self._cached(
            ("cl", target), lambda: self.cost_array(target).tolist()
        )

    def delay_list(self, target: int) -> List[float]:
        """Unscaled delay vector as a plain list (timed searches)."""
        return self._cached(
            ("dl", target), lambda: self.delay_array(target).tolist()
        )
