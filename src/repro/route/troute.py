"""TRoute — routing workloads for LUT and Tunable circuits.

This module turns placed netlists into :class:`RouteRequest` workloads
and runs the PathFinder engine on them:

* :func:`route_lut_circuit` — conventional single-mode routing of one
  placed LUT circuit (the "Routing" box of the MDR flow).
* :func:`route_tunable_circuit` — TRoute proper: routes the tunable
  connections of a merged multi-mode circuit, honouring activation
  functions (a connection is only realised — and only occupies wires —
  in the modes where its activation function is True).

Both return a :class:`~repro.route.router.RoutingResult`, from which
per-mode configurations and the paper's bit/wire metrics are derived.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.arch.architecture import Site
from repro.arch.rrg import RoutingResourceGraph
from repro.netlist.lutcircuit import LutCircuit
from repro.place.placer import Placement, pad_cell
from repro.route.router import (
    PathFinderRouter,
    RouteRequest,
    RoutingResult,
    RoutingTiming,
)

# A site-level connection: (net id, source site, sink site, modes).
SiteConnection = Tuple[str, Site, Site, FrozenSet[int]]


def lut_circuit_connections(
    circuit: LutCircuit,
    placement: Placement,
    mode: int = 0,
) -> List[SiteConnection]:
    """Site-level connections of one placed LUT circuit.

    Every block-input pin and every primary-output tap becomes one
    connection, active only in *mode*.
    """
    modes = frozenset((mode,))
    conns: List[SiteConnection] = []

    def site_of_signal(signal: str) -> Site:
        if signal in circuit.inputs:
            return placement.sites[pad_cell(signal)]
        return placement.sites[signal]

    for block in circuit.blocks.values():
        sink_site = placement.sites[block.name]
        for src in block.inputs:
            conns.append(
                (f"m{mode}:{src}", site_of_signal(src), sink_site, modes)
            )
    for out in circuit.outputs:
        conns.append(
            (
                f"m{mode}:{out}",
                site_of_signal(out),
                placement.sites[pad_cell(out)],
                modes,
            )
        )
    return conns


def requests_from_connections(
    rrg: RoutingResourceGraph,
    connections: Iterable[SiteConnection],
) -> List[RouteRequest]:
    """Convert site-level connections into RRG route requests.

    Connections sharing (source site, sink site, net) in several modes
    must already be merged into a single entry with the union
    activation set (the merge step does this); this function performs a
    defensive merge as well so duplicate entries cannot inflate the
    workload.
    """
    merged: Dict[Tuple[str, int, int], FrozenSet[int]] = {}
    for net, src_site, sink_site, modes in connections:
        source = rrg.source_node(src_site)
        sink = rrg.sink_node(sink_site)
        key = (net, source, sink)
        merged[key] = merged.get(key, frozenset()) | modes
    requests = []
    for conn_id, ((net, source, sink), modes) in enumerate(
        sorted(merged.items(), key=lambda item: item[0])
    ):
        requests.append(
            RouteRequest(conn_id, net, source, sink, modes)
        )
    return requests


def _request_criticalities(
    requests: Sequence[RouteRequest],
    criticality,
) -> dict:
    """Map (net, sink node)-keyed criticalities onto connection ids."""
    return {
        request.conn_id: criticality.get(
            (request.net, request.sink), 0.0
        )
        for request in requests
    }


def route_lut_circuit(
    circuit: LutCircuit,
    placement: Placement,
    rrg: RoutingResourceGraph,
    timing=None,
    **router_kwargs,
) -> RoutingResult:
    """Route one placed LUT circuit (conventional, single mode).

    *timing* is an optional
    :class:`~repro.timing.criticality.CriticalityConfig`: when given,
    per-connection criticalities are derived from a placement-level
    STA of the circuit and the router prices critical connections by
    delay (``crit * delay + (1 - crit) * congestion``); ``None`` is
    bit-identical to the historical congestion-only routing.
    """
    conns = lut_circuit_connections(circuit, placement)
    requests = requests_from_connections(rrg, conns)
    router_timing = None
    if timing is not None:
        # Lazy import: repro.timing's package init imports this
        # package's router module.
        from repro.timing.criticality import (
            lut_connection_criticalities,
        )

        criticality = lut_connection_criticalities(
            circuit, placement, rrg, timing
        )
        router_timing = RoutingTiming(
            timing.model,
            _request_criticalities(requests, criticality),
        )
    router = PathFinderRouter(
        rrg, n_modes=1, timing=router_timing, **router_kwargs
    )
    return router.route(requests)


def route_tunable_circuit(
    rrg: RoutingResourceGraph,
    connections: Sequence[SiteConnection],
    n_modes: int,
    net_affinity: float = 0.5,
    criticality=None,
    delay_model=None,
    **router_kwargs,
) -> RoutingResult:
    """Route the tunable connections of a merged multi-mode circuit.

    *connections* come from
    :meth:`repro.core.tunable.TunableCircuit.site_connections`; each
    carries its activation set.  Wires and switches are shared across
    modes wherever profitable (``net_affinity`` steers a net's
    per-mode branches onto common wires; ``bit_affinity`` and
    ``sharing_passes``, passed through ``router_kwargs``, steer
    connections onto switches already on in the other modes) — the
    resulting per-mode bit differences are exactly the parameterised
    routing bits of the paper.

    *criticality* maps ``(net, sink node)`` to sharpened connection
    criticalities (from :func:`repro.timing.criticality
    .tunable_connection_criticalities`); with it, TRoute prices
    critical connections by delay under *delay_model* — the worst
    criticality over a connection's active modes, so cross-mode wire
    sharing never sacrifices the critical mode's path.
    """
    requests = requests_from_connections(rrg, connections)
    timing = None
    if criticality:
        if delay_model is None:
            from repro.timing.delay import DelayModel

            delay_model = DelayModel()
        timing = RoutingTiming(
            delay_model,
            _request_criticalities(requests, criticality),
        )
    router = PathFinderRouter(
        rrg, n_modes=n_modes, net_affinity=net_affinity,
        timing=timing, **router_kwargs,
    )
    return router.route(requests)


def parameterized_routing_bits(result: RoutingResult) -> set:
    """Routing bits that are Boolean functions of the mode (not constant).

    A bit is parameterised when it is on in some modes and off in
    others; bits on in every mode are static ones, bits on in no mode
    are static zeros.
    """
    union: set = set()
    intersection: Optional[set] = None
    for mode in range(result.n_modes):
        bits = result.bits_on(mode)
        union |= bits
        intersection = (
            set(bits) if intersection is None else intersection & bits
        )
    if intersection is None:
        return set()
    return union - intersection
